//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This shim implements the API subset the
//! workspace uses — `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{gen_range, gen_bool}` sampling methods — on top of xoshiro256++
//! (public-domain algorithm by Blackman & Vigna) seeded via SplitMix64.
//!
//! The stream is *not* bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); it is a high-quality deterministic generator with the same
//! seeding discipline, which is all the reproduction needs: every consumer
//! seeds explicitly and only ever compares runs against other runs of this
//! same generator.

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a [`Range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply rejection-free mapping (Lemire, biased
                // by < 2^-64 — far below anything observable here).
                let x = rng() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng() as u128;
                (self.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling helpers available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform unit draw, mirroring gen_range.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.1..0.9);
            assert!((0.1..0.9).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.75)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
