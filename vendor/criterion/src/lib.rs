//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain
//! wall-clock harness: each benchmark runs `sample_size` timed samples
//! after a warm-up pass and reports min / median / mean per iteration.
//! There is no statistical machinery; the numbers are honest wall-clock
//! medians, which is what the flow-speedup regression harness needs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: one untimed sample (fills caches, faults pages).
        let mut warm = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut warm);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let min = samples.first().copied().unwrap_or(0.0);
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len()
        );
        self
    }
}

/// Per-benchmark timing collector.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo-bench passes `--bench` (and possibly filters); this
            // harness runs everything and ignores the arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 1 warm-up + 3 samples, one iter() call each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_time(2.5e-3).ends_with(" ms"));
        assert!(fmt_time(2.5e-6).ends_with(" µs"));
        assert!(fmt_time(2.5e-9).ends_with(" ns"));
    }
}
