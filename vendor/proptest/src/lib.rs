//! Offline vendored stand-in for `proptest`.
//!
//! Supports the API subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and tuple strategies, `prop::collection::vec`, `prop_map`, and
//! the `prop_assert!` family. No shrinking: a failing case panics with the
//! generated inputs' case index so it can be reproduced (generation is
//! fully deterministic — case `i` of every test always sees the same
//! inputs).

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Namespaced helper strategies (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Generates vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property-test module usually imports.
pub mod prelude {
    /// Alias kept for signature compatibility (`impl Strategy<Value = T>`).
    pub use crate::Strategy as StrategyExt;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular `#[test]` that runs `cases` deterministic
/// iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // Deterministic per-test, per-case seed: the test name
                    // hash decorrelates sibling tests, the case index
                    // advances the stream.
                    let mut seed = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        seed ^= u64::from(b);
                        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    let mut rng =
                        <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                            seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                    let run = |case: u32, rng: &mut $crate::__rt::StdRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                        let _ = case;
                        $body
                    };
                    run(case, &mut rng);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_generate_in_bounds(x in 0usize..10, y in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn tuples_and_vec_compose(
            pair in (0u64..100, 0.0..1.0f64),
            v in prop::collection::vec(0i32..5, 1..8),
        ) {
            prop_assert!(pair.0 < 100);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(p in (0.0..10.0f64, 0.0..10.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..20.0).contains(&p));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        use rand::{Rng, SeedableRng};
        let strat = 0usize..1000;
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
        // Unrelated draws keep the streams in sync.
        let _: f64 = a.gen_range(0.0..1.0);
        let _: f64 = b.gen_range(0.0..1.0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
