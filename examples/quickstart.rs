//! Quickstart: generate a benchmark netlist, implement it as a
//! heterogeneous monolithic 3-D IC, and print the paper's PPAC metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hetero3d::cost::CostModel;
use hetero3d::flow::{Config, FlowError, FlowOptions, FlowSession};
use hetero3d::netgen::Benchmark;
use hetero3d::report::format_ppac;
use hetero3d::tech::Tier;

fn main() -> Result<(), FlowError> {
    // 1. A workload: an AES-class netlist at 5 % of the default size so
    //    the example finishes in a couple of seconds.
    let netlist = Benchmark::Aes.generate(0.05, 42);
    println!(
        "generated `{}`: {} gates, {} nets ({})",
        netlist.name,
        netlist.gate_count(),
        netlist.net_count(),
        Benchmark::Aes.description()
    );

    // 2. Implement it heterogeneously: 12-track @0.90 V bottom die,
    //    9-track @0.81 V top die, timing-based partitioning, 3-D clock
    //    tree and the repartitioning ECO all enabled by default. The
    //    session validates and buffers the design once; further calls
    //    on it (other configs, other frequencies) fork its checkpoints.
    let session = FlowSession::builder(&netlist)
        .options(FlowOptions::default())
        .build()?;
    let imp = session.run(Config::Hetero3d, 1.2)?;

    // 3. Inspect the outcome.
    let bottom = imp.tiers.iter().filter(|t| **t == Tier::Bottom).count();
    let top = imp.tiers.iter().filter(|t| **t == Tier::Top).count();
    println!(
        "placed {bottom} cells on the fast 12T die, {top} on the small 9T die; \
         {} MIVs cross between them",
        imp.routing.total_mivs
    );
    if let Some(eco) = &imp.eco {
        println!(
            "repartitioning ECO moved {} cells to the fast die (WNS {:+.3} -> {:+.3} ns)",
            eco.cells_moved, eco.initial_wns, eco.final_wns
        );
    }

    // 4. The PPAC roll-up (Table VI's rows).
    let ppac = imp.ppac(&CostModel::default());
    println!("\n{}", format_ppac(&ppac).render());
    Ok(())
}
