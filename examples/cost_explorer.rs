//! Cost-model exploration: sweep die area through the Table IV model and
//! find where heterogeneous 3-D becomes cheaper than 2-D — the economic
//! argument of Section II.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use hetero3d::cost::{pdp_pj, ppc, CostModel};

fn main() {
    let m = CostModel::default();
    println!(
        "wafer costs: 2-D {:.2} C', 3-D {:.2} C' (two FEOLs + integration)\n",
        m.wafer_cost_2d(),
        m.wafer_cost_3d()
    );

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>9}",
        "2D mm2", "2D cost e-6C'", "3D cost e-6C'", "het cost e-6C'", "het/2D"
    );
    let mut crossover = None;
    for i in 0..60 {
        let area = 0.05 * 1.15_f64.powi(i);
        if area > 40.0 {
            break;
        }
        let c2 = m.die_cost(area, false);
        let c3 = m.die_cost(area / 2.0, true);
        // Heterogeneous: 12.5 % silicon saving -> footprint 0.875x.
        let ch = m.die_cost(area / 2.0 * 0.875, true);
        if i % 6 == 0 {
            println!(
                "{:>10.2} {:>14.3} {:>14.3} {:>14.3} {:>9.3}",
                area,
                c2 * 1e6,
                c3 * 1e6,
                ch * 1e6,
                ch / c2
            );
        }
        if crossover.is_none() && ch < c2 {
            crossover = Some(area);
        }
    }
    match crossover {
        Some(a) => println!(
            "\nheterogeneous 3-D is cheaper than 2-D for all die sizes >= {a:.2} mm2-equivalent\n(and for smaller dies too, wherever the yield term is negligible)"
        ),
        None => println!("\nno crossover in range"),
    }

    // The composite metrics at a hypothetical operating point.
    let (freq, power) = (1.2, 190.0);
    let die = m.die_cost(0.195, true) * 1e6;
    println!(
        "\nexample operating point: {freq} GHz @ {power} mW, die {die:.2}e-6 C'\n  PDP = {:.1} pJ, PPC = {:.3} GHz/(mW x 1e-6 C')",
        pdp_pj(power, 1.0 / freq),
        ppc(freq, power, die)
    );
}
