//! Serve round-trip: start the flow service in-process on an ephemeral
//! TCP port, pipeline a handful of design-space queries at it through
//! the line-protocol client, and watch the checkpoint cache absorb the
//! repeated prefixes.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip
//! ```
//!
//! The same binary-level protocol works across machines: run
//! `cargo run --release --bin serve` on one host and point
//! `serve_client --addr HOST:PORT` (or your own newline-delimited JSON
//! speaker) at it.

use hetero3d::flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec, Proto};
use hetero3d::netgen::Benchmark;
use hetero3d::serve::{Client, Response, ServerConfig, TcpServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-worker service with a small checkpoint cache, bound to an
    // OS-assigned port. In production you'd run the `serve` binary.
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 4,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("flow service listening on {addr}");

    // Four queries against one netlist + option set — one cache key.
    // The first request builds the shared session (miss); the rest
    // fork its checkpoints (hits), including the pseudo-3-D snapshot
    // shared by the Hetero3d and ThreeD9T runs.
    let netlist = NetlistSpec {
        benchmark: Benchmark::Aes,
        scale: 0.02,
        seed: 7,
    };
    let commands = [
        FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.1,
        },
        FlowCommand::RunFlow {
            config: Config::TwoD12T,
            frequency_ghz: 1.1,
        },
        FlowCommand::RunFlow {
            config: Config::ThreeD9T,
            frequency_ghz: 1.0,
        },
        FlowCommand::FindFmax {
            config: Config::Hetero3d,
            start_ghz: 1.0,
        },
    ];

    let mut client = Client::connect(addr)?;
    for (i, command) in commands.iter().enumerate() {
        client.send(&FlowRequest {
            id: i as u64,
            netlist,
            options: FlowOptions::default(),
            command: command.clone(),
            deadline_ms: None,
            proto: Proto::V1,
        })?;
    }
    for _ in &commands {
        match client.recv()? {
            Response::Ok {
                id,
                cache_hit,
                report,
            } => println!(
                "#{id}: ok (cache {}) -> {}",
                if cache_hit { "hit" } else { "miss" },
                report.headline()
            ),
            Response::Rejected { id, kind, message } => {
                println!("#{id:?}: rejected [{kind}] {message}");
            }
        }
    }
    drop(client);

    let stats = server.shutdown();
    println!(
        "served {} ok / {} cache hits / {} sessions built",
        stats.completed_ok, stats.cache_hits, stats.cache_misses
    );
    Ok(())
}
