//! Boundary-cell study: reproduce the Section II-B analysis — when can
//! two libraries share a monolithic stack without level shifters, and
//! what happens to an FO-4 stage at the tier boundary?
//!
//! ```sh
//! cargo run --release --example boundary_cells
//! ```

use hetero3d::circuit::{fo4, TechFlavor};
use hetero3d::tech::{needs_level_shifter, BoundaryCheck, Library};

fn main() {
    // 1. The level-shifter rule: VDDH - VDDL < 0.3 x VDDH.
    let fast = Library::twelve_track();
    let slow = Library::nine_track();
    println!(
        "12-track @{:.2} V  +  9-track @{:.2} V:",
        fast.vdd, slow.vdd
    );
    let check = BoundaryCheck::check(&fast, &slow);
    println!("  voltage delta        : {:.2} V", check.voltage_delta);
    println!("  needs level shifters : {}", check.needs_level_shifter);
    println!("  threshold margin ok  : {}", check.threshold_margin_ok);
    println!(
        "  slew-range overlap   : {:.0} %",
        check.slew_overlap * 100.0
    );
    println!("  compatible           : {}\n", check.compatible());

    // A hypothetical 0.9 V / 0.55 V pair would NOT work:
    println!(
        "0.90 V + 0.55 V would need shifters: {}\n",
        needs_level_shifter(0.90, 0.55)
    );

    // 2. Heterogeneity at the driver output (Fig. 2a / Table II): a fast
    //    driver sees smaller loads when its fanout moves to the slow die.
    let base = fo4::driver_output_case(TechFlavor::Fast, TechFlavor::Fast);
    let hetero = fo4::driver_output_case(TechFlavor::Fast, TechFlavor::Slow);
    let d = hetero.percent_delta(&base);
    println!("fast driver, loads moved to the slow die:");
    println!(
        "  rise delay {:+.1} %, fall slew {:+.1} %, leakage {:+.1} %",
        d[2], d[1], d[4]
    );

    // 3. Heterogeneity at the driver input (Fig. 2b / Table III): the
    //    infamous leakage blow-up when a 0.81 V swing drives a 0.90 V gate.
    let base = fo4::driver_input_case(TechFlavor::Fast, TechFlavor::Fast);
    let hetero = fo4::driver_input_case(TechFlavor::Slow, TechFlavor::Fast);
    let d = hetero.percent_delta(&base);
    println!(
        "\nslow-tier signal into a fast-tier FO4 (driver VG {:.2} V -> {:.2} V):",
        base.driver_vg, hetero.driver_vg
    );
    println!(
        "  rise delay {:+.1} %, leakage {:+.1} %  <- the PMOS never fully turns off",
        d[2], d[4]
    );

    let base = fo4::driver_input_case(TechFlavor::Slow, TechFlavor::Slow);
    let hetero = fo4::driver_input_case(TechFlavor::Fast, TechFlavor::Slow);
    let d = hetero.percent_delta(&base);
    println!("\nfast-tier signal into a slow-tier FO4 (overdriven gate):");
    println!(
        "  rise delay {:+.1} %, leakage {:+.1} %  <- faster AND leaks less",
        d[2], d[4]
    );
}
