//! Design-space exploration: implement one netlist in all five
//! configurations of the paper's Fig. 1 at the iso-performance target and
//! print the Table VI/VII-style comparison plus a measured Table I
//! ranking.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use hetero3d::cost::CostModel;
use hetero3d::flow::{FlowError, FlowOptions, FlowSession};
use hetero3d::netgen::Benchmark;
use hetero3d::report::{format_ppac, qualitative_ranking};

fn main() -> Result<(), FlowError> {
    let netlist = Benchmark::Netcard.generate(0.04, 7);
    println!(
        "exploring `{}` ({} gates) across the five configurations...\n",
        netlist.name,
        netlist.gate_count()
    );

    // One session: the validated base design and the shared pseudo-3-D
    // checkpoint are computed once and forked by all five flows.
    let session = FlowSession::builder(&netlist)
        .options(FlowOptions::default())
        .build()?;
    let cmp = session.compare(&CostModel::default())?;
    println!(
        "iso-performance target (12-track 2-D fmax): {:.2} GHz\n",
        cmp.target_ghz
    );

    println!(
        "heterogeneous implementation:\n{}",
        format_ppac(&cmp.hetero).render()
    );

    println!("percent deltas vs each homogeneous configuration");
    println!("(negative = hetero better, except PPC where positive = better):\n");
    for d in &cmp.deltas {
        println!(
            "  vs {:<18} power {:+6.1}%  PDP {:+6.1}%  die cost {:+6.1}%  PPC {:+6.1}%",
            d.config.to_string(),
            d.total_power,
            d.pdp,
            d.die_cost,
            d.ppc
        );
    }

    let mut all = cmp.homogeneous.clone();
    all.push(cmp.hetero.clone());
    println!("\nmeasured qualitative ranking (Table I; 1 = worst, 5 = best):\n");
    println!("{}", qualitative_ranking(&all).render());
    Ok(())
}
