//! Bring your own netlist: build a small pipelined datapath with the
//! netlist API, round-trip it through structural Verilog, and push it
//! through the 2-D and heterogeneous 3-D flows.
//!
//! ```sh
//! cargo run --release --example custom_netlist
//! ```

use hetero3d::cost::CostModel;
use hetero3d::flow::{Config, FlowOptions, FlowSession};
use hetero3d::netlist::{verilog, Netlist};
use hetero3d::tech::{CellKind, Drive};

/// Builds an 8-bit two-stage XOR/AND datapath: in -> reg -> logic -> reg.
fn build_datapath() -> Netlist {
    let mut n = Netlist::new("datapath8");
    let clk_in = n.add_input("clk");
    let clk = n.add_net("clk", clk_in, 0);
    n.set_clock(clk);

    let block = n.add_block("dp");
    let mut q1 = Vec::new();
    for i in 0..8 {
        let a = n.add_input(format!("a{i}"));
        let na = n.add_net(format!("a{i}"), a, 0);
        let ff = n.add_gate(format!("r1_{i}"), CellKind::Dff, Drive::X1, block);
        n.connect(na, ff, 0);
        n.connect(clk, ff, 1);
        q1.push(n.add_net(format!("q1_{i}"), ff, 0));
    }
    // Stage logic: neighbor XOR feeding an AND mask, 8 bits wide.
    for i in 0..8 {
        let x = n.add_gate(format!("x{i}"), CellKind::Xor2, Drive::X1, block);
        n.connect(q1[i], x, 0);
        n.connect(q1[(i + 1) % 8], x, 1);
        let nx = n.add_net(format!("x{i}"), x, 0);
        let g = n.add_gate(format!("m{i}"), CellKind::And2, Drive::X1, block);
        n.connect(nx, g, 0);
        n.connect(q1[(i + 3) % 8], g, 1);
        let ng = n.add_net(format!("m{i}"), g, 0);
        let ff = n.add_gate(format!("r2_{i}"), CellKind::Dff, Drive::X1, block);
        n.connect(ng, ff, 0);
        n.connect(clk, ff, 1);
        let q = n.add_net(format!("y{i}"), ff, 0);
        let po = n.add_output(format!("y{i}"));
        n.connect(q, po, 0);
    }
    n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = build_datapath();
    netlist.validate()?;
    println!(
        "built `{}`: {} gates / {} registers",
        netlist.name,
        netlist.gate_count(),
        netlist.stats().registers
    );

    // Round-trip through structural Verilog (what you'd hand to any
    // other tool, or load from one).
    let text = verilog::write(&netlist);
    println!("\n--- datapath8.v (first 12 lines) ---");
    for line in text.lines().take(12) {
        println!("{line}");
    }
    let parsed = verilog::parse(&text)?;
    assert_eq!(parsed.gate_count(), netlist.gate_count());
    println!("--- round-trip parse OK ---\n");

    // Implement it both ways through one session: the validated,
    // buffered base design is shared by both runs.
    let session = FlowSession::builder(&parsed)
        .options(FlowOptions::default())
        .build()?;
    let cost = CostModel::default();
    for config in [Config::TwoD12T, Config::Hetero3d] {
        let imp = session.run(config, 2.0)?;
        let p = imp.ppac(&cost);
        println!(
            "{:<18} WNS {:+.3} ns  power {:.3} mW  die cost {:.3}e-6 C'  PPC {:.2}",
            config.to_string(),
            p.wns_ns,
            p.total_power_mw,
            p.die_cost_uc,
            p.ppc
        );
    }
    Ok(())
}
