//! Fault injection against the persistent checkpoint store (tier-1).
//!
//! The store's contract under arbitrary disk damage: every injected
//! fault — any single-bit flip, truncation at any point, a wrong
//! version or kind byte, an oversized length field, a torn final file —
//! is answered with a typed [`StoreError`], never a panic, never an
//! oversized allocation, and never a silently wrong checkpoint. The
//! damaged record is evicted as it is reported, so the following lookup
//! is a clean miss and one `put` rebuilds the key bit-exactly.

use m3d_db::DesignDb;
use m3d_netlist::Netlist;
use m3d_store::{crc32, StackSpec, Store, StoreError, StoreKey, FORMAT_VERSION};
use m3d_tech::{CellKind, Drive, Tier};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory, rooted at `M3D_STORE_TEST_ROOT` when set
/// (CI uploads that root as an artifact on failure). Not removed on
/// panic so a failing run leaves the damaged store behind.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let root = std::env::var_os("M3D_STORE_TEST_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    root.join(format!(
        "m3d-faults-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A deliberately tiny snapshot — a valid four-cell inverter chain on
/// the heterogeneous stack — so the *exhaustive* bit-flip sweep stays
/// cheap (the record is a few hundred bytes; every byte still goes
/// through the same envelope and decoder paths as a full design, which
/// the proptest suite in `crates/store` exercises at scale).
fn small_db() -> DesignDb {
    let mut n = Netlist::new("fault-probe");
    let a = n.add_input("a");
    let g1 = n.add_gate("g1", CellKind::Inv, Drive::X1, 0);
    let g2 = n.add_gate("g2", CellKind::Inv, Drive::X2, 0);
    let y = n.add_output("y");
    let na = n.add_net("na", a, 0);
    let n1 = n.add_net("n1", g1, 0);
    let n2 = n.add_net("n2", g2, 0);
    n.connect(na, g1, 0);
    n.connect(n1, g2, 0);
    n.connect(n2, y, 0);
    let tiers: Vec<Tier> = (0..n.cell_count())
        .map(|i| if i % 2 == 0 { Tier::Bottom } else { Tier::Top })
        .collect();
    let mut db = DesignDb::new(n, StackSpec::Hetero.build(), 1.25);
    db.set_tiers(tiers);
    let _ = db.take_journal();
    db
}

fn key() -> StoreKey {
    StoreKey::new("00c0ffee00c0ffee", "0123456789abcdef").unwrap()
}

/// The one on-disk record in `dir` (ignoring `.tmp-*` leftovers).
fn record_path(dir: &Path) -> PathBuf {
    let mut records: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"))
        })
        .collect();
    assert_eq!(records.len(), 1, "expected exactly one record in {dir:?}");
    records.pop().unwrap()
}

/// Asserts one injected fault is handled per contract: `get_db` returns
/// a typed corruption error (no panic), the record is gone, the next
/// lookup is a clean miss, and a rebuild restores the original
/// fingerprint.
fn assert_fault_contained(store: &Store, original: &DesignDb, what: &str) {
    match store.get_db(&key()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("{what}: expected a typed corruption error, got {other:?}"),
    }
    assert!(
        store
            .get_db(&key())
            .expect("post-eviction lookup")
            .is_none(),
        "{what}: the evicted record must read as a clean miss"
    );
    store.put_db(&key(), original).expect("rebuild");
    let rebuilt = store
        .get_db(&key())
        .expect("rebuilt read")
        .expect("rebuilt hit");
    assert_eq!(
        rebuilt.state_fingerprint(),
        original.state_fingerprint(),
        "{what}: rebuild must restore the exact snapshot"
    );
}

#[test]
fn every_single_bit_flip_is_detected_and_contained() {
    let dir = scratch_dir("bitflip");
    let store = Store::open(&dir).unwrap();
    let db = small_db();
    store.put_db(&key(), &db).unwrap();
    let path = record_path(&dir);
    let pristine = std::fs::read(&path).unwrap();

    let mut faults = 0u64;
    for byte in 0..pristine.len() {
        for bit in 0..8 {
            let mut damaged = pristine.clone();
            damaged[byte] ^= 1 << bit;
            std::fs::write(&path, &damaged).unwrap();
            match store.get_db(&key()) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip byte {byte} bit {bit}: got {other:?}"),
            }
            assert!(
                store.get_db(&key()).expect("miss after eviction").is_none(),
                "flip byte {byte} bit {bit}: eviction must leave a miss"
            );
            // Re-seed for the next flip.
            std::fs::write(&path, &pristine).unwrap();
            faults += 1;
        }
    }
    assert_eq!(faults, pristine.len() as u64 * 8);
    assert_eq!(store.stats().corrupt_evicted, faults);
    // The restored pristine bytes still verify and decode.
    let back = store.get_db(&key()).unwrap().expect("pristine record");
    assert_eq!(back.state_fingerprint(), db.state_fingerprint());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_every_eighth_boundary_is_contained() {
    let dir = scratch_dir("truncate");
    let store = Store::open(&dir).unwrap();
    let db = small_db();
    store.put_db(&key(), &db).unwrap();
    let path = record_path(&dir);
    let pristine = std::fs::read(&path).unwrap();

    for eighth in 0..8 {
        let cut = pristine.len() * eighth / 8;
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert_fault_contained(&store, &db, &format!("truncated to {cut} bytes"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_version_and_wrong_kind_are_rejected_with_valid_checksums() {
    let dir = scratch_dir("version");
    let store = Store::open(&dir).unwrap();
    let db = small_db();
    store.put_db(&key(), &db).unwrap();
    let path = record_path(&dir);
    let pristine = std::fs::read(&path).unwrap();

    // A future format version with a *recomputed* (valid) CRC: only the
    // version check can refuse it.
    let mut future = pristine.clone();
    future[4] = FORMAT_VERSION + 1;
    reseal(&mut future);
    std::fs::write(&path, &future).unwrap();
    assert_fault_contained(&store, &db, "future format version");

    // A db record presented under the session file name: the kind byte
    // must refuse it even though the envelope is self-consistent.
    let session_path = path.with_extension("session");
    std::fs::write(&session_path, &pristine).unwrap();
    match store.get_session(&key()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("kind mismatch: expected corruption, got {other:?}"),
    }
    assert!(!session_path.exists(), "the mismatched record is evicted");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_length_fields_never_allocate() {
    let dir = scratch_dir("lengths");
    let store = Store::open(&dir).unwrap();
    let db = small_db();
    store.put_db(&key(), &db).unwrap();
    let path = record_path(&dir);
    let pristine = std::fs::read(&path).unwrap();

    // Envelope-level: a payload length claiming ~16 EiB, CRC resealed.
    // The length/actual cross-check must refuse it before any payload
    // work happens.
    let mut huge = pristine.clone();
    huge[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut huge);
    std::fs::write(&path, &huge).unwrap();
    assert_fault_contained(&store, &db, "oversized envelope length");

    // Payload-level: the first payload field is the netlist name's
    // length prefix. Claim u64::MAX with a resealed CRC — the decoder
    // must bound the claim against the remaining bytes *before*
    // allocating (an unchecked `with_capacity` here would abort the
    // process, which no test could observe as a failure).
    let mut lying = pristine.clone();
    lying[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut lying);
    std::fs::write(&path, &lying).unwrap();
    assert_fault_contained(&store, &db, "oversized payload length");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_writes_and_stale_tmp_files_are_invisible_or_contained() {
    let dir = scratch_dir("torn");
    let store = Store::open(&dir).unwrap();
    let db = small_db();

    // A stale tmp file from a crashed writer is never read: lookups
    // miss cleanly right past it.
    std::fs::write(dir.join(".tmp-99999-0-junk.db"), b"half a record").unwrap();
    assert!(store.get_db(&key()).unwrap().is_none());

    // A torn *final* file — as a non-atomic writer would leave — is
    // detected, evicted and rebuilt. (The store's own commit protocol
    // makes this unreachable; the simulation proves the reader would
    // survive it anyway.)
    store.put_db(&key(), &db).unwrap();
    let path = record_path(&dir);
    let pristine = std::fs::read(&path).unwrap();
    std::fs::write(&path, &pristine[..pristine.len() * 2 / 3]).unwrap();
    assert_fault_contained(&store, &db, "torn final file");

    // An empty final file is the degenerate torn write.
    std::fs::write(&path, b"").unwrap();
    assert_fault_contained(&store, &db, "empty final file");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recomputes the CRC trailer after deliberate header/payload edits, so
/// a test reaches the check it targets instead of tripping the
/// checksum first.
fn reseal(record: &mut [u8]) {
    let body = record.len() - 4;
    let crc = crc32(&record[..body]);
    record[body..].copy_from_slice(&crc.to_le_bytes());
}
