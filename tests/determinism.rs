//! Determinism regression tests for the parallel flow engine.
//!
//! The contract under test: every result produced by `try_run_flow` /
//! `try_compare_configs` is **bit-identical** at any thread count. Threads
//! are a performance knob only — `FlowOptions::threads`, the process-global
//! `par::set_threads`, and the `HETERO3D_THREADS` environment variable may
//! change wall-clock time but never a single output bit.

use hetero3d::cost::CostModel;
use hetero3d::db::DesignDb;
use hetero3d::flow::{
    try_compare_configs, try_run_flow, Comparison, Config, FlowOptions, Implementation,
};
use hetero3d::geom::{Point, Rect};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::{CellId, NetId};
use hetero3d::par;
use hetero3d::place::Placement;
use hetero3d::sta::{NetModel, Parasitics};
use hetero3d::tech::{Drive, Tier, TierStack};
use proptest::prelude::*;

const ALL_CONFIGS: [Config; 5] = [
    Config::TwoD9T,
    Config::TwoD12T,
    Config::ThreeD9T,
    Config::ThreeD12T,
    Config::Hetero3d,
];

fn quick_options(threads: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 6;
    o.threads = threads;
    o
}

fn run_flow(n: &hetero3d::netlist::Netlist, c: Config, f: f64, o: &FlowOptions) -> Implementation {
    try_run_flow(n, c, f, o).expect("flow succeeds on a valid netlist")
}

fn compare_configs(
    n: &hetero3d::netlist::Netlist,
    o: &FlowOptions,
    cost: &CostModel,
) -> Comparison {
    try_compare_configs(n, o, cost).expect("comparison succeeds on a valid netlist")
}

/// Exact fingerprint of an implementation: float metrics as raw bits plus
/// the full tier assignment. Any nondeterminism in partitioning, placement,
/// routing, CTS, STA or power shows up here.
fn fingerprint(imp: &Implementation) -> (u64, u64, u64, Vec<Tier>) {
    (
        imp.sta.wns.to_bits(),
        imp.routing.total_wirelength_um.to_bits(),
        imp.power.total_mw().to_bits(),
        imp.tiers.to_vec(),
    )
}

#[test]
fn run_flow_is_bit_identical_across_thread_counts() {
    for bench in [Benchmark::Aes, Benchmark::Ldpc] {
        let netlist = bench.generate(0.01, 7);
        for config in ALL_CONFIGS {
            let base = fingerprint(&run_flow(&netlist, config, 1.0, &quick_options(1)));
            for threads in [2usize, 4, 8] {
                let par = fingerprint(&run_flow(&netlist, config, 1.0, &quick_options(threads)));
                assert_eq!(
                    par, base,
                    "{bench:?}/{config:?}: threads={threads} diverged from threads=1"
                );
            }
        }
    }
}

#[test]
fn compare_configs_is_bit_identical_across_thread_counts() {
    let cost = CostModel::default();
    for bench in [Benchmark::Aes, Benchmark::Ldpc] {
        let netlist = bench.generate(0.01, 7);
        let base = compare_configs(&netlist, &quick_options(1), &cost);
        let par = compare_configs(&netlist, &quick_options(4), &cost);

        assert_eq!(base.target_ghz.to_bits(), par.target_ghz.to_bits());
        let pairs = base
            .implementations
            .iter()
            .zip(&par.implementations)
            .chain(std::iter::once((
                &base.hetero_implementation,
                &par.hetero_implementation,
            )));
        for (a, b) in pairs {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{bench:?}/{:?}: parallel comparison diverged",
                a.config
            );
        }
        for (a, b) in base.deltas.iter().zip(&par.deltas) {
            assert_eq!(a.total_power.to_bits(), b.total_power.to_bits());
            assert_eq!(a.die_cost.to_bits(), b.die_cost.to_bits());
            assert_eq!(a.ppc.to_bits(), b.ppc.to_bits());
        }
    }
}

#[test]
fn telemetry_manifest_is_bit_identical_across_thread_counts() {
    // The observability half of the contract: the deterministic manifest
    // section (span call counts, counters, gauges, labels) must not move
    // with the worker count either. Wall times and cache hit rates live
    // in the performance-only section, which is excluded here by design.
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let manifest_at = |threads: usize| {
        let mut options = quick_options(threads);
        options.obs = hetero3d::obs::Obs::enabled();
        let obs = options.obs.clone();
        let _ = run_flow(&netlist, Config::Hetero3d, 1.0, &options);
        obs.manifest()
    };
    let seq = manifest_at(1);
    let par = manifest_at(4);
    assert!(seq.span("run_flow").is_some(), "run_flow span recorded");
    assert!(
        seq.counter("partition/final_cut").is_some(),
        "FM counters recorded"
    );
    assert!(
        seq.gauge("route/wirelength_um").is_some(),
        "routing gauges recorded"
    );
    assert_eq!(
        seq.deterministic_json(),
        par.deterministic_json(),
        "deterministic manifest section diverged between 1 and 4 threads"
    );
}

#[test]
fn global_thread_setting_is_also_invisible() {
    // `threads: 0` defers to the process-global knob; flip it around an
    // identical pair of runs. (Other tests in this binary may race on the
    // global — that is exactly the point: it must not matter.)
    let netlist = Benchmark::Aes.generate(0.01, 7);
    par::set_threads(1);
    let seq = fingerprint(&run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0),
    ));
    par::set_threads(4);
    let par_run = fingerprint(&run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0),
    ));
    par::set_threads(0);
    assert_eq!(seq, par_run, "global set_threads changed flow results");
}

/// A design database with every journalable artifact installed, so a
/// random edit script can exercise all five fine-grained edit kinds.
fn journaled_db(seed: u64) -> DesignDb {
    let netlist = Benchmark::Aes.generate(0.012, seed);
    let die = Rect::new(0.0, 0.0, 40.0, 40.0);
    let placement = Placement::centered(&netlist, die);
    let parasitics = Parasitics::zero_wire(&netlist);
    let mut db = DesignDb::new(netlist, TierStack::heterogeneous(), 1.0);
    db.set_placement(placement);
    db.set_parasitics(parasitics);
    let _ = db.take_journal();
    db
}

/// Applies one decoded `(op, index, mag)` edit through the database's
/// journaling mutators.
fn apply_db_edit(db: &mut DesignDb, op: u8, index: usize, mag: f64) {
    let gates: Vec<CellId> = db
        .netlist()
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();
    match op {
        0 => {
            let g = gates[index % gates.len()];
            let d = db.netlist().cell(g).class.gate_drive().expect("gate");
            let to = if mag < 0.5 {
                d.upsized().unwrap_or(Drive::X1)
            } else {
                d.downsized().unwrap_or(Drive::X8)
            };
            db.set_drive(g, to);
        }
        1 => {
            let g = gates[index % gates.len()];
            let to = db.tiers()[g.index()].other();
            db.set_tier(g, to);
        }
        2 => {
            let g = gates[index % gates.len()];
            db.move_cell(
                g,
                Point {
                    x: 40.0 * mag,
                    y: 40.0 * (1.0 - mag),
                },
            );
        }
        3 => {
            let k = NetId::from_index(index % db.netlist().net_count());
            db.set_net_model(
                k,
                NetModel {
                    wire_cap_ff: 0.5 + 4.0 * mag,
                    wire_delay_ns: 0.002 * mag,
                },
            );
        }
        _ => db.set_period((0.4 + mag).max(0.05)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The journal IS the state delta: any random fine-grained edit script
    // recorded on one database, replayed onto a pre-edit fork, must
    // reproduce the edited state bit for bit (`state_fingerprint`
    // hashes drives, tiers, placement bits, net-model bits and period).
    #[test]
    fn journal_replay_onto_fork_is_bit_identical(
        edits in prop::collection::vec((0u8..5, 0usize..4096, 0.0..1.0f64), 1..24),
        seed in 0u64..32,
    ) {
        let mut db = journaled_db(seed);
        let mut fork = db.fork();
        for &(op, index, mag) in &edits {
            apply_db_edit(&mut db, op, index, mag);
        }
        let journal = db.take_journal();
        prop_assert!(journal.is_replayable(), "fine-grained edits only");
        fork.replay(&journal).expect("replayable journal");
        prop_assert_eq!(
            db.state_fingerprint(),
            fork.state_fingerprint(),
            "replayed fork diverged from the edited database"
        );
        // Replay journals equivalent edits: a second fork replaying the
        // fork's own journal converges to the same state too.
        let mut second = journaled_db(seed).fork();
        second.replay(&fork.take_journal()).expect("replayable journal");
        prop_assert_eq!(db.state_fingerprint(), second.state_fingerprint());
    }
}
