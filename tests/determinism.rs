//! Determinism regression tests for the parallel flow engine.
//!
//! The contract under test: every result produced by `run_flow` /
//! `compare_configs` is **bit-identical** at any thread count. Threads are
//! a performance knob only — `FlowOptions::threads`, the process-global
//! `par::set_threads`, and the `HETERO3D_THREADS` environment variable may
//! change wall-clock time but never a single output bit.

use hetero3d::cost::CostModel;
use hetero3d::flow::{compare_configs, run_flow, Config, FlowOptions, Implementation};
use hetero3d::netgen::Benchmark;
use hetero3d::par;
use hetero3d::tech::Tier;

const ALL_CONFIGS: [Config; 5] = [
    Config::TwoD9T,
    Config::TwoD12T,
    Config::ThreeD9T,
    Config::ThreeD12T,
    Config::Hetero3d,
];

fn quick_options(threads: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer.iterations = 6;
    o.threads = threads;
    o
}

/// Exact fingerprint of an implementation: float metrics as raw bits plus
/// the full tier assignment. Any nondeterminism in partitioning, placement,
/// routing, CTS, STA or power shows up here.
fn fingerprint(imp: &Implementation) -> (u64, u64, u64, Vec<Tier>) {
    (
        imp.sta.wns.to_bits(),
        imp.routing.total_wirelength_um.to_bits(),
        imp.power.total_mw().to_bits(),
        imp.tiers.clone(),
    )
}

#[test]
fn run_flow_is_bit_identical_across_thread_counts() {
    for bench in [Benchmark::Aes, Benchmark::Ldpc] {
        let netlist = bench.generate(0.01, 7);
        for config in ALL_CONFIGS {
            let base = fingerprint(&run_flow(&netlist, config, 1.0, &quick_options(1)));
            for threads in [2usize, 4, 8] {
                let par = fingerprint(&run_flow(&netlist, config, 1.0, &quick_options(threads)));
                assert_eq!(
                    par, base,
                    "{bench:?}/{config:?}: threads={threads} diverged from threads=1"
                );
            }
        }
    }
}

#[test]
fn compare_configs_is_bit_identical_across_thread_counts() {
    let cost = CostModel::default();
    for bench in [Benchmark::Aes, Benchmark::Ldpc] {
        let netlist = bench.generate(0.01, 7);
        let base = compare_configs(&netlist, &quick_options(1), &cost);
        let par = compare_configs(&netlist, &quick_options(4), &cost);

        assert_eq!(base.target_ghz.to_bits(), par.target_ghz.to_bits());
        let pairs = base
            .implementations
            .iter()
            .zip(&par.implementations)
            .chain(std::iter::once((
                &base.hetero_implementation,
                &par.hetero_implementation,
            )));
        for (a, b) in pairs {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{bench:?}/{:?}: parallel comparison diverged",
                a.config
            );
        }
        for (a, b) in base.deltas.iter().zip(&par.deltas) {
            assert_eq!(a.total_power.to_bits(), b.total_power.to_bits());
            assert_eq!(a.die_cost.to_bits(), b.die_cost.to_bits());
            assert_eq!(a.ppc.to_bits(), b.ppc.to_bits());
        }
    }
}

#[test]
fn telemetry_manifest_is_bit_identical_across_thread_counts() {
    // The observability half of the contract: the deterministic manifest
    // section (span call counts, counters, gauges, labels) must not move
    // with the worker count either. Wall times and cache hit rates live
    // in the performance-only section, which is excluded here by design.
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let manifest_at = |threads: usize| {
        let mut options = quick_options(threads);
        options.obs = hetero3d::obs::Obs::enabled();
        let obs = options.obs.clone();
        let _ = run_flow(&netlist, Config::Hetero3d, 1.0, &options);
        obs.manifest()
    };
    let seq = manifest_at(1);
    let par = manifest_at(4);
    assert!(seq.span("run_flow").is_some(), "run_flow span recorded");
    assert!(
        seq.counter("partition/final_cut").is_some(),
        "FM counters recorded"
    );
    assert!(
        seq.gauge("route/wirelength_um").is_some(),
        "routing gauges recorded"
    );
    assert_eq!(
        seq.deterministic_json(),
        par.deterministic_json(),
        "deterministic manifest section diverged between 1 and 4 threads"
    );
}

#[test]
fn global_thread_setting_is_also_invisible() {
    // `threads: 0` defers to the process-global knob; flip it around an
    // identical pair of runs. (Other tests in this binary may race on the
    // global — that is exactly the point: it must not matter.)
    let netlist = Benchmark::Aes.generate(0.01, 7);
    par::set_threads(1);
    let seq = fingerprint(&run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0),
    ));
    par::set_threads(4);
    let par_run = fingerprint(&run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0),
    ));
    par::set_threads(0);
    assert_eq!(seq, par_run, "global set_threads changed flow results");
}
