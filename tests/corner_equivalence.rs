//! Equivalence tests for the technology axis: multi-corner sign-off and
//! the stacking × corner × frequency Pareto sweep.
//!
//! The contracts under test:
//!
//! * **Default-scenario identity** — a monolithic worst-corner run is
//!   the *same physical design* as the default run (placement, tiers,
//!   routing, power all bit-identical); corners are additional sign-off
//!   analyses, never a different implementation.
//! * **Worst-corner sign-off** — the worst corner's analysis equals the
//!   corresponding single-corner run bit for bit, and is never more
//!   optimistic than typical.
//! * **Thread invariance** — worst-corner sign-off and the whole Pareto
//!   sweep are bit-identical at any thread count, like every other
//!   output of the flow.
//! * **Checkpoint economics** — a Pareto sweep runs the pseudo-3-D
//!   stage exactly once per distinct 3-D scenario, regardless of the
//!   frequency-grid size.

use hetero3d::cost::CostModel;
use hetero3d::flow::{try_run_flow, Config, FlowOptions, FlowSession, Implementation};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::Netlist;
use hetero3d::obs::Obs;
use hetero3d::tech::{Corner, CornerSet, StackingStyle, TechContext, Tier};

fn quick_options(threads: usize, tech: TechContext) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 6;
    o.threads = threads;
    o.tech = tech;
    o
}

fn tech(stacking: StackingStyle, corners: CornerSet) -> TechContext {
    TechContext { stacking, corners }
}

/// Exact fingerprint of the physical design, sign-off excluded: any
/// scenario that claims to be "the same implementation, analyzed
/// differently" must match on all of these bits.
fn design_fingerprint(imp: &Implementation) -> (u64, u64, Vec<Tier>) {
    (
        imp.routing.total_wirelength_um.to_bits(),
        imp.power.total_mw().to_bits(),
        imp.tiers.to_vec(),
    )
}

#[test]
fn monolithic_worst_corner_run_is_the_same_design_as_the_default_run() {
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let default_run = try_run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0, TechContext::default()),
    )
    .expect("default flow");
    let worst_run = try_run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0, tech(StackingStyle::Monolithic, CornerSet::Worst)),
    )
    .expect("worst-corner flow");
    // Same placement, tiers, routing and (typical-corner) power: extra
    // sign-off corners never perturb the implementation itself.
    assert_eq!(
        design_fingerprint(&default_run),
        design_fingerprint(&worst_run),
        "worst-corner sign-off changed the physical design"
    );
    // The worst-corner sign-off may only be equal or more pessimistic.
    assert!(
        worst_run.sta.wns <= default_run.sta.wns,
        "worst corner ({}) more optimistic than typical ({})",
        worst_run.sta.wns,
        default_run.sta.wns
    );
}

#[test]
fn worst_corner_signoff_equals_the_slow_single_corner_run() {
    // The slow corner dominates this workload (derated supply, raised
    // threshold), so worst-corner sign-off must reproduce the dedicated
    // slow-corner run's analysis bit for bit.
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let worst = try_run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(0, tech(StackingStyle::Monolithic, CornerSet::Worst)),
    )
    .expect("worst-corner flow");
    let slow = try_run_flow(
        &netlist,
        Config::Hetero3d,
        1.0,
        &quick_options(
            0,
            tech(StackingStyle::Monolithic, CornerSet::single(Corner::Slow)),
        ),
    )
    .expect("slow-corner flow");
    assert_eq!(
        worst.sta.wns.to_bits(),
        slow.sta.wns.to_bits(),
        "worst-corner sign-off diverged from the slow-corner analysis"
    );
    assert_eq!(design_fingerprint(&worst), design_fingerprint(&slow));
}

#[test]
fn worst_corner_signoff_is_bit_identical_across_thread_counts() {
    let netlist = Benchmark::Aes.generate(0.01, 7);
    for stacking in StackingStyle::ALL {
        let run = |threads: usize| {
            try_run_flow(
                &netlist,
                Config::Hetero3d,
                1.0,
                &quick_options(threads, tech(stacking, CornerSet::Worst)),
            )
            .expect("worst-corner flow")
        };
        let base = run(1);
        for threads in [2usize, 4] {
            let par = run(threads);
            assert_eq!(
                base.sta.wns.to_bits(),
                par.sta.wns.to_bits(),
                "{stacking}: threads={threads} sign-off diverged from threads=1"
            );
            assert_eq!(
                design_fingerprint(&base),
                design_fingerprint(&par),
                "{stacking}: threads={threads} design diverged from threads=1"
            );
        }
    }
}

#[test]
fn stacking_style_reaches_the_signoff_and_the_cost_model() {
    // F2F hybrid bonding has its own via RC and a different die-cost
    // model (wafer-bond adder + per-connection cost instead of the
    // monolithic sequential-process premium); if the style were
    // silently dropped anywhere along the options → stages → PPAC
    // chain, these would come back bit-equal.
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let cost = CostModel::default();
    let at = |stacking| {
        let imp = try_run_flow(
            &netlist,
            Config::Hetero3d,
            1.0,
            &quick_options(0, tech(stacking, CornerSet::default())),
        )
        .expect("flow");
        imp.ppac(&cost)
    };
    let mono = at(StackingStyle::Monolithic);
    let f2f = at(StackingStyle::F2fHybridBond);
    assert_ne!(
        f2f.die_cost_uc.to_bits(),
        mono.die_cost_uc.to_bits(),
        "f2f bond economics did not reach the cost model"
    );
    assert_ne!(
        f2f.effective_delay_ns.to_bits(),
        mono.effective_delay_ns.to_bits(),
        "f2f via RC did not reach the sign-off timing"
    );
}

fn pareto_session(netlist: &Netlist, threads: usize) -> FlowSession {
    let mut options = FlowOptions::default();
    options.placer_mut().iterations = 6;
    options.threads = threads;
    options.obs = Obs::enabled();
    FlowSession::builder(netlist)
        .options(options)
        .build()
        .expect("session")
}

fn pseudo3d_runs(obs: &Obs) -> u64 {
    obs.manifest()
        .counters
        .iter()
        .filter(|(k, _)| k == "flow/pseudo3d_runs" || k.ends_with("/flow/pseudo3d_runs"))
        .map(|&(_, v)| v)
        .sum()
}

#[test]
fn pareto_sweep_is_bit_identical_across_thread_counts() {
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let cost = CostModel::default();
    let sweep = |threads: usize| {
        pareto_session(&netlist, threads)
            .pareto(Config::Hetero3d, 0.9, 1.1, 2, &cost)
            .expect("pareto sweep")
    };
    let base = sweep(1);
    for threads in [2usize, 4] {
        assert_eq!(
            base,
            sweep(threads),
            "pareto sweep diverged at threads={threads}"
        );
    }
}

#[test]
fn pareto_reuses_one_pseudo_checkpoint_per_scenario() {
    let netlist = Benchmark::Aes.generate(0.01, 7);
    let cost = CostModel::default();

    // 3-D: both stacking styles × all corners, three frequency rungs —
    // yet exactly one pseudo-3-D run per scenario.
    let session = pareto_session(&netlist, 0);
    let summary = session
        .pareto(Config::Hetero3d, 0.9, 1.1, 3, &cost)
        .expect("pareto sweep");
    let scenarios = (StackingStyle::ALL.len() * Corner::ALL.len()) as u64;
    assert_eq!(summary.points.len() as u64, scenarios * 3);
    assert_eq!(
        pseudo3d_runs(&session.options().obs),
        scenarios,
        "pseudo-3-D stage must run once per scenario, never per grid point"
    );
    assert!(summary.frontier().count() >= 1, "non-empty frontier");

    // 2-D: monolithic only, no pseudo-3-D stage at all.
    let session2d = pareto_session(&netlist, 0);
    let summary2d = session2d
        .pareto(Config::TwoD12T, 0.9, 1.1, 2, &cost)
        .expect("2-D pareto sweep");
    assert_eq!(summary2d.points.len(), Corner::ALL.len() * 2);
    assert!(summary2d
        .points
        .iter()
        .all(|p| p.stacking == StackingStyle::Monolithic));
    assert_eq!(
        pseudo3d_runs(&session2d.options().obs),
        0,
        "a 2-D sweep has no pseudo-3-D stage"
    );
}
