//! Property-based tests (proptest) on the core data structures and
//! invariants: partitioning balance & cut accounting, legalization
//! legality, STA monotonicity, LUT interpolation bounds, cost-model
//! monotonicity, geometry algebra, and generator validity across the
//! parameter space.

use hetero3d::cost::CostModel;
use hetero3d::geom::{steiner, BBox, Point, Rect};
use hetero3d::netgen::{generate, BlockSpec, DesignSpec};
use hetero3d::partition::{cut_size, min_cut, tier_areas, PartitionConfig};
use hetero3d::sta::{analyze, ClockSpec, Parasitics, TimingContext};
use hetero3d::tech::{Library, Lut2d, Tier, TierStack};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 2..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hpwl_lower_bounds_rmst(pins in arb_points(12)) {
        let hpwl = steiner::hpwl(&pins);
        let rmst = steiner::rmst(&pins);
        prop_assert!(rmst + 1e-9 >= hpwl, "rmst {rmst} < hpwl {hpwl}");
        // Steiner estimate sits between 2/3 RMST and RMST (or equals HPWL
        // for small nets).
        let est = steiner::steiner_estimate(&pins);
        prop_assert!(est <= rmst + 1e-9);
        prop_assert!(est >= hpwl * 0.5 - 1e-9);
    }

    #[test]
    fn bbox_contains_all_points(pins in arb_points(16)) {
        let bbox: BBox = pins.iter().copied().collect();
        let rect = bbox.to_rect().expect("non-empty");
        for p in &pins {
            prop_assert!(rect.contains(*p));
        }
        prop_assert!((bbox.hpwl() - (rect.width() + rect.height())).abs() < 1e-9);
    }

    #[test]
    fn rect_overlap_is_symmetric_and_bounded(
        a in (-100.0..100.0f64, -100.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64),
        b in (-100.0..100.0f64, -100.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64),
    ) {
        let ra = Rect::with_size(Point::new(a.0, a.1), a.2, a.3);
        let rb = Rect::with_size(Point::new(b.0, b.1), b.2, b.3);
        let ov = ra.overlap_area(&rb);
        prop_assert!((ov - rb.overlap_area(&ra)).abs() < 1e-9);
        prop_assert!(ov <= ra.area().min(rb.area()) + 1e-9);
        prop_assert!(ov >= 0.0);
    }

    #[test]
    fn lut_lookup_stays_within_table_range(
        slew in 0.0001..5.0f64,
        load in 0.01..1000.0f64,
    ) {
        let lut = Lut2d::from_fn(
            vec![0.002, 0.02, 0.2, 2.0],
            vec![0.2, 2.0, 20.0, 200.0],
            |s, l| 0.01 + 3.0 * s + 0.002 * l,
        );
        let v = lut.lookup(slew, load);
        // Clamped bilinear interpolation of a monotone function is
        // bounded by the corner values.
        let lo = lut.lookup(0.002, 0.2);
        let hi = lut.lookup(2.0, 200.0);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{lo} <= {v} <= {hi}");
    }

    #[test]
    fn die_cost_is_monotone_in_area(a in 0.05..10.0f64, factor in 1.01..3.0f64) {
        let m = CostModel::default();
        prop_assert!(m.die_cost(a * factor, false) > m.die_cost(a, false));
        prop_assert!(m.die_cost(a * factor, true) > m.die_cost(a, true));
        // Yield is a probability and decreases with area.
        prop_assert!(m.die_yield_2d(a) <= 1.0);
        prop_assert!(m.die_yield_2d(a * factor) < m.die_yield_2d(a));
    }

    #[test]
    fn generated_netlists_always_validate(
        gates in 30usize..300,
        depth in 2usize..20,
        regs in 4usize..40,
        locality in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let spec = DesignSpec {
            name: "prop".into(),
            primary_inputs: 8,
            primary_outputs: 8,
            blocks: vec![BlockSpec::new("b", gates, depth, regs, locality)],
            srams: vec![],
        };
        let n = generate(&spec, seed);
        prop_assert!(n.validate().is_ok());
        prop_assert!(n.stats().registers == regs);
        // No dangling combinational nets.
        for (_, net) in n.nets() {
            prop_assert!(net.fanout() > 0 || net.is_clock);
        }
    }
}

fn config_tolerance() -> f64 {
    PartitionConfig::default().balance_tolerance
}

proptest! {
    // Heavier properties with fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fm_partition_respects_balance_and_counts_cut(seed in 0u64..50) {
        let n = hetero3d::netgen::Benchmark::Aes.generate(0.015, seed);
        let areas: Vec<f64> = n
            .cells()
            .map(|(_, c)| if c.class.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let locked = vec![false; n.cell_count()];
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        let config = PartitionConfig { seed, ..Default::default() };
        let cut = min_cut(&n, &areas, &locked, &mut tiers, &config);
        // Reported cut equals independently recomputed cut.
        prop_assert_eq!(cut, cut_size(&n, &tiers));
        // Balance within tolerance (plus slack for lumpy areas).
        let [a, b] = tier_areas(&areas, &tiers);
        let unb = (a - b).abs() / (a + b);
        prop_assert!(unb <= config.balance_tolerance + 0.02, "unbalance {unb}");
    }

    #[test]
    fn fm_passes_never_increase_cut(seed in 0u64..50, passes in 1usize..6) {
        // Each completed FM pass applies the best prefix of its move
        // sequence (or reverts to the pass's starting partition), so the
        // cut is monotone non-increasing in the pass count — from the
        // seeded partition (`passes = 0`) onwards. This exercises the
        // parallel gain/cut kernels: the invariant must hold at any
        // thread count.
        let n = hetero3d::netgen::Benchmark::Aes.generate(0.015, seed);
        let areas: Vec<f64> = n
            .cells()
            .map(|(_, c)| if c.class.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let locked = vec![false; n.cell_count()];
        let cut_after = |p: usize| {
            let mut tiers = vec![Tier::Bottom; n.cell_count()];
            let config = PartitionConfig { seed, passes: p, ..Default::default() };
            (min_cut(&n, &areas, &locked, &mut tiers, &config), tiers)
        };
        let (seed_cut, _) = cut_after(0);
        let mut prev = seed_cut;
        for p in 1..=passes {
            let (cut, tiers) = cut_after(p);
            prop_assert!(cut <= prev, "pass {p} raised the cut: {cut} > {prev}");
            prop_assert_eq!(cut, cut_size(&n, &tiers));
            // Balance holds after every prefix of passes, not just the last.
            let [a, b] = tier_areas(&areas, &tiers);
            let unb = (a - b).abs() / (a + b);
            prop_assert!(unb <= config_tolerance() + 0.02, "unbalance {unb}");
            prev = cut;
        }
    }

    #[test]
    fn fm_is_thread_count_invariant(seed in 0u64..30) {
        // The FM kernels (cut evaluation, per-cell gain seeding) fan out
        // across threads; the partition they produce must be bit-identical
        // to the sequential one.
        let n = hetero3d::netgen::Benchmark::Ldpc.generate(0.02, seed);
        let areas: Vec<f64> = n
            .cells()
            .map(|(_, c)| if c.class.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let locked = vec![false; n.cell_count()];
        let run = |threads: usize| {
            hetero3d::par::set_threads(threads);
            let mut tiers = vec![Tier::Bottom; n.cell_count()];
            let config = PartitionConfig { seed, ..Default::default() };
            let cut = min_cut(&n, &areas, &locked, &mut tiers, &config);
            hetero3d::par::set_threads(0);
            (cut, tiers)
        };
        let (seq_cut, seq_tiers) = run(1);
        let (par_cut, par_tiers) = run(4);
        prop_assert_eq!(seq_cut, par_cut);
        prop_assert_eq!(seq_tiers, par_tiers);
    }

    #[test]
    fn sta_arrivals_are_monotone_under_added_wire(seed in 0u64..20) {
        let n = hetero3d::netgen::Benchmark::Netcard.generate(0.01, seed);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let zero = Parasitics::zero_wire(&n);
        let mut wired = Parasitics::zero_wire(&n);
        for id in n.net_ids() {
            wired.net_mut(id).wire_delay_ns = 0.01;
            wired.net_mut(id).wire_cap_ff = 2.0;
        }
        let run = |p: &Parasitics| {
            analyze(&TimingContext {
                netlist: &n,
                stack: &stack,
                tiers: &tiers,
                parasitics: p,
                clock: ClockSpec::with_period(1.0),
            })
        };
        let fast = run(&zero);
        let slow = run(&wired);
        // Adding wire delay/cap can only worsen (or preserve) WNS/TNS.
        prop_assert!(slow.wns <= fast.wns + 1e-9);
        prop_assert!(slow.tns <= fast.tns + 1e-9);
    }
}
