//! Golden snapshot tests for the paper-table renderers (Tables VI / VII).
//!
//! A fixed-seed AES comparison is rendered through `m3d-report` and
//! compared against a checked-in snapshot. The flow is deterministic by
//! construction (see `tests/determinism.rs`), so any diff here means a
//! behavioural change in the flow or the formatters — update the snapshot
//! deliberately (regenerate with
//! `cargo test --test golden_tables -- --ignored --nocapture`), never to
//! silence an unexplained change.

use hetero3d::cost::CostModel;
use hetero3d::flow::{try_compare_configs, Comparison, FlowOptions};
use hetero3d::netgen::Benchmark;
use hetero3d::report::{format_comparison, format_table7};

fn comparison() -> Comparison {
    let netlist = Benchmark::Aes.generate(0.012, 41);
    let mut options = FlowOptions::default();
    options.placer_mut().iterations = 6;
    try_compare_configs(&netlist, &options, &CostModel::default())
        .expect("comparison succeeds on a valid netlist")
}

const GOLDEN_TABLE6: &str = "\
Metric             Units         aes
------------------------------------
Frequency            GHz       2.565
Area                 mm2      0.0005
Chip Width            um          16
Density                %          66
WL                    mm        2.49
# MIVs                           131
Total Power           mW        0.68
WNS                   ns      -0.001
TNS                   ns       -0.00
Effective Delay       ns       0.391
PDP                   pJ        0.27
Die Cost         1e-6 C'       0.009
PPC                       433252.295
";

const GOLDEN_TABLE7: &str = "\
### vs 2D 9-Track
Metric             aes
----------------------
Si Area %        -56.7
Density %         -5.4
WL %             -29.3
Total Power %    -30.9
Eff. Delay %     -13.8
PDP %            -40.4
Die Cost %       -50.7
Cost per cm2 %   13.63
PPC %            240.5
Width (um)          34
WNS (ns)        -0.064
TNS (ns)         -0.45

### vs 2D 12-Track
Metric            aes
---------------------
Si Area %         0.8
Density %        -5.4
WL %             -8.3
Total Power %   -15.5
Eff. Delay %      7.7
PDP %            -8.9
Die Cost %       14.6
Cost per cm2 %  13.67
PPC %            -4.2
Width (um)         22
WNS (ns)        0.027
TNS (ns)         0.00

### vs M3D 9-Track
Metric             aes
----------------------
Si Area %        -31.3
Density %         -5.4
WL %              37.2
Total Power %     24.2
Eff. Delay %     -22.6
PDP %             -3.8
Die Cost %       -31.3
Cost per cm2 %   -0.01
PPC %             51.4
Width (um)          19
WNS (ns)        -0.115
TNS (ns)         -0.53

### vs M3D 12-Track
Metric            aes
---------------------
Si Area %         0.8
Density %        -5.4
WL %             18.6
Total Power %   -15.1
Eff. Delay %     10.9
PDP %            -5.8
Die Cost %        0.8
Cost per cm2 %   0.00
PPC %             5.3
Width (um)         16
WNS (ns)        0.037
TNS (ns)         0.00
";

fn assert_snapshot(actual: &str, golden: &str, table: &str) {
    let a = actual.trim_end();
    let g = golden.trim_end();
    if a != g {
        for (i, (al, gl)) in a.lines().zip(g.lines()).enumerate() {
            assert_eq!(al, gl, "{table}: first divergence at line {}", i + 1);
        }
        assert_eq!(
            a.lines().count(),
            g.lines().count(),
            "{table}: line count changed"
        );
    }
}

#[test]
fn table6_metric_rows_match_golden() {
    let cmp = comparison();
    assert_snapshot(&format_comparison(&[&cmp]), GOLDEN_TABLE6, "Table VI");
}

#[test]
fn table7_delta_rows_match_golden() {
    let cmp = comparison();
    assert_snapshot(&format_table7(&[&cmp]), GOLDEN_TABLE7, "Table VII");
}

/// Regenerates the snapshots above:
/// `cargo test --test golden_tables -- --ignored --nocapture`
#[test]
#[ignore]
fn print_golden() {
    let cmp = comparison();
    println!("===TABLE6===");
    println!("{}", format_comparison(&[&cmp]));
    println!("===TABLE7===");
    println!("{}", format_table7(&[&cmp]));
}
