//! Integration tests of the paper's headline claims — the "shape targets"
//! of DESIGN.md §5 — on reduced-scale netlists. These span every crate in
//! the workspace: netgen → place → partition → route → cts → sta → power
//! → cost → flow.

use hetero3d::cost::CostModel;
use hetero3d::flow::{
    try_compare_configs, try_run_flow, Comparison, Config, FlowOptions, Implementation,
};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::Netlist;
use hetero3d::tech::Tier;

fn options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 8;
    o
}

fn run_flow(n: &Netlist, c: Config, f: f64, o: &FlowOptions) -> Implementation {
    try_run_flow(n, c, f, o).expect("flow succeeds on a valid netlist")
}

fn compare_configs(n: &Netlist, o: &FlowOptions, cost: &CostModel) -> Comparison {
    try_compare_configs(n, o, cost).expect("comparison succeeds on a valid netlist")
}

#[test]
fn hetero_meets_iso_performance_target() {
    // Shape 1: the heterogeneous design closes (or nearly closes) timing
    // at the 12-track 2-D fmax.
    let n = Benchmark::Aes.generate(0.03, 77);
    let cmp = compare_configs(&n, &options(), &CostModel::default());
    assert!(
        cmp.hetero.wns_ns >= -0.07 / cmp.target_ghz,
        "hetero WNS {} at {} GHz violates the 7% criterion",
        cmp.hetero.wns_ns,
        cmp.target_ghz
    );
}

#[test]
fn hetero_beats_homogeneous_3d_on_ppc_and_si() {
    // Shapes 2 and 5 against the strongest 3-D baseline (12-track 3-D).
    let n = Benchmark::Netcard.generate(0.03, 77);
    let cmp = compare_configs(&n, &options(), &CostModel::default());
    let vs_12t3d = cmp
        .deltas
        .iter()
        .find(|d| d.config == Config::ThreeD12T)
        .expect("delta row exists");
    assert!(
        vs_12t3d.ppc > 0.0,
        "hetero should beat 12T-3D on PPC, got {:+.1}%",
        vs_12t3d.ppc
    );
    assert!(
        vs_12t3d.si_area < 0.0,
        "hetero should use less silicon than 12T-3D, got {:+.1}%",
        vs_12t3d.si_area
    );
    assert!(
        vs_12t3d.total_power < 0.0,
        "hetero should use less power than 12T-3D, got {:+.1}%",
        vs_12t3d.total_power
    );
}

#[test]
fn hetero_beats_best_2d_on_pdp() {
    // Shape 3: PDP better than the best 2-D (12-track).
    let n = Benchmark::Netcard.generate(0.03, 78);
    let cmp = compare_configs(&n, &options(), &CostModel::default());
    let vs_2d12 = cmp
        .deltas
        .iter()
        .find(|d| d.config == Config::TwoD12T)
        .expect("delta row exists");
    assert!(
        vs_2d12.pdp < 0.0,
        "hetero PDP should beat 12T-2D, got {:+.1}%",
        vs_2d12.pdp
    );
}

#[test]
fn three_d_reduces_wirelength_vs_2d() {
    // Shape 6: 3-D wirelength is well below 2-D for the non-macro designs.
    let n = Benchmark::Ldpc.generate(0.025, 79);
    let o = options();
    let wl_2d = run_flow(&n, Config::TwoD12T, 1.2, &o)
        .routing
        .total_wirelength_um;
    let wl_3d = run_flow(&n, Config::ThreeD12T, 1.2, &o)
        .routing
        .total_wirelength_um;
    assert!(
        wl_3d < 0.9 * wl_2d,
        "3-D WL {wl_3d} should be well under 2-D {wl_2d}"
    );
}

#[test]
fn nine_track_configs_are_slowest() {
    // Shape 4: at an aggressive target, 9-track timing is worst; 12-track
    // 3-D is best.
    let n = Benchmark::Cpu.generate(0.02, 80);
    let o = options();
    let f = 1.8;
    let wns_9t2d = run_flow(&n, Config::TwoD9T, f, &o).sta.wns;
    let wns_12t2d = run_flow(&n, Config::TwoD12T, f, &o).sta.wns;
    let wns_12t3d = run_flow(&n, Config::ThreeD12T, f, &o).sta.wns;
    assert!(wns_9t2d < wns_12t2d, "9T {wns_9t2d} vs 12T {wns_12t2d}");
    // 12T-3D stays within ~10 % of the period of 12T-2D (the CPU's fixed
    // macros constrain the halved 3-D footprint more than the 2-D one, so
    // exact parity is not expected at this scale).
    assert!(
        wns_12t3d >= wns_12t2d - 0.1 / f,
        "12T-3D {wns_12t3d} should be competitive with 12T-2D {wns_12t2d}"
    );
}

#[test]
fn hetero_clock_tree_is_top_tier_heavy() {
    // Shape 9: most clock buffers follow the registers to the slow top
    // tier in the heterogeneous design.
    let n = Benchmark::Netcard.generate(0.03, 81);
    let imp = run_flow(&n, Config::Hetero3d, 1.0, &options());
    let top = imp.clock_tree.buffer_count_on(Tier::Top);
    let bottom = imp.clock_tree.buffer_count_on(Tier::Bottom);
    assert!(
        top > bottom,
        "expected top-heavy hetero clock, got top {top} bottom {bottom}"
    );
}

#[test]
fn no_level_shifters_in_hetero_flow() {
    // Shape: with the paper's 0.90/0.81 V pairing, no level shifters are
    // ever instantiated by the flow.
    let n = Benchmark::Aes.generate(0.02, 82);
    let imp = run_flow(&n, Config::Hetero3d, 1.0, &options());
    let shifters = imp
        .netlist
        .cells()
        .filter(|(_, c)| c.class.gate_kind() == Some(hetero3d::tech::CellKind::LevelShifter))
        .count();
    assert_eq!(shifters, 0);
    // And the library pair passes the compatibility check.
    let check = hetero3d::tech::BoundaryCheck::check(
        imp.stack.library(Tier::Bottom),
        imp.stack.library(Tier::Top),
    );
    assert!(check.compatible());
}

#[test]
fn repartitioning_improves_or_preserves_wns() {
    // Shape 8 (Table V direction): the enhanced flow's WNS is no worse
    // than the baseline's at a stressed frequency.
    let n = Benchmark::Cpu.generate(0.015, 83);
    let o = options();
    let baseline = FlowOptions {
        enable_timing_partition: false,
        enable_3d_cts: false,
        enable_repartition: false,
        ..o.clone()
    };
    let f = 1.6;
    let base = run_flow(&n, Config::Hetero3d, f, &baseline);
    let enhanced = run_flow(&n, Config::Hetero3d, f, &o);
    assert!(
        enhanced.sta.wns >= base.sta.wns - 1e-9,
        "enhanced {} vs baseline {}",
        enhanced.sta.wns,
        base.sta.wns
    );
}
