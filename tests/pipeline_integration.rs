//! Cross-crate integration tests: Verilog round-trips through the full
//! flow, determinism of complete implementations, and consistency between
//! independently computed quantities (MIVs vs cut size, clock sinks vs
//! registers, power vs frequency).

use hetero3d::flow::{try_run_flow, Config, FlowOptions, Implementation};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::{verilog, Netlist};
use hetero3d::partition::cut_size;
use hetero3d::tech::Tier;

fn options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 6;
    o
}

fn run_flow(n: &Netlist, c: Config, f: f64, o: &FlowOptions) -> Implementation {
    try_run_flow(n, c, f, o).expect("flow succeeds on a valid netlist")
}

#[test]
fn verilog_round_trip_flows_identically() {
    let original = Benchmark::Aes.generate(0.02, 90);
    let text = verilog::write(&original);
    let parsed = verilog::parse(&text).expect("round trip parses");
    assert_eq!(parsed.gate_count(), original.gate_count());
    assert_eq!(parsed.net_count(), original.net_count());

    // Same flow outcome modulo cell ordering: compare scalar metrics.
    let o = options();
    let a = run_flow(&original, Config::TwoD12T, 1.0, &o);
    let b = run_flow(&parsed, Config::TwoD12T, 1.0, &o);
    assert_eq!(a.netlist.gate_count(), b.netlist.gate_count());
    assert!((a.floorplan.die.area() - b.floorplan.die.area()).abs() < 1.0);
}

#[test]
fn full_flow_is_deterministic() {
    let n = Benchmark::Ldpc.generate(0.015, 91);
    let o = options();
    let a = run_flow(&n, Config::Hetero3d, 1.3, &o);
    let b = run_flow(&n, Config::Hetero3d, 1.3, &o);
    assert_eq!(a.sta.wns, b.sta.wns);
    assert_eq!(a.routing.total_wirelength_um, b.routing.total_wirelength_um);
    assert_eq!(a.power.total_mw(), b.power.total_mw());
    assert_eq!(a.tiers, b.tiers);
}

#[test]
fn mivs_track_cut_size() {
    // The router's MIV count equals one per tier-spanning MST edge, so it
    // is at least the cut size (every cut net crosses at least once).
    let n = Benchmark::Netcard.generate(0.02, 92);
    let imp = run_flow(&n, Config::ThreeD12T, 1.0, &options());
    let cut = cut_size(&imp.netlist, &imp.tiers);
    assert!(
        imp.routing.total_mivs >= cut,
        "MIVs {} must cover the cut {}",
        imp.routing.total_mivs,
        cut
    );
    assert!(
        imp.routing.total_mivs < cut * 4 + 10,
        "MIVs {} should stay within a small multiple of the cut {}",
        imp.routing.total_mivs,
        cut
    );
}

#[test]
fn every_register_gets_clock_latency() {
    let n = Benchmark::Cpu.generate(0.015, 93);
    let imp = run_flow(&n, Config::Hetero3d, 1.0, &options());
    for id in imp.netlist.sequential_cells() {
        assert!(
            imp.clock_tree.sink_latency[id.index()] > 0.0,
            "register {:?} missing clock latency",
            imp.netlist.cell(id).name
        );
    }
}

#[test]
fn power_scales_with_frequency_through_the_flow() {
    let n = Benchmark::Aes.generate(0.02, 94);
    let o = options();
    let slow = run_flow(&n, Config::TwoD12T, 0.5, &o);
    let fast = run_flow(&n, Config::TwoD12T, 1.0, &o);
    assert!(
        fast.power.total_mw() > 1.5 * slow.power.total_mw(),
        "power {} @1GHz vs {} @0.5GHz",
        fast.power.total_mw(),
        slow.power.total_mw()
    );
}

#[test]
fn all_cells_stay_inside_the_die() {
    let n = Benchmark::Netcard.generate(0.02, 95);
    let imp = run_flow(&n, Config::Hetero3d, 1.0, &options());
    let die = imp.floorplan.die.inflated(1.0);
    for (id, cell) in imp.netlist.cells() {
        if cell.class.is_gate() {
            let p = imp.placement.positions[id.index()];
            assert!(die.contains(p), "cell {} at {p} escaped the die", cell.name);
        }
    }
}

#[test]
fn ports_and_macros_stay_on_bottom_tier() {
    let n = Benchmark::Cpu.generate(0.015, 96);
    let imp = run_flow(&n, Config::Hetero3d, 1.0, &options());
    for (id, cell) in imp.netlist.cells() {
        if cell.class.is_port() || cell.class.is_macro() {
            assert_eq!(
                imp.tiers[id.index()],
                Tier::Bottom,
                "{} should be on the bottom tier",
                cell.name
            );
        }
    }
}

#[test]
fn two_d_configs_use_single_tier() {
    let n = Benchmark::Aes.generate(0.015, 97);
    for config in [Config::TwoD9T, Config::TwoD12T] {
        let imp = run_flow(&n, config, 1.0, &options());
        assert!(imp.tiers.iter().all(|t| *t == Tier::Bottom));
        assert_eq!(imp.routing.total_mivs, 0);
    }
}
