//! Equivalence tests for the incremental STA engine.
//!
//! The contract under test: after ANY sequence of flow-vocabulary edits —
//! drive resize, buffer insertion, tier swap, clock-period change, net
//! parasitics update — [`m3d_sta::Timer::update`] returns a result
//! **bit-identical** to a cold [`m3d_sta::analyze`] of the same context,
//! at any thread count. Threads are a performance knob only.

use hetero3d::db::DesignDb;
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::{CellId, NetId, Netlist};
use hetero3d::par;
use hetero3d::sta::{analyze, ClockSpec, NetModel, Parasitics, StaResult, Timer, TimingContext};
use hetero3d::tech::{Drive, Tier, TierStack};
use proptest::prelude::*;

/// Asserts exact equality of every float (by raw bits) and every discrete
/// field of two STA results.
fn assert_bit_identical(incr: &StaResult, cold: &StaResult, what: &str) {
    assert_eq!(incr.wns.to_bits(), cold.wns.to_bits(), "{what}: wns");
    assert_eq!(incr.tns.to_bits(), cold.tns.to_bits(), "{what}: tns");
    assert_eq!(incr.violations, cold.violations, "{what}: violations");
    assert_eq!(incr.endpoints, cold.endpoints, "{what}: endpoints");
    assert_eq!(
        incr.critical_endpoints, cold.critical_endpoints,
        "{what}: order"
    );
    assert_eq!(incr.worst_input, cold.worst_input, "{what}: worst_input");
    for i in 0..cold.arrival.len() {
        assert_eq!(
            incr.arrival[i].to_bits(),
            cold.arrival[i].to_bits(),
            "{what}: arrival[{i}]"
        );
        assert_eq!(
            incr.slew[i].to_bits(),
            cold.slew[i].to_bits(),
            "{what}: slew[{i}]"
        );
        assert_eq!(
            incr.required[i].to_bits(),
            cold.required[i].to_bits(),
            "{what}: required[{i}]"
        );
        assert_eq!(
            incr.slack[i].to_bits(),
            cold.slack[i].to_bits(),
            "{what}: slack[{i}]"
        );
    }
}

/// One randomized non-structural edit, decoded from `(op, index,
/// magnitude)`. Structural edits (buffer insertion) are handled by the
/// caller before the parasitics binding is (re)built.
#[allow(clippy::too_many_arguments)]
fn apply_edit(
    op: u8,
    index: usize,
    mag: f64,
    netlist: &mut Netlist,
    tiers: &mut [Tier],
    parasitics: &mut Parasitics,
    period: &mut f64,
    timer: &mut Timer,
) {
    let gates: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();
    match op {
        0 => {
            let g = gates[index % gates.len()];
            let d = netlist.cell(g).class.gate_drive().expect("gate");
            netlist.set_drive(g, d.upsized().unwrap_or(Drive::X1));
            timer.resize_cell(g);
        }
        1 => {
            let g = gates[index % gates.len()];
            let d = netlist.cell(g).class.gate_drive().expect("gate");
            netlist.set_drive(g, d.downsized().unwrap_or(Drive::X8));
            timer.resize_cell(g);
        }
        2 => {
            let g = gates[index % gates.len()];
            tiers[g.index()] = tiers[g.index()].other();
            timer.swap_tier(g);
        }
        3 => {
            *period = (*period * (0.85 + 0.3 * mag)).max(0.05);
            timer.set_period(*period);
        }
        _ => {
            let k = NetId::from_index(index % netlist.net_count());
            parasitics.net_mut(k).wire_delay_ns += 0.006 * mag;
            parasitics.net_mut(k).wire_cap_ff += 2.0 * mag;
            timer.update_parasitics(k);
        }
    }
}

/// Runs one random edit script on a small AES netlist, checking that the
/// incremental result matches a cold analyze bit-for-bit after every
/// single edit.
fn run_edit_script(edits: &[(u8, usize, f64)], seed: u64) {
    let mut netlist = Benchmark::Aes.generate(0.015, seed);
    let stack = TierStack::heterogeneous();
    let mut positions = vec![hetero3d::geom::Point::ORIGIN; netlist.cell_count()];
    let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
    let mut period = 1.0;
    let mut timer = Timer::new();

    for (step, &(op, index, mag)) in edits.iter().enumerate() {
        // Structural edits first: they grow the netlist, and every
        // per-net/per-cell binding below must be sized to the result.
        if op == 5 {
            let inserted =
                hetero3d::opt::insert_buffers(&mut netlist, &mut positions, 6 + index % 6);
            tiers.resize(netlist.cell_count(), Tier::Bottom);
            if !inserted.is_empty() {
                timer.insert_buffer();
            }
        }
        // Rebuild the wire models each step so the vector tracks the
        // netlist when a buffer-insert edit grew it (the rebuild itself
        // is one more parasitics edit the timer must absorb).
        let mut parasitics = Parasitics::zero_wire(&netlist);
        for k in 0..netlist.net_count() {
            let id = NetId::from_index(k);
            *parasitics.net_mut(id) = hetero3d::sta::NetModel {
                wire_cap_ff: 0.5 + (k % 7) as f64,
                wire_delay_ns: 0.001 * (k % 5) as f64,
            };
        }
        if op != 5 {
            apply_edit(
                op,
                index,
                mag,
                &mut netlist,
                &mut tiers,
                &mut parasitics,
                &mut period,
                &mut timer,
            );
        }
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(period),
        };
        let incr = timer.update(&ctx);
        let cold = analyze(&ctx);
        assert_bit_identical(&incr, &cold, &format!("step {step} op {op}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random edit scripts: resize up/down, tier swap, period change,
    // parasitics update, buffer insertion.
    #[test]
    fn timer_is_bit_identical_to_cold_analyze(
        edits in prop::collection::vec((0u8..6, 0usize..4096, 0.0..1.0f64), 1..10),
        seed in 0u64..64,
    ) {
        run_edit_script(&edits, seed);
    }

    // The journal-driven path: the same random edits recorded through the
    // design database's journaling mutators, with the timer fed
    // `Journal::timing_edits` instead of per-edit notifications. Checked
    // against a cold analyze after every step, at 1 and 4 threads.
    #[test]
    fn journaled_timer_is_bit_identical_to_cold_analyze(
        edits in prop::collection::vec((0u8..4, 0usize..4096, 0.0..1.0f64), 1..10),
        seed in 0u64..32,
    ) {
        run_journaled_script(&edits, seed);
    }
}

/// Drives a [`DesignDb`] through a random edit script, consuming the
/// drained journal with [`Timer::update_journaled`] and checking the
/// result against a cold [`analyze`] bit for bit after every step — at
/// 1 and 4 threads, which must also agree with each other.
fn run_journaled_script(edits: &[(u8, usize, f64)], seed: u64) {
    let netlist = Benchmark::Aes.generate(0.015, seed);
    let parasitics = Parasitics::zero_wire(&netlist);
    let mut runs: Vec<Vec<StaResult>> = Vec::new();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let mut db = DesignDb::new(netlist.clone(), TierStack::heterogeneous(), 1.0);
        db.set_parasitics(parasitics.clone());
        let _ = db.take_journal();
        let gates: Vec<CellId> = db
            .netlist()
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let mut timer = Timer::new();
        let mut results = Vec::new();
        for (step, &(op, index, mag)) in edits.iter().enumerate() {
            match op {
                0 => {
                    let g = gates[index % gates.len()];
                    let d = db.netlist().cell(g).class.gate_drive().expect("gate");
                    let to = if mag < 0.5 {
                        d.upsized().unwrap_or(Drive::X1)
                    } else {
                        d.downsized().unwrap_or(Drive::X8)
                    };
                    db.set_drive(g, to);
                }
                1 => {
                    let g = gates[index % gates.len()];
                    let to = db.tiers()[g.index()].other();
                    db.set_tier(g, to);
                }
                2 => db.set_period((db.period_ns() * (0.85 + 0.3 * mag)).max(0.05)),
                _ => {
                    let k = NetId::from_index(index % db.netlist().net_count());
                    db.set_net_model(
                        k,
                        NetModel {
                            wire_cap_ff: 0.5 + 4.0 * mag,
                            wire_delay_ns: 0.002 * mag,
                        },
                    );
                }
            }
            let timing_edits = db.take_journal().timing_edits();
            let ctx = TimingContext {
                netlist: db.netlist(),
                stack: db.stack(),
                tiers: db.tiers(),
                parasitics: db.parasitics().expect("installed above"),
                clock: ClockSpec::with_period(db.period_ns()),
            };
            let incr = timer.update_journaled(&ctx, &timing_edits);
            let cold = analyze(&ctx);
            assert_bit_identical(
                &incr,
                &cold,
                &format!("journaled step {step} op {op} threads {threads}"),
            );
            results.push(incr);
        }
        runs.push(results);
    }
    par::set_threads(1);
    for (step, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_bit_identical(a, b, &format!("journaled threads 1 vs 4, step {step}"));
    }
}

/// A large (above the parallel threshold) netlist driven through a fixed
/// edit script at 1 and 4 threads: the incremental results must agree
/// with each other and with a cold single-thread analyze, bit for bit.
#[test]
fn timer_is_thread_count_invariant() {
    let netlist = Benchmark::Aes.generate(0.25, 11);
    assert!(
        netlist.cell_count() >= par::PAR_THRESHOLD,
        "test must exercise the parallel path ({} cells)",
        netlist.cell_count()
    );
    let stack = TierStack::heterogeneous();
    let base_tiers = vec![Tier::Bottom; netlist.cell_count()];
    let parasitics = Parasitics::zero_wire(&netlist);

    let gates: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();

    let mut runs: Vec<Vec<StaResult>> = Vec::new();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let mut nl = netlist.clone();
        let mut tiers = base_tiers.clone();
        let mut period = 1.0;
        let mut timer = Timer::new();
        let mut results = Vec::new();
        for step in 0..8 {
            match step % 4 {
                0 => {
                    let g = gates[step * 97 % gates.len()];
                    let d = nl.cell(g).class.gate_drive().expect("gate");
                    nl.set_drive(g, d.upsized().unwrap_or(Drive::X1));
                }
                1 => {
                    let g = gates[step * 131 % gates.len()];
                    tiers[g.index()] = tiers[g.index()].other();
                }
                2 => period *= 0.94,
                _ => {
                    let g = gates[step * 61 % gates.len()];
                    let d = nl.cell(g).class.gate_drive().expect("gate");
                    nl.set_drive(g, d.downsized().unwrap_or(Drive::X8));
                }
            }
            let ctx = TimingContext {
                netlist: &nl,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(period),
            };
            results.push(timer.update(&ctx));
            if threads == 1 && step == 7 {
                // Anchor the sequence to a cold pass once.
                assert_bit_identical(results.last().unwrap(), &analyze(&ctx), "anchor");
            }
        }
        results.push(timer.result().expect("updated").clone());
        runs.push(results);
    }
    par::set_threads(1);
    for (step, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_bit_identical(a, b, &format!("threads 1 vs 4, step {step}"));
    }
}
