//! Structured telemetry for the hetero3d flow: nested stage spans with
//! wall-clock timing, monotonic counters, gauge metrics and set-once
//! labels, aggregated into a per-run [`Manifest`].
//!
//! # Determinism contract
//!
//! A manifest has two kinds of content:
//!
//! - **Deterministic**: counters, gauges, labels, and the set of span
//!   paths with their call counts. These must be bit-identical across
//!   thread counts for the same inputs. Parallel stages get there by
//!   accumulating per-chunk [`ChunkStats`] and merging them in
//!   chunk-index order via [`par_chunk_stats`] (built on
//!   `m3d_par::par_ranges`, whose chunking is independent of the worker
//!   count).
//! - **Performance-only**: span wall times, the thread count, and
//!   anything recorded through [`Obs::perf_add`] (e.g. `DelayCache`
//!   hit/miss tallies, which depend on scheduling). These are reported
//!   but excluded from [`Manifest::deterministic_json`].
//!
//! # Usage
//!
//! An [`Obs`] handle is cheap to clone and disabled by default, so
//! instrumented library code pays one branch per call when no collector
//! is attached. [`Obs::scope`] derives a handle whose keys share a
//! prefix; concurrent flow branches (fmax ladder rungs, config sweeps)
//! each scope themselves so they never write the same span path.

pub mod alloc;

pub use alloc::CountingAlloc;

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-path span aggregate: how many times the span ran and the summed
/// wall time. Wall time is performance-only; calls are deterministic.
#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    calls: u64,
    wall_ns: u128,
}

/// Shared sink behind enabled [`Obs`] handles. Every section is a
/// `BTreeMap` so iteration (and therefore manifest serialization) is
/// ordered by key, independent of recording order.
#[derive(Debug, Default)]
struct Collector {
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    labels: Mutex<BTreeMap<String, String>>,
    perf: Mutex<BTreeMap<String, u64>>,
}

/// Handle for recording telemetry. Disabled handles (the default) drop
/// every record on the floor without locking.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Collector>>,
    prefix: String,
}

/// Handle identity, not content: two handles are equal when they feed
/// the same collector (or are both disabled) under the same prefix.
/// This keeps `FlowOptions: PartialEq` meaningful — options structs
/// differing only in where telemetry goes still compare by that.
impl PartialEq for Obs {
    fn eq(&self, other: &Obs) -> bool {
        self.prefix == other.prefix
            && match (&self.inner, &other.inner) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Obs {
    /// A no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A handle backed by a fresh collector.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Arc::new(Collector::default())),
            prefix: String::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Derives a handle writing under `prefix/segment/...`. Used to give
    /// concurrent flow branches disjoint key spaces.
    pub fn scope(&self, segment: &str) -> Obs {
        Obs {
            inner: self.inner.clone(),
            prefix: join(&self.prefix, segment),
        }
    }

    fn key(&self, name: &str) -> String {
        join(&self.prefix, name)
    }

    /// Opens a timed span; the span records itself when dropped.
    /// Re-entering the same path accumulates calls and wall time.
    pub fn span(&self, name: &str) -> Span {
        Span {
            collector: self.inner.clone(),
            path: self.key(name),
            start: Instant::now(),
        }
    }

    /// Adds to a monotonic counter (deterministic section).
    pub fn counter_add(&self, name: &str, value: u64) {
        if let Some(c) = &self.inner {
            *c.counters
                .lock()
                .expect("obs counters poisoned")
                .entry(self.key(name))
                .or_insert(0) += value;
        }
    }

    /// Sets a gauge to `value` (deterministic section; last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(c) = &self.inner {
            c.gauges
                .lock()
                .expect("obs gauges poisoned")
                .insert(self.key(name), value);
        }
    }

    /// Raises a gauge to `value` if it exceeds the current reading — a
    /// high-water mark (queue depth, in-flight requests). Max *is*
    /// commutative, so unlike [`Obs::gauge_add`] this is safe to call
    /// from racing threads, though the observed peak itself may be
    /// scheduling-dependent (report such gauges as performance-only
    /// data when byte-identity matters).
    pub fn gauge_max(&self, name: &str, value: f64) {
        if let Some(c) = &self.inner {
            let mut gauges = c.gauges.lock().expect("obs gauges poisoned");
            let slot = gauges.entry(self.key(name)).or_insert(f64::NEG_INFINITY);
            if value > *slot {
                *slot = value;
            }
        }
    }

    /// Adds to a gauge (deterministic section). Callers on parallel
    /// paths must fold their partial sums in a fixed order first — see
    /// [`ChunkStats`] — because float addition does not commute in bits.
    pub fn gauge_add(&self, name: &str, value: f64) {
        if let Some(c) = &self.inner {
            *c.gauges
                .lock()
                .expect("obs gauges poisoned")
                .entry(self.key(name))
                .or_insert(0.0) += value;
        }
    }

    /// Records a set-once string label (input fingerprints, config
    /// names). First write wins so re-entrant stages cannot flap it.
    pub fn label_set(&self, name: &str, value: &str) {
        if let Some(c) = &self.inner {
            c.labels
                .lock()
                .expect("obs labels poisoned")
                .entry(self.key(name))
                .or_insert_with(|| value.to_string());
        }
    }

    /// Adds to a performance-only counter: reported in the full
    /// manifest, excluded from the deterministic section. Use for
    /// scheduling-dependent tallies (cache hits, retries).
    pub fn perf_add(&self, name: &str, value: u64) {
        if let Some(c) = &self.inner {
            *c.perf
                .lock()
                .expect("obs perf poisoned")
                .entry(self.key(name))
                .or_insert(0) += value;
        }
    }

    /// Snapshots everything recorded so far.
    pub fn manifest(&self) -> Manifest {
        let Some(c) = &self.inner else {
            return Manifest::default();
        };
        Manifest {
            spans: c
                .spans
                .lock()
                .expect("obs spans poisoned")
                .iter()
                .map(|(path, agg)| SpanRow {
                    path: path.clone(),
                    calls: agg.calls,
                    wall_ns: agg.wall_ns,
                })
                .collect(),
            counters: clone_map(&c.counters),
            gauges: clone_map(&c.gauges),
            labels: clone_map(&c.labels),
            perf: clone_map(&c.perf),
        }
    }
}

fn join(prefix: &str, segment: &str) -> String {
    if prefix.is_empty() {
        segment.to_string()
    } else {
        format!("{prefix}/{segment}")
    }
}

fn clone_map<V: Clone>(m: &Mutex<BTreeMap<String, V>>) -> Vec<(String, V)> {
    m.lock()
        .expect("obs section poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// RAII stage timer returned by [`Obs::span`]. Dropping it folds the
/// elapsed wall time into the collector under the span's path.
pub struct Span {
    collector: Option<Arc<Collector>>,
    path: String,
    start: Instant,
}

impl Span {
    /// Opens a nested span at `self.path/name`.
    pub fn child(&self, name: &str) -> Span {
        Span {
            collector: self.collector.clone(),
            path: join(&self.path, name),
            start: Instant::now(),
        }
    }

    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(c) = &self.collector else { return };
        let elapsed = self.start.elapsed().as_nanos();
        let mut spans = c.spans.lock().expect("obs spans poisoned");
        let agg = spans.entry(std::mem::take(&mut self.path)).or_default();
        agg.calls += 1;
        agg.wall_ns += elapsed;
    }
}

/// One aggregated span in a [`Manifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    pub path: String,
    /// Deterministic: how many times this span ran.
    pub calls: u64,
    /// Performance-only: summed wall time.
    pub wall_ns: u128,
}

/// Ordered snapshot of a run's telemetry. All sections are sorted by
/// key, so equal content serializes to equal bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    pub spans: Vec<SpanRow>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub labels: Vec<(String, String)>,
    pub perf: Vec<(String, u64)>,
}

impl Manifest {
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        lookup(&self.gauges, name).copied()
    }

    pub fn label(&self, name: &str) -> Option<&str> {
        lookup(&self.labels, name).map(String::as_str)
    }

    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans
            .binary_search_by(|row| row.path.as_str().cmp(path))
            .ok()
            .map(|i| &self.spans[i])
    }

    /// JSON of the deterministic section only: span paths with call
    /// counts (no wall times), counters, gauges, labels. Bit-identical
    /// across thread counts for the same inputs — this is the string
    /// the determinism tests compare.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {");
        push_entries(
            &mut out,
            self.spans
                .iter()
                .map(|s| (s.path.as_str(), s.calls.to_string())),
        );
        out.push_str("},\n  \"counters\": {");
        push_entries(
            &mut out,
            self.counters
                .iter()
                .map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_entries(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k.as_str(), fmt_f64(*v))),
        );
        out.push_str("},\n  \"labels\": {");
        push_entries(
            &mut out,
            self.labels
                .iter()
                .map(|(k, v)| (k.as_str(), format!("\"{}\"", escape(v)))),
        );
        out.push_str("}\n}");
        out
    }

    /// Full JSON: the deterministic section plus wall times (µs, three
    /// decimal places) and performance-only counters.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {");
        push_entries(
            &mut out,
            self.spans.iter().map(|s| {
                let wall_us = s.wall_ns as f64 / 1e3;
                (
                    s.path.as_str(),
                    format!("{{\"calls\": {}, \"wall_us\": {:.3}}}", s.calls, wall_us),
                )
            }),
        );
        out.push_str("},\n  \"counters\": {");
        push_entries(
            &mut out,
            self.counters
                .iter()
                .map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_entries(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k.as_str(), fmt_f64(*v))),
        );
        out.push_str("},\n  \"labels\": {");
        push_entries(
            &mut out,
            self.labels
                .iter()
                .map(|(k, v)| (k.as_str(), format!("\"{}\"", escape(v)))),
        );
        out.push_str("},\n  \"perf\": {");
        push_entries(
            &mut out,
            self.perf.iter().map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("}\n}");
        out
    }
}

fn lookup<'a, V>(entries: &'a [(String, V)], name: &str) -> Option<&'a V> {
    entries
        .binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

fn push_entries<'a, I>(out: &mut String, entries: I)
where
    I: Iterator<Item = (&'a str, String)>,
{
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&escape(key));
        out.push_str("\": ");
        out.push_str(&value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Shortest-roundtrip float formatting; whole floats keep a `.0` so the
/// output stays a JSON number with an unambiguous type.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.json())
    }
}

/// Per-chunk statistics for deterministic parallel aggregation: integer
/// counts and float sums keyed by static names. Workers fill one
/// `ChunkStats` per chunk; [`ChunkStats::merge_ordered`] folds them in
/// chunk-index order, so float sums see the same addition sequence at
/// any thread count.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ChunkStats {
    counts: BTreeMap<&'static str, u64>,
    sums: BTreeMap<&'static str, f64>,
}

impl ChunkStats {
    pub fn new() -> ChunkStats {
        ChunkStats::default()
    }

    pub fn count(&mut self, name: &'static str, value: u64) {
        *self.counts.entry(name).or_insert(0) += value;
    }

    pub fn sum(&mut self, name: &'static str, value: f64) {
        *self.sums.entry(name).or_insert(0.0) += value;
    }

    pub fn get_count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    pub fn get_sum(&self, name: &str) -> f64 {
        self.sums.get(name).copied().unwrap_or(0.0)
    }

    /// Left-fold of `next` into `self`; the merge order is the caller's
    /// responsibility (see [`ChunkStats::merge_ordered`]).
    pub fn absorb(&mut self, next: &ChunkStats) {
        for (name, v) in &next.counts {
            *self.counts.entry(name).or_insert(0) += v;
        }
        for (name, v) in &next.sums {
            *self.sums.entry(name).or_insert(0.0) += v;
        }
    }

    /// Folds per-chunk stats in vector (= chunk-index) order.
    pub fn merge_ordered(parts: Vec<ChunkStats>) -> ChunkStats {
        let mut total = ChunkStats::new();
        for part in &parts {
            total.absorb(part);
        }
        total
    }

    /// Publishes counts as counters and sums as gauges on `obs`.
    pub fn record(&self, obs: &Obs) {
        for (name, v) in &self.counts {
            obs.counter_add(name, *v);
        }
        for (name, v) in &self.sums {
            obs.gauge_add(name, *v);
        }
    }
}

/// Runs `fill` over fixed index chunks of `0..len` in parallel and
/// merges the per-chunk stats in chunk-index order. The chunking comes
/// from `m3d_par::par_ranges` and depends only on `len`, so the merged
/// result — float sums included — is bit-identical at any `threads`.
pub fn par_chunk_stats<F>(threads: usize, len: usize, fill: F) -> ChunkStats
where
    F: Fn(Range<usize>, &mut ChunkStats) + Sync,
{
    ChunkStats::merge_ordered(m3d_par::par_ranges(threads, len, |range| {
        let mut stats = ChunkStats::new();
        fill(range, &mut stats);
        stats
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        let _span = obs.span("stage");
        obs.counter_add("n", 5);
        obs.gauge_set("g", 1.5);
        obs.label_set("l", "x");
        obs.perf_add("p", 1);
        assert!(!obs.is_enabled());
        assert_eq!(obs.manifest(), Manifest::default());
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let obs = Obs::enabled();
        obs.gauge_max("queue/depth", 2.0);
        obs.gauge_max("queue/depth", 7.0);
        obs.gauge_max("queue/depth", 3.0);
        assert_eq!(obs.manifest().gauge("queue/depth"), Some(7.0));
    }

    #[test]
    fn span_nesting_builds_paths_and_counts_calls() {
        let obs = Obs::enabled();
        {
            let flow = obs.span("flow");
            for _ in 0..3 {
                let _p = flow.child("partition");
            }
            let route = flow.child("route");
            let _detail = route.child("plan");
        }
        let m = obs.manifest();
        let paths: Vec<(&str, u64)> = m.spans.iter().map(|s| (s.path.as_str(), s.calls)).collect();
        assert_eq!(
            paths,
            vec![
                ("flow", 1),
                ("flow/partition", 3),
                ("flow/route", 1),
                ("flow/route/plan", 1),
            ]
        );
        assert_eq!(m.span("flow/partition").unwrap().calls, 3);
    }

    #[test]
    fn scoped_handles_share_the_collector_under_distinct_prefixes() {
        let obs = Obs::enabled();
        let a = obs.scope("cfg/a");
        let b = obs.scope("cfg/b");
        a.counter_add("moves", 2);
        b.counter_add("moves", 7);
        a.counter_add("moves", 1);
        let m = obs.manifest();
        assert_eq!(m.counter("cfg/a/moves"), Some(3));
        assert_eq!(m.counter("cfg/b/moves"), Some(7));
        assert_eq!(a, obs.scope("cfg/a"));
        assert_ne!(a, b);
        assert_ne!(a, Obs::enabled().scope("cfg/a"));
    }

    #[test]
    fn labels_are_set_once_and_gauges_last_write() {
        let obs = Obs::enabled();
        obs.label_set("netlist", "aes");
        obs.label_set("netlist", "cpu");
        obs.gauge_set("cut", 10.0);
        obs.gauge_set("cut", 4.0);
        let m = obs.manifest();
        assert_eq!(m.label("netlist"), Some("aes"));
        assert_eq!(m.gauge("cut"), Some(4.0));
    }

    #[test]
    fn deterministic_json_excludes_wall_time_and_perf() {
        let obs = Obs::enabled();
        {
            let _s = obs.span("stage");
        }
        obs.counter_add("arcs", 12);
        obs.perf_add("cache_hits", 99);
        let det = obs.manifest().deterministic_json();
        assert!(det.contains("\"stage\": 1"));
        assert!(det.contains("\"arcs\": 12"));
        assert!(!det.contains("wall"));
        assert!(!det.contains("cache_hits"));
        let full = obs.manifest().json();
        assert!(full.contains("wall_us"));
        assert!(full.contains("\"cache_hits\": 99"));
    }

    /// Floats folded in chunk order must be bit-identical at any thread
    /// count — the core of the manifest determinism contract.
    #[test]
    fn chunk_merge_is_bit_identical_across_thread_counts() {
        let n = 10_000;
        let fill = |range: Range<usize>, stats: &mut ChunkStats| {
            for i in range {
                // Sums chosen to be order-sensitive in the last bits.
                stats.sum("wirelength", (i as f64).sqrt() * 0.1);
                stats.count("nets", 1);
            }
        };
        let one = par_chunk_stats(1, n, fill);
        let four = par_chunk_stats(4, n, fill);
        assert_eq!(one.get_count("nets"), n as u64);
        assert_eq!(
            one.get_sum("wirelength").to_bits(),
            four.get_sum("wirelength").to_bits()
        );
        assert_eq!(one, four);
    }

    #[test]
    fn merge_ordered_is_a_left_fold() {
        let mut a = ChunkStats::new();
        a.sum("x", 0.1);
        let mut b = ChunkStats::new();
        b.sum("x", 0.2);
        let mut c = ChunkStats::new();
        c.sum("x", 0.3);
        let merged = ChunkStats::merge_ordered(vec![a.clone(), b.clone(), c.clone()]);
        let mut manual = ChunkStats::new();
        manual.absorb(&a);
        manual.absorb(&b);
        manual.absorb(&c);
        assert_eq!(merged.get_sum("x").to_bits(), manual.get_sum("x").to_bits());
    }

    #[test]
    fn json_escapes_and_formats() {
        let obs = Obs::enabled();
        obs.label_set("path", "a\"b\\c");
        obs.gauge_set("whole", 3.0);
        obs.gauge_set("frac", 0.25);
        let json = obs.manifest().json();
        assert!(json.contains("\"a\\\"b\\\\c\""));
        assert!(json.contains("\"whole\": 3.0"));
        assert!(json.contains("\"frac\": 0.25"));
    }
}
