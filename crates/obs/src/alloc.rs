//! Opt-in counting allocator for peak-memory telemetry.
//!
//! Data-layout work (string arenas, CSR connectivity, flat gain lists)
//! is ultimately about bytes, so the benchmark binaries need a way to
//! *measure* bytes: install [`CountingAlloc`] as the process global
//! allocator and read [`peak_bytes`] / [`current_bytes`] around the
//! region of interest.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: m3d_obs::CountingAlloc = m3d_obs::CountingAlloc;
//! ```
//!
//! The counters are process-global and scheduling-dependent (allocator
//! traffic moves with thread interleaving), so readings belong in the
//! **performance-only** half of a manifest ([`crate::Obs::perf_add`]),
//! never in the deterministic section. Library code must not install the
//! allocator — that choice belongs to the binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that tracks live, peak and cumulative
/// allocated bytes. Zero-cost readings; a few atomic ops per allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        let size = size as u64;
        TOTAL.fetch_add(size, Ordering::Relaxed);
        let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        // Lock-free peak update: racing threads settle on the max.
        let mut peak = PEAK.load(Ordering::Relaxed);
        while now > peak {
            match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    fn on_dealloc(size: usize) {
        CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation to `System`; the bookkeeping is
// side-effect-free atomic arithmetic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (0 unless [`CountingAlloc`] is installed).
#[must_use]
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset_peak`]).
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated — allocation *churn*, the number the
/// scratch-buffer work drives down even when the peak stays flat.
#[must_use]
pub fn total_allocated_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Restarts the peak tracker from the current live size, so per-phase
/// peaks can be measured in sequence.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The test binary does not install the allocator, so the counters
    // stay at zero — which is itself the documented behavior.
    #[test]
    fn readings_without_installation_are_zero() {
        assert_eq!(super::current_bytes(), 0);
        assert_eq!(super::peak_bytes(), 0);
        assert_eq!(super::total_allocated_bytes(), 0);
    }
}
