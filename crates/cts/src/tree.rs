use m3d_geom::Point;
use m3d_netlist::{CellClass, CellId, Netlist};
use m3d_place::Placement;
use m3d_tech::{CellKind, Drive, Tier, TierStack};

/// CTS parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsConfig {
    /// Maximum sinks (or child buffers) per buffer.
    pub max_fanout: usize,
    /// Drive of fast-tier clock buffers.
    pub fast_drive: Drive,
    /// Drive of slow-tier clock buffers in [`CtsMode::Cover3d`] (can be
    /// upsized to trade clock power for latency on the weaker devices).
    pub slow_drive: Drive,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 20,
            fast_drive: Drive::X4,
            slow_drive: Drive::X4,
        }
    }
}

/// Which clock-tree construction the flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtsMode {
    /// Single-die design.
    Flat2d,
    /// Tier-blind tree inherited from the pseudo-3-D stage (Pin-3-D
    /// baseline behavior).
    Legacy3d,
    /// Tier-aware 3-D tree over COVER-cell representation (the paper's
    /// enhancement).
    Cover3d,
}

/// A child of a clock buffer: either another buffer or a clocked sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockChild {
    /// Internal node (index into [`ClockTree::nodes`]).
    Node(usize),
    /// Leaf sink (register or macro clock pin).
    Sink(CellId),
}

/// One buffer of the synthesized tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTreeNode {
    /// Buffer location.
    pub pos: Point,
    /// Tier the buffer is placed on.
    pub tier: Tier,
    /// Buffer drive strength.
    pub drive: Drive,
    /// Children (buffers or sinks).
    pub children: Vec<ClockChild>,
}

/// A synthesized clock tree with per-sink latencies and the Table VIII
/// metric set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    /// Buffers; the last node is the root.
    pub nodes: Vec<ClockTreeNode>,
    /// Index of the root buffer in `nodes`.
    pub root: usize,
    /// Clock arrival latency per netlist cell (0 for unclocked cells), ns.
    pub sink_latency: Vec<f64>,
    /// Total clock wirelength, µm.
    pub wirelength_um: f64,
    /// Total switched capacitance per clock edge (buffers + wire + sink
    /// pins), fF — the input to clock-power analysis.
    pub switched_cap_ff: f64,
    sink_ids: Vec<CellId>,
}

impl ClockTree {
    /// Number of clock buffers.
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of clock buffers on `tier`.
    #[must_use]
    pub fn buffer_count_on(&self, tier: Tier) -> usize {
        self.nodes.iter().filter(|n| n.tier == tier).count()
    }

    /// Total buffer area, µm² (each buffer priced in its tier's library).
    #[must_use]
    pub fn buffer_area_um2(&self, stack: &TierStack) -> f64 {
        self.nodes
            .iter()
            .map(|n| {
                stack
                    .library(n.tier)
                    .cell(CellKind::ClkBuf, n.drive)
                    .map_or(0.0, |m| m.area_um2)
            })
            .sum()
    }

    /// Latencies of all sinks, ns.
    #[must_use]
    pub fn latencies(&self) -> Vec<f64> {
        self.sink_ids
            .iter()
            .map(|id| self.sink_latency[id.index()])
            .collect()
    }

    /// Maximum insertion delay, ns.
    #[must_use]
    pub fn max_latency_ns(&self) -> f64 {
        self.latencies().into_iter().fold(0.0, f64::max)
    }

    /// Global skew: max − min sink latency, ns.
    #[must_use]
    pub fn max_skew_ns(&self) -> f64 {
        let l = self.latencies();
        let max = l.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = l.iter().copied().fold(f64::INFINITY, f64::min);
        if l.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Skew between two specific sinks (capture − launch), ns.
    #[must_use]
    pub fn pair_skew_ns(&self, launch: CellId, capture: CellId) -> f64 {
        self.sink_latency[capture.index()] - self.sink_latency[launch.index()]
    }
}

/// Synthesizes a clock tree for every clocked cell (registers and macros).
///
/// Top-down recursive bisection builds leaf clusters of at most
/// `max_fanout` sinks; a buffer is placed at each cluster centroid; the
/// buffers are clustered again until one root remains. Latencies are the
/// accumulated buffer NLDM delays plus wire Elmore along each root-to-sink
/// path.
#[must_use]
pub fn synthesize(
    netlist: &Netlist,
    placement: &Placement,
    tiers: &[Tier],
    stack: &TierStack,
    mode: CtsMode,
    config: &CtsConfig,
) -> ClockTree {
    let sinks: Vec<(CellId, Point, Tier)> = netlist
        .cells()
        .filter(|(_, c)| c.is_sequential() || c.class.is_macro())
        .map(|(id, _)| (id, placement.positions[id.index()], tiers[id.index()]))
        .collect();

    let mut nodes: Vec<ClockTreeNode> = Vec::new();

    // --- leaf level ------------------------------------------------------
    let leaf_groups: Vec<Vec<usize>> = match mode {
        CtsMode::Cover3d => {
            // Tier-aware: cluster each tier's sinks separately so a leaf
            // subtree never mixes technologies.
            let mut groups = Vec::new();
            for tier in Tier::BOTH {
                let idx: Vec<usize> = (0..sinks.len()).filter(|&i| sinks[i].2 == tier).collect();
                if !idx.is_empty() {
                    cluster(&idx, &sinks, config.max_fanout, &mut groups);
                }
            }
            groups
        }
        _ => {
            let idx: Vec<usize> = (0..sinks.len()).collect();
            let mut groups = Vec::new();
            if !idx.is_empty() {
                cluster(&idx, &sinks, config.max_fanout, &mut groups);
            }
            groups
        }
    };

    let mut level: Vec<usize> = Vec::new(); // node indices of current level
    for group in &leaf_groups {
        let centroid = centroid_of(group.iter().map(|&i| sinks[i].1));
        let tier = majority_tier(group.iter().map(|&i| sinks[i].2), mode);
        let drive = drive_for(tier, stack, mode, config);
        nodes.push(ClockTreeNode {
            pos: centroid,
            tier,
            drive,
            children: group
                .iter()
                .map(|&i| ClockChild::Sink(sinks[i].0))
                .collect(),
        });
        level.push(nodes.len() - 1);
    }

    // --- upper levels ------------------------------------------------------
    while level.len() > 1 {
        let pts: Vec<(CellId, Point, Tier)> = level
            .iter()
            .map(|&ni| (CellId::from_index(0), nodes[ni].pos, nodes[ni].tier))
            .collect();
        let idx: Vec<usize> = (0..level.len()).collect();
        let mut groups = Vec::new();
        cluster(&idx, &pts, config.max_fanout, &mut groups);
        if groups.len() == level.len() {
            // No reduction possible (degenerate); force a single root group.
            groups = vec![idx];
        }
        let mut next = Vec::new();
        for group in &groups {
            let centroid = centroid_of(group.iter().map(|&i| pts[i].1));
            // Upper tree levels are latency-balanced anyway, so the
            // tier-aware mode keeps them on the low-power (slow) die —
            // one reason the heterogeneous clock is top-tier-heavy and
            // cheaper (Table VIII).
            let tier = if mode == CtsMode::Cover3d && stack.is_heterogeneous() {
                stack.slow_tier()
            } else {
                majority_tier(group.iter().map(|&i| pts[i].2), mode)
            };
            let drive = drive_for(tier, stack, mode, config);
            nodes.push(ClockTreeNode {
                pos: centroid,
                tier,
                drive,
                children: group.iter().map(|&i| ClockChild::Node(level[i])).collect(),
            });
            next.push(nodes.len() - 1);
        }
        level = next;
    }

    let root = level.first().copied().unwrap_or(0);

    // --- latency propagation ---------------------------------------------
    let per_um = stack.metal.estimate_rc_per_um();
    let mut sink_latency = vec![0.0_f64; netlist.cell_count()];
    let mut wirelength = 0.0;
    let mut switched_cap = 0.0;
    if !nodes.is_empty() {
        // Compute each node's load (children caps + wire cap) first.
        let load_of = |node: &ClockTreeNode| -> f64 {
            let mut cap = 0.0;
            for child in &node.children {
                match child {
                    ClockChild::Node(ci) => {
                        // Placeholder: filled during traversal (uses the
                        // child's input cap).
                        let _ = ci;
                    }
                    ClockChild::Sink(_) => {}
                }
            }
            cap += 0.0;
            cap
        };
        let _ = load_of;

        // Iterative DFS from the root with accumulated latency.
        let mut stack_dfs: Vec<(usize, f64)> = vec![(root, 0.0)];
        while let Some((ni, lat)) = stack_dfs.pop() {
            let node = nodes[ni].clone();
            let lib = stack.library(node.tier);
            let master = lib
                .cell(CellKind::ClkBuf, node.drive)
                .expect("clock buffers always characterized");
            switched_cap += master.input_cap_ff;

            // Load on this buffer: children input caps + wire to children.
            let mut load = 0.0;
            let mut wire_total = 0.0;
            for child in &node.children {
                let (cpos, ccap) = match child {
                    ClockChild::Node(ci) => {
                        let cn = &nodes[*ci];
                        let ccap = stack
                            .library(cn.tier)
                            .cell(CellKind::ClkBuf, cn.drive)
                            .map_or(1.0, |m| m.input_cap_ff);
                        (cn.pos, ccap)
                    }
                    ClockChild::Sink(id) => {
                        let cell = netlist.cell(*id);
                        let tier = tiers[id.index()];
                        let ccap = match &cell.class {
                            CellClass::Gate { kind, drive } => stack
                                .library(tier)
                                .cell(*kind, *drive)
                                .map_or(1.0, |m| m.input_cap_ff),
                            CellClass::Macro(spec) => spec.input_cap_ff,
                            _ => 1.0,
                        };
                        (placement.positions[id.index()], ccap)
                    }
                };
                let dist = node.pos.manhattan(cpos);
                wire_total += dist;
                load += ccap + per_um.c_ff * dist;
            }
            wirelength += wire_total;
            switched_cap += per_um.c_ff * wire_total;
            let buf_delay = master.delay(0.05, load);

            for child in &node.children {
                match child {
                    ClockChild::Node(ci) => {
                        let dist = node.pos.manhattan(nodes[*ci].pos);
                        let rc = per_um.r_kohm * dist * (per_um.c_ff * dist) * 0.5 * 1e-3;
                        stack_dfs.push((*ci, lat + buf_delay + rc));
                    }
                    ClockChild::Sink(id) => {
                        let dist = node.pos.manhattan(placement.positions[id.index()]);
                        let rc = per_um.r_kohm * dist * (per_um.c_ff * dist) * 0.5 * 1e-3;
                        sink_latency[id.index()] = lat + buf_delay + rc;
                    }
                }
            }
        }
        // Cover3d skew management (Section III-A2): within each tier,
        // equalize leaf-subtree latencies by wire snaking so that related
        // (same-tier) launch/capture pairs see near-zero skew. Cross-tier
        // skew remains -- exactly the paper's Table VIII signature (large
        // max skew, small 100-path skew).
        if mode == CtsMode::Cover3d {
            let mut tier_max = [0.0_f64; 2];
            for (id, _, tier) in &sinks {
                tier_max[tier.index()] = tier_max[tier.index()].max(sink_latency[id.index()]);
            }
            for node in &nodes {
                // Leaf nodes only: all children are sinks of one tier.
                let sink_children: Vec<CellId> = node
                    .children
                    .iter()
                    .filter_map(|c| match c {
                        ClockChild::Sink(id) => Some(*id),
                        ClockChild::Node(_) => None,
                    })
                    .collect();
                if sink_children.is_empty() {
                    continue;
                }
                let target = tier_max[node.tier.index()];
                let leaf_max = sink_children
                    .iter()
                    .map(|id| sink_latency[id.index()])
                    .fold(0.0_f64, f64::max);
                let pad = (target - leaf_max).max(0.0);
                for id in &sink_children {
                    sink_latency[id.index()] += pad;
                }
                // Padding is realized as a small delay-buffer chain at the
                // leaf (~40 ps per stage): charge its switched capacitance
                // (abutted cells contribute no routed wirelength).
                let pad_stages = (pad / 0.04).ceil();
                switched_cap += pad_stages * 3.0;
            }
        }

        // Sink pin caps switch every cycle too.
        for (id, _, tier) in &sinks {
            let cell = netlist.cell(*id);
            switched_cap += match &cell.class {
                CellClass::Gate { kind, drive } => stack
                    .library(*tier)
                    .cell(*kind, *drive)
                    .map_or(1.0, |m| m.input_cap_ff),
                CellClass::Macro(spec) => spec.input_cap_ff,
                _ => 0.0,
            };
        }
    }

    ClockTree {
        nodes,
        root,
        sink_latency,
        wirelength_um: wirelength,
        switched_cap_ff: switched_cap,
        sink_ids: sinks.iter().map(|(id, _, _)| *id).collect(),
    }
}

/// Recursive median bisection into groups of at most `max_fanout`.
fn cluster(
    idx: &[usize],
    pts: &[(CellId, Point, Tier)],
    max_fanout: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if idx.len() <= max_fanout.max(2) {
        out.push(idx.to_vec());
        return;
    }
    // Split along the longer axis at the median.
    let xs: Vec<f64> = idx.iter().map(|&i| pts[i].1.x).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| pts[i].1.y).collect();
    let span_x = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - xs.iter().copied().fold(f64::INFINITY, f64::min);
    let span_y = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - ys.iter().copied().fold(f64::INFINITY, f64::min);
    let mut sorted = idx.to_vec();
    if span_x >= span_y {
        sorted.sort_by(|&a, &b| {
            pts[a]
                .1
                .x
                .partial_cmp(&pts[b].1.x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        sorted.sort_by(|&a, &b| {
            pts[a]
                .1
                .y
                .partial_cmp(&pts[b].1.y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    let mid = sorted.len() / 2;
    cluster(&sorted[..mid], pts, max_fanout, out);
    cluster(&sorted[mid..], pts, max_fanout, out);
}

fn centroid_of(points: impl Iterator<Item = Point>) -> Point {
    let mut sum = Point::ORIGIN;
    let mut count = 0.0;
    for p in points {
        sum += p;
        count += 1.0;
    }
    if count > 0.0 {
        sum / count
    } else {
        Point::ORIGIN
    }
}

fn majority_tier(tiers: impl Iterator<Item = Tier>, mode: CtsMode) -> Tier {
    if mode == CtsMode::Flat2d {
        return Tier::Bottom;
    }
    let mut counts = [0usize; 2];
    for t in tiers {
        counts[t.index()] += 1;
    }
    if counts[1] > counts[0] {
        Tier::Top
    } else {
        Tier::Bottom
    }
}

fn drive_for(tier: Tier, stack: &TierStack, mode: CtsMode, config: &CtsConfig) -> Drive {
    if mode == CtsMode::Cover3d && stack.is_heterogeneous() && tier == stack.slow_tier() {
        config.slow_drive
    } else {
        config.fast_drive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_place::{global_place, Floorplan, PlacerConfig};
    use m3d_tech::Library;

    fn setup(stack: TierStack, split: bool) -> (Netlist, Vec<Tier>, Placement) {
        let n = m3d_netgen::Benchmark::Netcard.generate(0.02, 8);
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        if split {
            // Put ~70 % of registers on the top tier (the hetero outcome).
            let mut count = 0;
            for (id, cell) in n.cells() {
                if cell.is_sequential() {
                    count += 1;
                    if count % 10 < 7 {
                        tiers[id.index()] = Tier::Top;
                    }
                }
            }
        }
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        (n, tiers, p)
    }

    #[test]
    fn flat_tree_covers_all_registers() {
        let stack = TierStack::two_d(Library::twelve_track());
        let (n, tiers, p) = setup(stack.clone(), false);
        let tree = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Flat2d,
            &CtsConfig::default(),
        );
        let regs = n.sequential_cells();
        assert!(!regs.is_empty());
        for r in &regs {
            assert!(
                tree.sink_latency[r.index()] > 0.0,
                "register {r:?} got no clock latency"
            );
        }
        assert!(tree.buffer_count() >= regs.len() / CtsConfig::default().max_fanout);
        assert_eq!(tree.buffer_count_on(Tier::Top), 0);
        assert!(tree.wirelength_um > 0.0);
        assert!(tree.switched_cap_ff > 0.0);
    }

    #[test]
    fn hetero_cover_tree_is_top_heavy() {
        let stack = TierStack::heterogeneous();
        let (n, tiers, p) = setup(stack.clone(), true);
        let tree = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Cover3d,
            &CtsConfig::default(),
        );
        let top = tree.buffer_count_on(Tier::Top);
        let bottom = tree.buffer_count_on(Tier::Bottom);
        // The paper's Table VIII: >75 % of clock buffers on the top die.
        assert!(
            top > 2 * bottom,
            "expected top-heavy clock: top {top} vs bottom {bottom}"
        );
    }

    #[test]
    fn hetero_tree_has_worse_max_latency_than_homogeneous() {
        let hetero = TierStack::heterogeneous();
        let (n, tiers, p) = setup(hetero.clone(), true);
        let tree_h = synthesize(
            &n,
            &p,
            &tiers,
            &hetero,
            CtsMode::Cover3d,
            &CtsConfig::default(),
        );

        let homo = TierStack::homogeneous_3d(Library::twelve_track());
        let tree_12 = synthesize(
            &n,
            &p,
            &tiers,
            &homo,
            CtsMode::Cover3d,
            &CtsConfig::default(),
        );
        assert!(
            tree_h.max_latency_ns() > tree_12.max_latency_ns(),
            "hetero latency {} vs 12T {}",
            tree_h.max_latency_ns(),
            tree_12.max_latency_ns()
        );
    }

    #[test]
    fn cover_mode_controls_related_sink_skew() {
        // Launch/capture pairs connected by real paths should see smaller
        // skew under Cover3d (same-tier subtrees) than under Legacy3d.
        let stack = TierStack::heterogeneous();
        let (n, tiers, p) = setup(stack.clone(), true);
        let cover = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Cover3d,
            &CtsConfig::default(),
        );
        let legacy = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Legacy3d,
            &CtsConfig::default(),
        );

        // Sample register pairs that are physically close AND same-tier
        // (these represent same-block launch/capture pairs).
        let regs = n.sequential_cells();
        let mut cover_skew = 0.0;
        let mut legacy_skew = 0.0;
        let mut pairs = 0;
        for w in regs.windows(2) {
            let (a, b) = (w[0], w[1]);
            if tiers[a.index()] == tiers[b.index()]
                && p.positions[a.index()].distance(p.positions[b.index()]) < p.die.width() * 0.2
            {
                cover_skew += cover.pair_skew_ns(a, b).abs();
                legacy_skew += legacy.pair_skew_ns(a, b).abs();
                pairs += 1;
            }
        }
        assert!(pairs > 5, "not enough pairs sampled");
        assert!(
            cover_skew < legacy_skew * 0.8,
            "cover {cover_skew} vs legacy {legacy_skew} over {pairs} pairs"
        );
    }

    #[test]
    fn buffer_area_prices_tiers_correctly() {
        let stack = TierStack::heterogeneous();
        let (n, tiers, p) = setup(stack.clone(), true);
        let tree = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Cover3d,
            &CtsConfig::default(),
        );
        let area = tree.buffer_area_um2(&stack);
        assert!(area > 0.0);
        // Area is bounded by all-buffers-at-max-size.
        let max_cell = stack
            .library(Tier::Bottom)
            .cell(CellKind::ClkBuf, Drive::X8)
            .unwrap()
            .area_um2;
        assert!(area <= tree.buffer_count() as f64 * max_cell * 1.01);
    }

    #[test]
    fn deterministic() {
        let stack = TierStack::two_d(Library::twelve_track());
        let (n, tiers, p) = setup(stack.clone(), false);
        let a = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Flat2d,
            &CtsConfig::default(),
        );
        let b = synthesize(
            &n,
            &p,
            &tiers,
            &stack,
            CtsMode::Flat2d,
            &CtsConfig::default(),
        );
        assert_eq!(a.sink_latency, b.sink_latency);
        assert_eq!(a.wirelength_um, b.wirelength_um);
    }
}
