//! Clock tree synthesis — including the heterogeneous 3-D mode of
//! Section III-A2.
//!
//! Pin-3-D's published limitation is the clock: during per-die
//! optimization the other die's cells were modeled as transparent macros,
//! which broke the clock tree and prevented any 3-D clock optimization.
//! The paper's fix represents foreign-die cells as zero-area **COVER**
//! cells so CTS sees the whole 3-D design at once. This crate implements
//! both behaviors so the Table V comparison can be regenerated:
//!
//! * [`CtsMode::Flat2d`] — ordinary single-die CTS,
//! * [`CtsMode::Legacy3d`] — tier-blind clustering, then buffers dropped
//!   onto whichever tier holds most of their sinks (what you get when the
//!   tree is inherited from the pseudo-3-D stage): heterogeneous subtrees
//!   mix fast and slow buffers arbitrarily, so launch/capture pairs see
//!   random skew,
//! * [`CtsMode::Cover3d`] — the enhanced flow: leaf clusters are formed
//!   *per tier* (a subtree stays inside one technology, so related
//!   registers share latency), slow-tier buffers are upsized, and upper
//!   levels are merged tier-aware.
//!
//! The synthesized [`ClockTree`] reports the Table VIII clock metrics
//! (buffer counts per tier, buffer area, clock wirelength, latency, skew)
//! and exports per-sink latencies for [`m3d_sta::ClockSpec`].
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_cts::{synthesize, CtsConfig, CtsMode};
//! use m3d_place::{global_place, Floorplan, PlacerConfig};
//! use m3d_tech::{Library, Tier, TierStack};
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let stack = TierStack::two_d(Library::twelve_track());
//! let tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let fp = Floorplan::new(&netlist, &stack, &tiers, 0.7);
//! let placement = global_place(&netlist, &fp, &PlacerConfig::default());
//! let tree = synthesize(&netlist, &placement, &tiers, &stack, CtsMode::Flat2d, &CtsConfig::default());
//! assert!(tree.buffer_count() > 0);
//! assert!(tree.max_latency_ns() > 0.0);
//! ```

mod tree;

pub use tree::{synthesize, ClockChild, ClockTree, ClockTreeNode, CtsConfig, CtsMode};
