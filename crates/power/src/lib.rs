//! Power analysis: activity propagation, switching/internal/leakage power
//! and clock-network power.
//!
//! Mirrors the paper's methodology ("fixed input activity factors and
//! statistical switching propagation"): primary inputs get a fixed toggle
//! rate, signal probabilities propagate through each gate's boolean
//! function, and per-net switching power uses the driver tier's supply —
//! which is where the heterogeneous design wins (nets driven from the
//! 0.81 V tier burn ~19 % less `CV²` energy than at 0.90 V, and 9-track
//! pins are smaller loads).
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_power::{analyze_power, PowerConfig};
//! use m3d_sta::Parasitics;
//! use m3d_tech::{Library, Tier, TierStack};
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let stack = TierStack::two_d(Library::twelve_track());
//! let tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let parasitics = Parasitics::zero_wire(&netlist);
//! let p = analyze_power(&netlist, &stack, &tiers, &parasitics, None, &PowerConfig::default());
//! assert!(p.total_mw() > 0.0);
//! ```

use m3d_cts::ClockTree;
use m3d_netlist::{CellClass, Netlist};
use m3d_sta::Parasitics;
use m3d_tech::{CellKind, Tier, TierStack};

/// Power-analysis parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Toggle rate at primary inputs, transitions per cycle.
    pub input_activity: f64,
    /// Clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Signal one-probability assumed at primary inputs.
    pub input_probability: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            input_activity: 0.15,
            frequency_ghz: 1.0,
            input_probability: 0.5,
        }
    }
}

/// Power breakdown in mW.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerResult {
    /// Net switching power (wire + pin capacitance), mW.
    pub switching_mw: f64,
    /// Cell-internal power, mW.
    pub internal_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Clock network power (buffers, wire, sink pins), mW.
    pub clock_mw: f64,
}

impl PowerResult {
    /// Total power, mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.switching_mw + self.internal_mw + self.leakage_mw + self.clock_mw
    }
}

/// Runs the full power analysis.
///
/// `clock_tree` adds clock-network power when present (post-CTS analyses);
/// pre-CTS calls pass `None`.
#[must_use]
pub fn analyze_power(
    netlist: &Netlist,
    stack: &TierStack,
    tiers: &[Tier],
    parasitics: &Parasitics,
    clock_tree: Option<&ClockTree>,
    config: &PowerConfig,
) -> PowerResult {
    let f = config.frequency_ghz;
    let n_nets = netlist.net_count();

    // --- signal probability & activity propagation -----------------------
    let mut prob = vec![config.input_probability; n_nets];
    let mut activity = vec![config.input_activity; n_nets];
    // Launch points: register/macro outputs toggle with data-like activity.
    for (_, cell) in netlist.cells() {
        if cell.is_sequential() || cell.class.is_macro() {
            for net in cell.output_nets() {
                prob[net.index()] = 0.5;
                activity[net.index()] = config.input_activity;
            }
        }
    }
    let order = netlist
        .combinational_order()
        .expect("validated netlist expected for power analysis");
    for id in order {
        let cell = netlist.cell(id);
        let Some(kind) = cell.class.gate_kind() else {
            continue;
        };
        let in_probs: Vec<f64> = cell
            .inputs
            .iter()
            .take(kind.input_count())
            .map(|slot| slot.map_or(0.5, |net| prob[net.index()]))
            .collect();
        let in_act: f64 = cell
            .inputs
            .iter()
            .take(kind.input_count())
            .map(|slot| slot.map_or(0.0, |net| activity[net.index()]))
            .sum::<f64>()
            / kind.input_count().max(1) as f64;
        if let Some(out) = cell.outputs.first().copied().flatten() {
            let p = kind.output_probability(&in_probs);
            prob[out.index()] = p;
            // Statistical propagation: transition density scaled by output
            // uncertainty (2p(1-p) = 1 at p=0.5, 0 at constant outputs).
            activity[out.index()] = in_act * (4.0 * p * (1.0 - p)).clamp(0.05, 1.0) * 0.9;
        }
    }

    // --- switching power --------------------------------------------------
    let mut switching_uw = 0.0;
    for (net_id, net) in netlist.nets() {
        if net.is_clock {
            continue;
        }
        let Some(driver) = net.driver else { continue };
        let vdd = stack.library(tiers[driver.cell.index()]).vdd;
        // Load: wire + sink pins (in their own tiers' libraries).
        let mut cap = parasitics.net(net_id).wire_cap_ff;
        for sink in &net.sinks {
            let c = netlist.cell(sink.cell);
            cap += match &c.class {
                CellClass::Gate { kind, drive } => stack
                    .library(tiers[sink.cell.index()])
                    .cell(*kind, *drive)
                    .map_or(0.0, |m| m.input_cap_ff),
                CellClass::Macro(spec) => spec.input_cap_ff,
                _ => 2.0,
            };
        }
        // 0.5 · α · C · V² · f ; fF · V² · GHz = µW.
        switching_uw += 0.5 * activity[net_id.index()] * cap * vdd * vdd * f;
    }

    // --- internal & leakage -----------------------------------------------
    let mut internal_uw = 0.0;
    let mut leakage_uw = 0.0;
    for (id, cell) in netlist.cells() {
        match &cell.class {
            CellClass::Gate { kind, drive } => {
                if kind.is_clock_cell() {
                    continue; // accounted in clock power
                }
                let lib = stack.library(tiers[id.index()]);
                if let Some(m) = lib.cell(*kind, *drive) {
                    leakage_uw += m.leakage_uw;
                    let act = cell
                        .outputs
                        .first()
                        .copied()
                        .flatten()
                        .map_or(config.input_activity, |net| activity[net.index()]);
                    // Sequential cells switch internally every clock.
                    let act = if kind.is_sequential() {
                        act.max(0.3)
                    } else {
                        act
                    };
                    internal_uw += act * m.internal_energy_fj * f;
                }
            }
            CellClass::Macro(spec) => {
                leakage_uw += spec.leakage_uw;
                internal_uw += 0.5 * spec.internal_energy_fj * f;
            }
            _ => {}
        }
    }

    // --- clock network ------------------------------------------------------
    let clock_uw = clock_tree.map_or(0.0, |tree| {
        // The clock toggles twice per cycle: E = C·V² per cycle.
        let mut uw = tree.switched_cap_ff * stack.vdd_high() * stack.vdd_high() * f;
        for node in &tree.nodes {
            let lib = stack.library(node.tier);
            if let Some(m) = lib.cell(CellKind::ClkBuf, node.drive) {
                uw += m.leakage_uw + m.internal_energy_fj * f; // α = 1
            }
        }
        uw
    });

    PowerResult {
        switching_mw: switching_uw * 1e-3,
        internal_mw: internal_uw * 1e-3,
        leakage_mw: leakage_uw * 1e-3,
        clock_mw: clock_uw * 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::Library;

    fn run(stack: &TierStack, tiers: &[Tier], f: f64) -> PowerResult {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 6);
        assert_eq!(tiers.len(), n.cell_count());
        let parasitics = Parasitics::zero_wire(&n);
        analyze_power(
            &n,
            stack,
            tiers,
            &parasitics,
            None,
            &PowerConfig {
                frequency_ghz: f,
                ..Default::default()
            },
        )
    }

    fn cell_count() -> usize {
        m3d_netgen::Benchmark::Aes.generate(0.02, 6).cell_count()
    }

    #[test]
    fn power_scales_with_frequency() {
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; cell_count()];
        let p1 = run(&stack, &tiers, 1.0);
        let p2 = run(&stack, &tiers, 2.0);
        assert!(p2.switching_mw > 1.9 * p1.switching_mw);
        assert!(p2.internal_mw > 1.9 * p1.internal_mw);
        // Leakage is frequency independent.
        assert!((p2.leakage_mw - p1.leakage_mw).abs() < 1e-9);
    }

    #[test]
    fn nine_track_is_lower_power() {
        let fast = TierStack::two_d(Library::twelve_track());
        let slow = TierStack::two_d(Library::nine_track());
        let tiers = vec![Tier::Bottom; cell_count()];
        let pf = run(&fast, &tiers, 1.0);
        let ps = run(&slow, &tiers, 1.0);
        assert!(ps.total_mw() < pf.total_mw());
        assert!(ps.leakage_mw < 0.2 * pf.leakage_mw, "high-Vt leakage win");
    }

    #[test]
    fn hetero_sits_between_homogeneous_extremes() {
        let hetero = TierStack::heterogeneous();
        let n_cells = cell_count();
        let all_fast = vec![Tier::Bottom; n_cells];
        let all_slow = vec![Tier::Top; n_cells];
        let mut half = vec![Tier::Bottom; n_cells];
        for (i, t) in half.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let pf = run(&hetero, &all_fast, 1.0);
        let ps = run(&hetero, &all_slow, 1.0);
        let pm = run(&hetero, &half, 1.0);
        assert!(pf.total_mw() > pm.total_mw());
        assert!(pm.total_mw() > ps.total_mw());
    }

    #[test]
    fn wire_cap_adds_switching_power() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 6);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let zero = Parasitics::zero_wire(&n);
        let mut wired = Parasitics::zero_wire(&n);
        for id in n.net_ids() {
            wired.net_mut(id).wire_cap_ff = 10.0;
        }
        let p0 = analyze_power(&n, &stack, &tiers, &zero, None, &PowerConfig::default());
        let p1 = analyze_power(&n, &stack, &tiers, &wired, None, &PowerConfig::default());
        assert!(p1.switching_mw > 1.5 * p0.switching_mw);
        assert_eq!(p1.leakage_mw, p0.leakage_mw);
    }

    #[test]
    fn clock_tree_adds_clock_power() {
        let n = m3d_netgen::Benchmark::Netcard.generate(0.02, 6);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = m3d_place::Floorplan::new(&n, &stack, &tiers, 0.7);
        let placement = m3d_place::global_place(&n, &fp, &m3d_place::PlacerConfig::default());
        let tree = m3d_cts::synthesize(
            &n,
            &placement,
            &tiers,
            &stack,
            m3d_cts::CtsMode::Flat2d,
            &m3d_cts::CtsConfig::default(),
        );
        let parasitics = Parasitics::zero_wire(&n);
        let without = analyze_power(
            &n,
            &stack,
            &tiers,
            &parasitics,
            None,
            &PowerConfig::default(),
        );
        let with = analyze_power(
            &n,
            &stack,
            &tiers,
            &parasitics,
            Some(&tree),
            &PowerConfig::default(),
        );
        assert_eq!(without.clock_mw, 0.0);
        assert!(with.clock_mw > 0.0);
        assert!(with.total_mw() > without.total_mw());
    }

    #[test]
    fn activity_decays_through_and_gates() {
        // A chain of AND gates with p=0.5 inputs drives probability toward
        // 0 and activity down with it.
        use m3d_tech::{CellKind, Drive};
        let mut n = Netlist::new("ands");
        let a = n.add_input("a");
        let mut prev = n.add_net("na", a, 0);
        let b = n.add_input("b");
        let mut side = n.add_net("nb", b, 0);
        for i in 0..6 {
            let g = n.add_gate(format!("g{i}"), CellKind::And2, Drive::X1, 0);
            n.connect(prev, g, 0);
            n.connect(side, g, 1);
            let out = n.add_net(format!("n{i}"), g, 0);
            side = prev;
            prev = out;
        }
        let y = n.add_output("y");
        n.connect(prev, y, 0);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        let p = analyze_power(
            &n,
            &stack,
            &tiers,
            &parasitics,
            None,
            &PowerConfig::default(),
        );
        // Just a sanity check that the analysis runs and is small but
        // positive for this tiny design.
        assert!(p.total_mw() > 0.0);
        assert!(p.switching_mw < 1.0);
    }
}
