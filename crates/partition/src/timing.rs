use m3d_netlist::{CellId, Netlist};
use m3d_tech::Tier;

/// Result of the timing-based pre-assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAssignment {
    /// Cells locked onto the fast tier, most critical first.
    pub locked_cells: Vec<CellId>,
    /// Fraction of total gate area the locked set occupies.
    pub locked_area_fraction: f64,
    /// The slack of the least-critical locked cell (the cut-off).
    pub cutoff_slack_ns: f64,
}

/// Timing-based partitioning (Section III-A1).
///
/// Ranks every gate by its cell criticality (worst slack among paths
/// through the cell — the complete, cell-based coverage the paper uses
/// instead of path sampling) and locks the most critical cells onto the
/// fast tier, up to `area_cap` (the paper limits this to 20–30 % of total
/// cell area to avoid dense same-die clusters that the later legalization
/// would have to pull apart).
///
/// Sequential cells are skipped: a register on the slow tier costs one
/// clk→Q + setup, not a whole chain of slow stages, and leaving the
/// registers (and therefore the clock tree) on the low-power tier is a
/// large part of the heterogeneous power win — it is also what makes the
/// clock top-tier-heavy, as the paper's Table VIII observes. The
/// repartitioning ECO can still move an individual register later if a
/// path demands it.
///
/// `criticality[i]` is the slack of cell `i` (lower = more critical);
/// `areas[i]` its area. Returns the locked set; the caller marks those
/// cells locked and runs bin-based FM on the rest.
#[must_use]
pub fn timing_driven_assignment(
    netlist: &Netlist,
    criticality: &[f64],
    areas: &[f64],
    area_cap: f64,
    fast: Tier,
    tiers: &mut [Tier],
) -> TimingAssignment {
    let total_area: f64 = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate())
        .map(|(id, _)| areas[id.index()])
        .sum();
    let budget = total_area * area_cap.clamp(0.0, 1.0);

    let mut gates: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();
    gates.sort_by(|a, b| {
        criticality[a.index()]
            .partial_cmp(&criticality[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut locked_cells = Vec::new();
    let mut used = 0.0;
    let mut cutoff = f64::NEG_INFINITY;
    for id in gates {
        let a = areas[id.index()];
        if used + a > budget {
            break;
        }
        used += a;
        cutoff = criticality[id.index()];
        tiers[id.index()] = fast;
        locked_cells.push(id);
    }

    TimingAssignment {
        locked_cells,
        locked_area_fraction: if total_area > 0.0 {
            used / total_area
        } else {
            0.0
        },
        cutoff_slack_ns: cutoff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_most_critical_cells_up_to_cap() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 7);
        let count = n.cell_count();
        // Synthetic criticality: cell id as slack (lower id = more critical).
        let criticality: Vec<f64> = (0..count).map(|i| i as f64).collect();
        let areas: Vec<f64> = n
            .cells()
            .map(|(_, c)| if c.class.is_gate() { 1.0 } else { 0.0 })
            .collect();
        let mut tiers = vec![Tier::Top; count];
        let result =
            timing_driven_assignment(&n, &criticality, &areas, 0.25, Tier::Bottom, &mut tiers);
        assert!(
            (result.locked_area_fraction - 0.25).abs() < 0.02,
            "locked fraction {}",
            result.locked_area_fraction
        );
        // Locked cells are the lowest-slack gates.
        for w in result.locked_cells.windows(2) {
            assert!(criticality[w[0].index()] <= criticality[w[1].index()]);
        }
        for id in &result.locked_cells {
            assert_eq!(tiers[id.index()], Tier::Bottom);
        }
    }

    #[test]
    fn zero_cap_locks_nothing() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.01, 7);
        let criticality = vec![0.0; n.cell_count()];
        let areas = vec![1.0; n.cell_count()];
        let mut tiers = vec![Tier::Top; n.cell_count()];
        let result =
            timing_driven_assignment(&n, &criticality, &areas, 0.0, Tier::Bottom, &mut tiers);
        assert!(result.locked_cells.is_empty());
        assert_eq!(result.locked_area_fraction, 0.0);
    }

    #[test]
    fn full_cap_locks_every_gate() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.01, 7);
        let criticality = vec![0.0; n.cell_count()];
        let areas = vec![1.0; n.cell_count()];
        let mut tiers = vec![Tier::Top; n.cell_count()];
        let result =
            timing_driven_assignment(&n, &criticality, &areas, 1.0, Tier::Bottom, &mut tiers);
        // Sequential cells are deliberately never locked.
        let comb = n
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .count();
        assert_eq!(result.locked_cells.len(), comb);
    }
}
