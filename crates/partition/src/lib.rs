//! Tier partitioning: FM min-cut, bin-based FM, timing-driven assignment
//! and the repartitioning ECO of the heterogeneous flow.
//!
//! This crate is the heart of the paper's contribution. The homogeneous
//! Pin-3-D flow partitions with placement-driven (bin-based) FM min-cut
//! and area balancing; the heterogeneous flow adds two stages on top:
//!
//! 1. **Timing-based partitioning** ([`timing_driven_assignment`],
//!    Section III-A1): rank every cell by its worst slack (complete,
//!    cell-based coverage — not path sampling) and *lock* the most
//!    critical 20–30 % of cell area onto the fast tier before min-cut
//!    runs on the rest.
//! 2. **Repartitioning ECO** ([`repartition_eco`], Section III-C /
//!    Algorithm 1): after placement and CTS, iteratively find cells that
//!    are too slow for their tier on the critical paths and move them to
//!    the fast die, with WNS/TNS guard rails and an area-unbalance stop.
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_partition::{cut_size, min_cut, PartitionConfig};
//! use m3d_tech::Tier;
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let areas = vec![1.0; netlist.cell_count()];
//! let locked = vec![false; netlist.cell_count()];
//! let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let cut = min_cut(&netlist, &areas, &locked, &mut tiers, &PartitionConfig::default());
//! assert_eq!(cut, cut_size(&netlist, &tiers));
//! ```

mod eco;
mod fm;
mod timing;

pub use eco::{
    repartition_eco, repartition_eco_with, EcoConfig, EcoOutcome, EcoStop, EcoTimingView,
};
pub use fm::{bin_min_cut, bin_min_cut_with_stats, min_cut, FmStats, PartitionConfig};
pub use timing::{timing_driven_assignment, TimingAssignment};

use m3d_netlist::Netlist;
use m3d_tech::Tier;

/// Number of signal nets spanning both tiers — each needs (at least) one
/// MIV in the monolithic 3-D implementation.
#[must_use]
pub fn cut_size(netlist: &Netlist, tiers: &[Tier]) -> usize {
    netlist
        .nets()
        .filter(|(_, net)| !net.is_clock)
        .filter(|(_, net)| {
            let mut seen = [false, false];
            for c in net.cells() {
                seen[tiers[c.index()].index()] = true;
            }
            seen[0] && seen[1]
        })
        .count()
}

/// Area on each tier under an assignment, `[bottom, top]`.
#[must_use]
pub fn tier_areas(areas: &[f64], tiers: &[Tier]) -> [f64; 2] {
    let mut out = [0.0; 2];
    for (i, &t) in tiers.iter().enumerate() {
        out[t.index()] += areas[i];
    }
    out
}

/// Relative area unbalance `|A0 − A1| / (A0 + A1)`, 0 for a perfect split.
#[must_use]
pub fn unbalance(areas: &[f64], tiers: &[Tier]) -> f64 {
    let [a, b] = tier_areas(areas, tiers);
    if a + b == 0.0 {
        0.0
    } else {
        (a - b).abs() / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{CellKind, Drive};

    #[test]
    fn cut_size_counts_spanning_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate("g1", CellKind::Inv, Drive::X1, 0);
        let g2 = n.add_gate("g2", CellKind::Inv, Drive::X1, 0);
        let na = n.add_net("na", a, 0);
        let n1 = n.add_net("n1", g1, 0);
        n.connect(na, g1, 0);
        n.connect(n1, g2, 0);
        let _n2 = n.add_net("n2", g2, 0);

        let same = vec![Tier::Bottom; n.cell_count()];
        assert_eq!(cut_size(&n, &same), 0);

        let mut split = same.clone();
        split[g2.index()] = Tier::Top;
        assert_eq!(cut_size(&n, &split), 1); // only n1 crosses
    }

    #[test]
    fn unbalance_metric() {
        let areas = vec![1.0, 1.0, 2.0];
        let tiers = vec![Tier::Bottom, Tier::Top, Tier::Top];
        assert_eq!(tier_areas(&areas, &tiers), [1.0, 3.0]);
        assert_eq!(unbalance(&areas, &tiers), 0.5);
        let even = vec![Tier::Bottom, Tier::Bottom, Tier::Top];
        assert_eq!(unbalance(&areas, &even), 0.0);
    }
}
