use m3d_geom::Point;
use m3d_netlist::{CellClass, Netlist};
use m3d_tech::Tier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fiduccia–Mattheyses parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Maximum relative area unbalance `|A0 − A1| / total` allowed.
    pub balance_tolerance: f64,
    /// Maximum FM passes (each pass visits every free cell once).
    pub passes: usize,
    /// Seed for the initial random balanced assignment of free cells.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            balance_tolerance: 0.08,
            passes: 6,
            seed: 1,
        }
    }
}

/// Counters from one FM run, surfaced for run telemetry. All values are
/// deterministic: the move sequence defines the algorithm's order.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FmStats {
    /// FM passes executed (including the final non-improving one).
    pub passes: u64,
    /// Tentative gain-bucket moves across all passes (before rollback).
    pub moves: u64,
    /// Final cut size.
    pub cut: u64,
}

/// Classic FM min-cut bipartitioning with area balancing.
///
/// `areas` gives each cell's area (use the pseudo-3-D/fast-library area:
/// partitioning happens before the 9-track shrink, exactly as in the
/// paper's flow). `locked` cells keep whatever tier `tiers` holds on
/// entry — the timing-driven pre-assignment locks critical cells to the
/// fast tier this way. Free cells are re-seeded into a balanced random
/// split first.
///
/// Returns the final cut size.
pub fn min_cut(
    netlist: &Netlist,
    areas: &[f64],
    locked: &[bool],
    tiers: &mut [Tier],
    config: &PartitionConfig,
) -> usize {
    seed_balanced(netlist, areas, locked, tiers, config.seed);
    let total: f64 = areas.iter().sum();
    let tol = config.balance_tolerance;
    let balance_ok = |tier_area: &[f64; 2], from: Tier, to: Tier, a: f64| {
        let mut ta = *tier_area;
        ta[from.index()] -= a;
        ta[to.index()] += a;
        (ta[0] - ta[1]).abs() / total.max(1e-12) <= tol
    };
    run_fm(netlist, areas, locked, tiers, config.passes, balance_ok)
}

/// Bin-based FM min-cut (Section III-A1): like [`min_cut`] but the area
/// balance is enforced *per placement bin*, so the partition stays
/// consistent with the pseudo-3-D placement (each bin contributes half its
/// area to each tier and tier legalization barely perturbs the placement).
#[allow(clippy::too_many_arguments)]
pub fn bin_min_cut(
    netlist: &Netlist,
    positions: &[Point],
    die: m3d_geom::Rect,
    bins: usize,
    areas: &[f64],
    locked: &[bool],
    tiers: &mut [Tier],
    config: &PartitionConfig,
) -> usize {
    bin_min_cut_with_stats(netlist, positions, die, bins, areas, locked, tiers, config).0
}

/// [`bin_min_cut`] plus the [`FmStats`] counters of the run.
#[allow(clippy::too_many_arguments)]
pub fn bin_min_cut_with_stats(
    netlist: &Netlist,
    positions: &[Point],
    die: m3d_geom::Rect,
    bins: usize,
    areas: &[f64],
    locked: &[bool],
    tiers: &mut [Tier],
    config: &PartitionConfig,
) -> (usize, FmStats) {
    seed_balanced(netlist, areas, locked, tiers, config.seed);
    let grid = m3d_geom::BinGrid::new(die, bins.max(1), bins.max(1));
    let bin_of: Vec<usize> = positions
        .iter()
        .map(|&p| {
            let (x, y) = grid.bin_of(p);
            y * grid.nx() + x
        })
        .collect();
    let n_bins = grid.nx() * grid.ny();

    // Per-bin totals and per-bin per-tier areas.
    let mut bin_total = vec![0.0_f64; n_bins];
    let mut bin_tier = vec![[0.0_f64; 2]; n_bins];
    for (i, &b) in bin_of.iter().enumerate() {
        bin_total[b] += areas[i];
        bin_tier[b][tiers[i].index()] += areas[i];
    }
    // Per-bin balance is intentionally looser than the global tolerance:
    // bins hold few cells, so exact halves are not achievable.
    let tol = config.balance_tolerance.max(0.05) + 0.25;
    let bin_of_ref = &bin_of;
    let bin_total_ref = &bin_total;
    let bin_tier_cell = std::cell::RefCell::new(bin_tier);
    let can_move = |cell: usize, from: Tier, to: Tier| {
        let b = bin_of_ref[cell];
        let mut bt = bin_tier_cell.borrow()[b];
        bt[from.index()] -= areas[cell];
        bt[to.index()] += areas[cell];
        let total = bin_total_ref[b].max(1e-12);
        (bt[0] - bt[1]).abs() / total <= tol
    };
    let on_move = |cell: usize, from: Tier, to: Tier| {
        let b = bin_of_ref[cell];
        let mut bt = bin_tier_cell.borrow_mut();
        bt[b][from.index()] -= areas[cell];
        bt[b][to.index()] += areas[cell];
    };
    run_fm_with(
        netlist,
        areas,
        locked,
        tiers,
        config.passes,
        can_move,
        on_move,
    )
}

/// Seeds free cells into a random balanced split (locked cells untouched).
fn seed_balanced(netlist: &Netlist, areas: &[f64], locked: &[bool], tiers: &mut [Tier], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tier_area = [0.0_f64; 2];
    for (i, &l) in locked.iter().enumerate() {
        if l {
            tier_area[tiers[i].index()] += areas[i];
        }
    }
    // Ports are conceptually on both tiers (bump/pad); keep them bottom.
    for (id, cell) in netlist.cells() {
        let i = id.index();
        if locked[i] {
            continue;
        }
        if cell.class.is_port() {
            tiers[i] = Tier::Bottom;
            continue;
        }
        // Assign to the lighter side with some randomness.
        let lighter = if tier_area[0] <= tier_area[1] {
            Tier::Bottom
        } else {
            Tier::Top
        };
        let choice = if rng.gen_bool(0.75) {
            lighter
        } else {
            lighter.other()
        };
        tiers[i] = choice;
        tier_area[choice.index()] += areas[i];
    }
}

/// Runs FM passes with a global balance predicate.
fn run_fm(
    netlist: &Netlist,
    areas: &[f64],
    locked: &[bool],
    tiers: &mut [Tier],
    passes: usize,
    balance_ok: impl Fn(&[f64; 2], Tier, Tier, f64) -> bool,
) -> usize {
    let tier_area = std::cell::RefCell::new({
        let mut ta = [0.0_f64; 2];
        for (i, &t) in tiers.iter().enumerate() {
            ta[t.index()] += areas[i];
        }
        ta
    });
    let can_move =
        |cell: usize, from: Tier, to: Tier| balance_ok(&tier_area.borrow(), from, to, areas[cell]);
    let on_move = |cell: usize, from: Tier, to: Tier| {
        let mut ta = tier_area.borrow_mut();
        ta[from.index()] -= areas[cell];
        ta[to.index()] += areas[cell];
    };
    run_fm_with(netlist, areas, locked, tiers, passes, can_move, on_move).0
}

/// Sentinel for "no node" in the flat gain-list links.
const NIL: u32 = u32::MAX;

/// The FM engine: a flat doubly-linked gain list, tentative move
/// sequence, best-prefix rollback; repeated for `passes` passes or until
/// no pass improves.
///
/// Data layout is flat throughout: the hypergraph is CSR (`net_off` /
/// `net_cell` for net→cells, `cell_net_off` / `cell_net` for cell→nets,
/// both preserving the legacy `Vec<Vec<_>>` iteration order exactly), and
/// the classic gain *bucket-of-stacks* is replaced by one doubly-linked
/// free list over per-gain heads (`head` / `prev` / `next` arrays — one
/// node per cell, no per-bucket `Vec`s, no stale duplicates). Pushing a
/// node to the front of its gain's list makes the front the
/// most-recently-updated candidate, which is precisely the entry the old
/// lazy stacks surfaced with `last()` — so the move sequence, and with it
/// every downstream bit, is unchanged.
///
/// All per-pass scratch (side counts, gains, pass locks, list links, the
/// move journal) is allocated once and reset in place, so a pass costs no
/// heap churn.
///
/// The per-pass setup — side counts, initial gains, cut evaluation — is
/// embarrassingly parallel and runs on `m3d_par` workers for large
/// designs; each item's value is independent, so the scattered results
/// are identical to the sequential loops. The move sequence itself stays
/// sequential: it *defines* the deterministic order of the pass.
fn run_fm_with(
    netlist: &Netlist,
    _areas: &[f64],
    locked: &[bool],
    tiers: &mut [Tier],
    passes: usize,
    can_move: impl Fn(usize, Tier, Tier) -> bool,
    on_move: impl Fn(usize, Tier, Tier),
) -> (usize, FmStats) {
    let mut stats = FmStats::default();
    let n = netlist.cell_count();
    let net_count = netlist.net_count();
    let threads = m3d_par::resolve(0);
    let parallel = threads > 1 && n >= m3d_par::PAR_THRESHOLD;
    // Movable = not locked, not a port, not a macro (macros sit on the
    // bottom tier per the flow).
    let movable: Vec<bool> = netlist
        .cells()
        .map(|(id, c)| !locked[id.index()] && matches!(c.class, CellClass::Gate { .. }))
        .collect();

    // ---- CSR hypergraph -------------------------------------------------
    // Net k's member cells (driver first, then sinks — `Net::cells`
    // order) are `net_cell[net_off[k] .. net_off[k + 1]]`; clock nets get
    // empty slices, exactly like the legacy empty pin lists.
    let mut net_off: Vec<u32> = Vec::with_capacity(net_count + 1);
    net_off.push(0);
    let mut pin_total = 0u32;
    for (_, net) in netlist.nets() {
        if !net.is_clock {
            pin_total += net.degree() as u32;
        }
        net_off.push(pin_total);
    }
    let mut net_cell: Vec<u32> = vec![0; pin_total as usize];
    for (id, net) in netlist.nets() {
        if net.is_clock {
            continue;
        }
        for (w, c) in (net_off[id.index()] as usize..).zip(net.cells()) {
            net_cell[w] = c.index() as u32;
        }
    }
    // Cell→incident nets by counting sort over the nets in index order —
    // the same per-cell net sequence the legacy push loop built (net
    // order is part of the deterministic gain-update order).
    let mut cell_net_off: Vec<u32> = vec![0; n + 1];
    for &c in &net_cell {
        cell_net_off[c as usize + 1] += 1;
    }
    for i in 0..n {
        cell_net_off[i + 1] += cell_net_off[i];
    }
    let mut next_slot: Vec<u32> = cell_net_off[..n].to_vec();
    let mut cell_net: Vec<u32> = vec![0; pin_total as usize];
    for k in 0..net_count {
        for &c in &net_cell[net_off[k] as usize..net_off[k + 1] as usize] {
            cell_net[next_slot[c as usize] as usize] = k as u32;
            next_slot[c as usize] += 1;
        }
    }
    drop(next_slot);

    let net_of = |k: usize| &net_cell[net_off[k] as usize..net_off[k + 1] as usize];
    let nets_of = |c: usize| &cell_net[cell_net_off[c] as usize..cell_net_off[c + 1] as usize];

    let cut_of = |tiers: &[Tier]| -> usize {
        let is_cut = |pins: &[u32]| {
            let mut seen = [false, false];
            for &c in pins {
                seen[tiers[c as usize].index()] = true;
            }
            seen[0] && seen[1]
        };
        if parallel {
            m3d_par::par_ranges(threads, net_count, |r| {
                r.filter(|&ni| is_cut(net_of(ni))).count()
            })
            .into_iter()
            .sum()
        } else {
            (0..net_count).filter(|&ni| is_cut(net_of(ni))).count()
        }
    };

    let max_deg = (0..n).map(|c| nets_of(c).len()).max().unwrap_or(1).max(1) as i64;
    let mut best_cut = cut_of(tiers);

    // ---- per-pass scratch, allocated once -------------------------------
    let offset = max_deg;
    let nbuckets = (2 * max_deg + 1) as usize;
    let mut side_count: Vec<[i32; 2]> = vec![[0, 0]; net_count];
    let mut gains: Vec<i64> = vec![0; n];
    let mut head: Vec<u32> = vec![NIL; nbuckets];
    let mut prev: Vec<u32> = vec![NIL; n];
    let mut next: Vec<u32> = vec![NIL; n];
    let mut in_list: Vec<bool> = vec![false; n];
    let mut locked_pass: Vec<bool> = vec![false; n];
    let mut moves: Vec<usize> = Vec::new();

    for _pass in 0..passes {
        stats.passes += 1;
        // Per-net side counts, recomputed into the standing buffer.
        let side_count_of = |pins: &[u32], tiers: &[Tier]| -> [i32; 2] {
            let mut sc = [0, 0];
            for &c in pins {
                sc[tiers[c as usize].index()] += 1;
            }
            sc
        };
        if parallel {
            let tiers_ref = &*tiers;
            let chunks = m3d_par::par_ranges(threads, net_count, |r| {
                r.map(|ni| side_count_of(net_of(ni), tiers_ref))
                    .collect::<Vec<[i32; 2]>>()
            });
            let mut w = 0;
            for chunk in chunks {
                side_count[w..w + chunk.len()].copy_from_slice(&chunk);
                w += chunk.len();
            }
        } else {
            for (ni, sc) in side_count.iter_mut().enumerate() {
                *sc = side_count_of(net_of(ni), tiers);
            }
        }

        // Initial gains.
        let gain_of = |cell: usize, tiers: &[Tier], side_count: &[[i32; 2]]| -> i64 {
            let from = tiers[cell].index();
            let to = 1 - from;
            let mut g = 0i64;
            for &ni in nets_of(cell) {
                let sc = side_count[ni as usize];
                if sc[from] == 1 {
                    g += 1; // moving uncuts this net
                }
                if sc[to] == 0 {
                    g -= 1; // moving cuts this net
                }
            }
            g
        };

        let initial_gain = |c: usize, tiers: &[Tier], side_count: &[[i32; 2]]| -> i64 {
            if movable[c] {
                gain_of(c, tiers, side_count)
            } else {
                i64::MIN
            }
        };
        if parallel {
            let tiers_ref = &*tiers;
            let side_count_ref = &side_count;
            let chunks = m3d_par::par_ranges(threads, n, |r| {
                r.map(|c| initial_gain(c, tiers_ref, side_count_ref))
                    .collect::<Vec<i64>>()
            });
            let mut w = 0;
            for chunk in chunks {
                gains[w..w + chunk.len()].copy_from_slice(&chunk);
                w += chunk.len();
            }
        } else {
            for (c, g) in gains.iter_mut().enumerate() {
                *g = initial_gain(c, tiers, &side_count);
            }
        }

        // Gain list: gains in [-max_deg, +max_deg]. Filling in ascending
        // cell index puts the highest index at each list's front — the
        // entry the legacy stacks exposed with `last()`.
        head.fill(NIL);
        in_list.copy_from_slice(&movable);
        locked_pass.fill(false);
        moves.clear();
        for c in 0..n {
            if movable[c] {
                let b = (gains[c] + offset) as usize;
                let h = head[b];
                next[c] = h;
                prev[c] = NIL;
                if h != NIL {
                    prev[h as usize] = c as u32;
                }
                head[b] = c as u32;
            }
        }
        let unlink = |head: &mut [u32], prev: &mut [u32], next: &mut [u32], b: usize, c: usize| {
            let p = prev[c];
            let nx = next[c];
            if p != NIL {
                next[p as usize] = nx;
            } else {
                head[b] = nx;
            }
            if nx != NIL {
                prev[nx as usize] = p;
            }
        };

        let start_cut = cut_of(tiers);
        let mut cur_cut = start_cut as i64;
        let mut best_prefix_cut = cur_cut;
        let mut best_prefix_len = 0usize;
        let mut top = nbuckets as i64 - 1;

        loop {
            // Find the highest-gain admissible cell. Lists hold no stale
            // entries (nodes move eagerly on every gain change), so the
            // scan only skips balance-rejected candidates.
            let mut chosen = None;
            'outer: while top >= 0 {
                while head[top as usize] != NIL {
                    let c = head[top as usize] as usize;
                    let from = tiers[c];
                    if can_move(c, from, from.other()) {
                        chosen = Some(c);
                        break 'outer;
                    }
                    // Not movable under balance right now: drop from the
                    // list; it may come back after other moves.
                    unlink(&mut head, &mut prev, &mut next, top as usize, c);
                    in_list[c] = false;
                }
                top -= 1;
            }
            let Some(c) = chosen else { break };
            unlink(&mut head, &mut prev, &mut next, top as usize, c);
            in_list[c] = false;
            locked_pass[c] = true;

            let from = tiers[c];
            let to = from.other();
            cur_cut -= gains[c];
            tiers[c] = to;
            on_move(c, from, to);
            moves.push(c);

            // Update side counts and neighbor gains.
            for &ni in nets_of(c) {
                let ni = ni as usize;
                let sc = &mut side_count[ni];
                sc[from.index()] -= 1;
                sc[to.index()] += 1;
                for &nb in net_of(ni) {
                    let nb = nb as usize;
                    if nb == c || !movable[nb] || locked_pass[nb] {
                        continue;
                    }
                    let g = gain_of(nb, tiers, &side_count);
                    if g != gains[nb] {
                        if in_list[nb] {
                            let old = (gains[nb] + offset) as usize;
                            unlink(&mut head, &mut prev, &mut next, old, nb);
                        }
                        gains[nb] = g;
                        let bucket = (g + offset) as usize;
                        let h = head[bucket];
                        next[nb] = h;
                        prev[nb] = NIL;
                        if h != NIL {
                            prev[h as usize] = nb as u32;
                        }
                        head[bucket] = nb as u32;
                        in_list[nb] = true;
                        if (bucket as i64) > top {
                            top = bucket as i64;
                        }
                    }
                }
            }

            if cur_cut < best_prefix_cut {
                best_prefix_cut = cur_cut;
                best_prefix_len = moves.len();
            }
        }

        // Roll back to the best prefix.
        stats.moves += moves.len() as u64;
        for &c in moves.iter().skip(best_prefix_len).rev() {
            let cur = tiers[c];
            tiers[c] = cur.other();
            on_move(c, cur, cur.other());
        }

        let new_cut = cut_of(tiers);
        if new_cut >= best_cut {
            best_cut = best_cut.min(new_cut);
            break;
        }
        best_cut = new_cut;
    }
    stats.cut = best_cut as u64;
    (best_cut, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut_size;

    fn areas_of(n: &Netlist) -> Vec<f64> {
        n.cells()
            .map(|(_, c)| if c.class.is_gate() { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn fm_improves_over_random_split() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.03, 9);
        let areas = areas_of(&n);
        let locked = vec![false; n.cell_count()];
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        seed_balanced(&n, &areas, &locked, &mut tiers, 42);
        let random_cut = cut_size(&n, &tiers);

        let mut tiers2 = vec![Tier::Bottom; n.cell_count()];
        let fm_cut = min_cut(
            &n,
            &areas,
            &locked,
            &mut tiers2,
            &PartitionConfig::default(),
        );
        assert!(
            fm_cut < random_cut / 2,
            "FM cut {fm_cut} vs random {random_cut}"
        );
        assert_eq!(fm_cut, cut_size(&n, &tiers2));
    }

    #[test]
    fn fm_respects_balance() {
        let n = m3d_netgen::Benchmark::Netcard.generate(0.02, 9);
        let areas = areas_of(&n);
        let locked = vec![false; n.cell_count()];
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        let config = PartitionConfig {
            balance_tolerance: 0.08,
            ..Default::default()
        };
        min_cut(&n, &areas, &locked, &mut tiers, &config);
        let u = crate::unbalance(&areas, &tiers);
        assert!(u <= 0.1, "unbalance {u}");
    }

    #[test]
    fn locked_cells_do_not_move() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 9);
        let areas = areas_of(&n);
        let mut locked = vec![false; n.cell_count()];
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        // Lock every 5th gate to the top tier.
        for (id, cell) in n.cells() {
            if cell.class.is_gate() && id.index() % 5 == 0 {
                locked[id.index()] = true;
                tiers[id.index()] = Tier::Top;
            }
        }
        let snapshot = tiers.clone();
        min_cut(&n, &areas, &locked, &mut tiers, &PartitionConfig::default());
        for i in 0..tiers.len() {
            if locked[i] {
                assert_eq!(tiers[i], snapshot[i], "locked cell {i} moved");
            }
        }
    }

    #[test]
    fn fm_is_deterministic() {
        let n = m3d_netgen::Benchmark::Ldpc.generate(0.015, 3);
        let areas = areas_of(&n);
        let locked = vec![false; n.cell_count()];
        let mut a = vec![Tier::Bottom; n.cell_count()];
        let mut b = vec![Tier::Bottom; n.cell_count()];
        let c1 = min_cut(&n, &areas, &locked, &mut a, &PartitionConfig::default());
        let c2 = min_cut(&n, &areas, &locked, &mut b, &PartitionConfig::default());
        assert_eq!(c1, c2);
        assert_eq!(a, b);
    }

    #[test]
    fn bin_fm_keeps_bins_balanced() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 9);
        let areas = areas_of(&n);
        let locked = vec![false; n.cell_count()];
        let die = m3d_geom::Rect::new(0.0, 0.0, 100.0, 100.0);
        // Synthetic positions: hash cells around the die.
        let positions: Vec<Point> = (0..n.cell_count())
            .map(|i| Point::new((i as f64 * 37.3) % 100.0, (i as f64 * 53.7) % 100.0))
            .collect();
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        let cut = bin_min_cut(
            &n,
            &positions,
            die,
            4,
            &areas,
            &locked,
            &mut tiers,
            &PartitionConfig::default(),
        );
        assert!(cut > 0);
        // Check each bin's balance is not absurd.
        let grid = m3d_geom::BinGrid::new(die, 4, 4);
        let mut bin_tier = vec![[0.0_f64; 2]; 16];
        let mut bin_total = [0.0_f64; 16];
        for (id, cell) in n.cells() {
            if !cell.class.is_gate() {
                continue;
            }
            let (x, y) = grid.bin_of(positions[id.index()]);
            let b = y * 4 + x;
            bin_tier[b][tiers[id.index()].index()] += areas[id.index()];
            bin_total[b] += areas[id.index()];
        }
        for b in 0..16 {
            if bin_total[b] < 20.0 {
                continue; // tiny bins can be lopsided
            }
            let u = (bin_tier[b][0] - bin_tier[b][1]).abs() / bin_total[b];
            assert!(u <= 0.55, "bin {b} unbalance {u}");
        }
    }

    #[test]
    fn global_balance_from_bin_balance() {
        // If every bin is balanced, the global split is balanced too.
        let n = m3d_netgen::Benchmark::Netcard.generate(0.015, 9);
        let areas = areas_of(&n);
        let locked = vec![false; n.cell_count()];
        let die = m3d_geom::Rect::new(0.0, 0.0, 100.0, 100.0);
        let positions: Vec<Point> = (0..n.cell_count())
            .map(|i| Point::new((i as f64 * 17.9) % 100.0, (i as f64 * 71.3) % 100.0))
            .collect();
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        bin_min_cut(
            &n,
            &positions,
            die,
            6,
            &areas,
            &locked,
            &mut tiers,
            &PartitionConfig::default(),
        );
        let u = crate::unbalance(&areas, &tiers);
        assert!(u < 0.3, "global unbalance {u}");
    }
}
