use m3d_netlist::CellId;
use m3d_tech::Tier;

/// Parameters of the repartitioning ECO — the symbols of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoConfig {
    /// Initial delay-threshold multiplier `d_0`.
    pub d0: f64,
    /// Number of critical paths examined per iteration `n_0`.
    pub n0: usize,
    /// Threshold shrink factor `α < 1` applied after an undone round.
    pub alpha: f64,
    /// Stop when the area unbalance exceeds this (`unbalance_th`).
    pub unbalance_th: f64,
    /// Stop when fewer than this fraction of critical cells sit on the
    /// slow die (`crit_th`).
    pub crit_th: f64,
    /// Minimum WNS improvement to keep a round (`W_th`, ns).
    pub w_th: f64,
    /// Minimum TNS improvement to keep a round (`T_th`, ns).
    pub t_th: f64,
    /// Hard iteration cap (safety net, not part of the paper).
    pub max_iterations: usize,
}

impl Default for EcoConfig {
    fn default() -> Self {
        EcoConfig {
            d0: 1.2,
            n0: 30,
            alpha: 0.8,
            unbalance_th: 0.35,
            crit_th: 0.015,
            w_th: -0.005,
            t_th: -0.5,
            max_iterations: 12,
        }
    }
}

/// Timing view the ECO needs per evaluation: produced by the caller from
/// a full STA + path extraction run under the current tier assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoTimingView {
    /// Worst negative slack, ns.
    pub wns: f64,
    /// Total negative slack, ns.
    pub tns: f64,
    /// The `n_p` most critical paths, each a list of `(cell, stage delay)`.
    pub critical_paths: Vec<Vec<(CellId, f64)>>,
}

/// Outcome summary of a repartitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoOutcome {
    /// Rounds executed (kept + undone).
    pub iterations: usize,
    /// Cells moved to the fast die and kept there.
    pub cells_moved: usize,
    /// Rounds whose moves were rolled back by the WNS/TNS guard.
    pub rounds_undone: usize,
    /// WNS before the first round, ns.
    pub initial_wns: f64,
    /// WNS after the final kept state, ns.
    pub final_wns: f64,
    /// TNS after the final kept state, ns.
    pub final_tns: f64,
    /// Why the loop stopped.
    pub stop_reason: EcoStop,
}

/// Why [`repartition_eco`] terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcoStop {
    /// Area unbalance crossed `unbalance_th`.
    Unbalanced,
    /// Too few critical cells remained on the slow die (`crit_th`).
    Converged,
    /// No movable critical cells were found.
    NothingToMove,
    /// The iteration cap was hit.
    IterationCap,
}

/// Algorithm 1: repartitioning using ECO.
///
/// Iteratively finds cells on the `n_p` most critical paths whose stage
/// delay exceeds `d_k ×` the average critical stage delay, moves those on
/// the slow die to the fast die, re-times, and keeps or undoes the round
/// depending on the WNS/TNS deltas. The loop stops when the design's area
/// unbalance exceeds `unbalance_th` (the fast die can only absorb so much),
/// when almost no critical cells remain on the slow die, or at the
/// iteration cap.
///
/// `evaluate` runs timing under the given assignment; `areas` is per-cell
/// area used for the unbalance bookkeeping.
pub fn repartition_eco(
    tiers: &mut [Tier],
    areas: &[f64],
    fast: Tier,
    config: &EcoConfig,
    mut evaluate: impl FnMut(&[Tier]) -> EcoTimingView,
) -> EcoOutcome {
    repartition_eco_with(tiers, areas, fast, config, |t, _| evaluate(t))
}

/// [`repartition_eco`] with an edit-aware evaluate: each call receives the
/// cells whose tier changed since the previous call (empty on the first
/// call), so a journal-fed incremental timer can dirty exactly those
/// cells. An undone round's cells are *not* re-evaluated immediately (the
/// algorithm proceeds straight to the next round, exactly as
/// [`repartition_eco`] does); instead they are carried over and prepended
/// to the next call's edit list, which keeps a stateful evaluator's view
/// of the tier assignment complete.
pub fn repartition_eco_with(
    tiers: &mut [Tier],
    areas: &[f64],
    fast: Tier,
    config: &EcoConfig,
    mut evaluate: impl FnMut(&[Tier], &[CellId]) -> EcoTimingView,
) -> EcoOutcome {
    // Tier flips applied since the last `evaluate` call (undo carry).
    let mut carry: Vec<CellId> = Vec::new();
    let mut view = evaluate(tiers, &carry);
    let initial_wns = view.wns;
    let mut d_k = config.d0;
    let mut iterations = 0;
    let mut cells_moved = 0;
    let mut rounds_undone = 0;
    let mut stop_reason = EcoStop::IterationCap;

    while iterations < config.max_iterations {
        if crate::unbalance(areas, tiers) > config.unbalance_th {
            stop_reason = EcoStop::Unbalanced;
            break;
        }
        iterations += 1;

        // d_th = d_k * (avg cell delay over the n_p critical paths)
        let mut sum = 0.0;
        let mut count = 0usize;
        for path in view.critical_paths.iter().take(config.n0) {
            for &(_, d) in path {
                sum += d;
                count += 1;
            }
        }
        if count == 0 {
            stop_reason = EcoStop::NothingToMove;
            break;
        }
        let d_th = d_k * sum / count as f64;

        let mut all_crit = 0usize;
        let mut slow_crit = 0usize;
        let mut move_list: Vec<CellId> = Vec::new();
        for path in view.critical_paths.iter().take(config.n0) {
            for &(cell, d_c) in path {
                if d_c > d_th {
                    all_crit += 1;
                    if tiers[cell.index()] != fast {
                        slow_crit += 1;
                        move_list.push(cell);
                    }
                }
            }
        }
        move_list.sort();
        move_list.dedup();

        if all_crit == 0 || (slow_crit as f64 / all_crit as f64) < config.crit_th {
            stop_reason = EcoStop::Converged;
            break;
        }
        if move_list.is_empty() {
            stop_reason = EcoStop::NothingToMove;
            break;
        }

        // Move all cells in the list to the fast die (the "ECO").
        for &c in &move_list {
            tiers[c.index()] = fast;
        }
        carry.extend_from_slice(&move_list);
        let new_view = evaluate(tiers, &carry);
        carry.clear();
        let delta_wns = new_view.wns - view.wns;
        let delta_tns = new_view.tns - view.tns;
        if delta_wns < config.w_th || delta_tns < config.t_th {
            // The round hurt timing: undo and tighten the threshold.
            for &c in &move_list {
                tiers[c.index()] = fast.other();
            }
            // The undos are reported with the *next* evaluate call.
            carry.extend_from_slice(&move_list);
            d_k *= config.alpha;
            rounds_undone += 1;
            // view unchanged (we restored the state).
        } else {
            cells_moved += move_list.len();
            view = new_view;
        }
    }

    EcoOutcome {
        iterations,
        cells_moved,
        rounds_undone,
        initial_wns,
        final_wns: view.wns,
        final_tns: view.tns,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy timing model: 10 cells in a chain; slow-tier cells cost 2.0,
    /// fast-tier cells 1.0. WNS = budget - path delay.
    fn toy_eval(tiers: &[Tier], budget: f64) -> EcoTimingView {
        let delays: Vec<f64> = tiers
            .iter()
            .map(|t| if *t == Tier::Bottom { 1.0 } else { 2.0 })
            .collect();
        let total: f64 = delays.iter().sum();
        let path: Vec<(CellId, f64)> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| (CellId::from_index(i), d))
            .collect();
        EcoTimingView {
            wns: budget - total,
            tns: (budget - total).min(0.0),
            critical_paths: vec![path],
        }
    }

    #[test]
    fn eco_moves_slow_cells_to_fast_die() {
        let mut tiers = vec![Tier::Top; 10];
        let areas = vec![1.0; 10];
        let outcome = repartition_eco(
            &mut tiers,
            &areas,
            Tier::Bottom,
            &EcoConfig {
                unbalance_th: 1.1, // effectively unbounded for the toy
                d0: 0.9,
                ..Default::default()
            },
            |t| toy_eval(t, 15.0),
        );
        assert!(outcome.cells_moved > 0);
        assert!(outcome.final_wns > outcome.initial_wns);
    }

    #[test]
    fn eco_respects_unbalance_threshold() {
        let mut tiers = vec![Tier::Top; 10];
        let areas = vec![1.0; 10];
        let outcome = repartition_eco(
            &mut tiers,
            &areas,
            Tier::Bottom,
            &EcoConfig {
                unbalance_th: 0.0, // any move unbalances -> immediate stop
                ..Default::default()
            },
            |t| toy_eval(t, 15.0),
        );
        // The toy starts all-Top, already fully unbalanced.
        assert_eq!(outcome.stop_reason, EcoStop::Unbalanced);
        assert_eq!(outcome.cells_moved, 0);
    }

    #[test]
    fn eco_converges_when_critical_cells_are_fast() {
        let mut tiers = vec![Tier::Bottom; 10];
        let areas = vec![1.0; 10];
        let outcome = repartition_eco(
            &mut tiers,
            &areas,
            Tier::Bottom,
            &EcoConfig {
                unbalance_th: 1.1,
                ..Default::default()
            },
            |t| toy_eval(t, 15.0),
        );
        assert_eq!(outcome.stop_reason, EcoStop::Converged);
        assert_eq!(outcome.cells_moved, 0);
    }

    #[test]
    fn edit_lists_track_the_tier_assignment_through_undos() {
        // Mirror every reported edit onto a replica by flipping the cell's
        // tier; if the edit lists are complete (including undo carries),
        // the replica matches the real assignment at every evaluate call.
        let mut tiers = vec![Tier::Top; 10];
        let areas = vec![1.0; 10];
        let mut replica = tiers.clone();
        let mut calls = 0usize;
        let outcome = repartition_eco_with(
            &mut tiers,
            &areas,
            Tier::Bottom,
            &EcoConfig {
                unbalance_th: 1.1,
                d0: 0.9,
                max_iterations: 4,
                ..Default::default()
            },
            |t, edits| {
                calls += 1;
                for &c in edits {
                    replica[c.index()] = replica[c.index()].other();
                }
                assert_eq!(replica, t, "replica diverged at call {calls}");
                // Hurt on even rounds so undo carries get exercised.
                let moved = t.iter().filter(|x| **x == Tier::Bottom).count();
                let wns = if calls.is_multiple_of(2) {
                    -50.0
                } else {
                    15.0 - (20.0 - moved as f64)
                };
                EcoTimingView {
                    wns,
                    tns: wns.min(0.0),
                    critical_paths: vec![(0..10).map(|i| (CellId::from_index(i), 2.0)).collect()],
                }
            },
        );
        assert!(outcome.rounds_undone > 0, "undo path must be exercised");
        assert!(calls > 2);
    }

    #[test]
    fn eco_undoes_rounds_that_hurt() {
        // Pathological evaluator: any move makes WNS much worse.
        let mut tiers = vec![Tier::Top; 10];
        let areas = vec![1.0; 10];
        let initial = tiers.clone();
        let mut calls = 0;
        let outcome = repartition_eco(
            &mut tiers,
            &areas,
            Tier::Bottom,
            &EcoConfig {
                unbalance_th: 1.1,
                d0: 0.9,
                max_iterations: 3,
                ..Default::default()
            },
            |t| {
                calls += 1;
                let moved = t.iter().filter(|x| **x == Tier::Bottom).count();
                EcoTimingView {
                    wns: -1.0 - moved as f64, // strictly worse with moves
                    tns: -1.0 - moved as f64,
                    critical_paths: vec![(0..10).map(|i| (CellId::from_index(i), 2.0)).collect()],
                }
            },
        );
        assert!(outcome.rounds_undone > 0);
        assert_eq!(outcome.cells_moved, 0);
        assert_eq!(tiers, initial, "all moves must be rolled back");
    }
}
