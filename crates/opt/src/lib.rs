//! In-place netlist optimization: cell sizing and buffer insertion.
//!
//! These are the knobs the commercial flow turns during `optDesign`-style
//! steps and that the paper's methodology leans on ("additional cell
//! sizing and buffer insertion ... to overcome PPA degradation"):
//!
//! * [`resize_for_timing`] — upsizes gates with negative slack, iterating
//!   while WNS improves,
//! * [`resize_for_power`] — downsizes gates with comfortable slack,
//!   verifying after each batch and rolling back batches that create
//!   violations,
//! * [`insert_buffers`] — splits high-fanout nets with buffer trees
//!   (placing new buffers at sink centroids).
//!
//! All functions take an `evaluate` closure that runs STA on the current
//! netlist, so the optimization loops stay decoupled from how the caller
//! builds parasitics and clocks.

use m3d_geom::Point;
use m3d_netlist::{CellId, NetId, Netlist};
use m3d_sta::StaResult;
use m3d_tech::{CellKind, Drive};

/// Outcome of a sizing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeOutcome {
    /// Sizing rounds executed.
    pub rounds: usize,
    /// Cells whose drive changed (net, after rollbacks).
    pub cells_changed: usize,
    /// WNS before, ns.
    pub initial_wns: f64,
    /// WNS after, ns.
    pub final_wns: f64,
}

/// Upsizes gates on violating paths until WNS stops improving.
///
/// Each round upsizes every gate whose cell criticality is below
/// `slack_floor` (default callers use 0.0) by one drive step, then
/// re-evaluates; rounds that do not improve WNS are rolled back and the
/// loop stops.
pub fn resize_for_timing(
    netlist: &mut Netlist,
    slack_floor: f64,
    max_rounds: usize,
    mut evaluate: impl FnMut(&Netlist) -> StaResult,
) -> ResizeOutcome {
    resize_for_timing_with(netlist, slack_floor, max_rounds, |nl, _| evaluate(nl))
}

/// A drive change applied between two `evaluate` calls: `(cell, from, to)`.
/// Journal-aware callers (an incremental timer fed from a change journal)
/// use the list to dirty exactly the touched cells; signature-diffing
/// callers ignore it.
pub type DriveEdit = (CellId, Drive, Drive);

/// [`resize_for_timing`] with an edit-aware evaluate: each call receives
/// the drive changes applied since the previous call (empty on the first
/// call). Rolled-back batches are flushed through one extra `evaluate`
/// carrying the undo edits, so a stateful evaluator never goes stale; that
/// result is discarded (`evaluate` must be a pure function of the
/// netlist, so the flush is bit-identical to the pre-batch result).
pub fn resize_for_timing_with(
    netlist: &mut Netlist,
    slack_floor: f64,
    max_rounds: usize,
    mut evaluate: impl FnMut(&Netlist, &[DriveEdit]) -> StaResult,
) -> ResizeOutcome {
    let mut result = evaluate(netlist, &[]);
    let initial_wns = result.wns;
    let mut rounds = 0;
    let mut cells_changed = 0usize;

    while rounds < max_rounds && result.wns < 0.0 {
        rounds += 1;
        // Selective sizing: only the most critical cone (worst half of the
        // violating slack range) — blanket upsizing of every violating
        // cell explodes area the way no commercial optimizer would.
        let threshold = slack_floor.min(result.wns * 0.5);
        let mut batch: Vec<(CellId, Drive)> = Vec::new();
        for (id, cell) in netlist.cells() {
            let Some(kind) = cell.class.gate_kind() else {
                continue;
            };
            if kind.is_clock_cell() {
                continue;
            }
            if result.cell_criticality(id) < threshold {
                if let Some(up) = cell.class.gate_drive().and_then(Drive::upsized) {
                    batch.push((id, up));
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        let edits: Vec<DriveEdit> = batch
            .iter()
            .map(|&(id, up)| (id, netlist.cell(id).class.gate_drive().expect("gate"), up))
            .collect();
        for &(id, up) in &batch {
            netlist.set_drive(id, up);
        }
        let new_result = evaluate(netlist, &edits);
        // Accept on WNS improvement, or on meaningful TNS improvement —
        // the tool keeps pushing the whole violating population even when
        // the single worst path is stuck (the paper's "over-correction"
        // behavior of slow libraries at aggressive targets).
        let wns_better = new_result.wns > result.wns + 1e-9;
        let tns_better = new_result.tns > result.tns - result.tns.abs() * 0.02 + 1e-9;
        if wns_better || tns_better {
            cells_changed += batch.len();
            result = new_result;
        } else {
            let undo: Vec<DriveEdit> = edits.iter().map(|&(id, from, to)| (id, to, from)).collect();
            for &(id, _, from) in &undo {
                netlist.set_drive(id, from);
            }
            let _ = evaluate(netlist, &undo);
            break;
        }
    }

    ResizeOutcome {
        rounds,
        cells_changed,
        initial_wns,
        final_wns: result.wns,
    }
}

/// Downsizes gates whose slack exceeds `slack_margin`, in batches,
/// verifying WNS does not degrade below `wns_floor` (typically the current
/// WNS minus a small tolerance). Batches that violate are rolled back.
pub fn resize_for_power(
    netlist: &mut Netlist,
    slack_margin: f64,
    max_rounds: usize,
    mut evaluate: impl FnMut(&Netlist) -> StaResult,
) -> ResizeOutcome {
    resize_for_power_with(netlist, slack_margin, max_rounds, |nl, _| evaluate(nl))
}

/// [`resize_for_power`] with an edit-aware evaluate; see
/// [`resize_for_timing_with`] for the edit-list contract.
pub fn resize_for_power_with(
    netlist: &mut Netlist,
    slack_margin: f64,
    max_rounds: usize,
    mut evaluate: impl FnMut(&Netlist, &[DriveEdit]) -> StaResult,
) -> ResizeOutcome {
    let mut result = evaluate(netlist, &[]);
    let initial_wns = result.wns;
    let wns_floor = result.wns - 0.002;
    let mut rounds = 0;
    let mut cells_changed = 0usize;

    while rounds < max_rounds {
        rounds += 1;
        let mut batch: Vec<(CellId, Drive)> = Vec::new();
        for (id, cell) in netlist.cells() {
            let Some(kind) = cell.class.gate_kind() else {
                continue;
            };
            if kind.is_clock_cell() || kind.is_sequential() {
                continue;
            }
            if result.cell_criticality(id) > slack_margin {
                if let Some(down) = cell.class.gate_drive().and_then(Drive::downsized) {
                    batch.push((id, down));
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        let edits: Vec<DriveEdit> = batch
            .iter()
            .map(|&(id, down)| (id, netlist.cell(id).class.gate_drive().expect("gate"), down))
            .collect();
        for &(id, down) in &batch {
            netlist.set_drive(id, down);
        }
        let new_result = evaluate(netlist, &edits);
        if new_result.wns >= wns_floor {
            cells_changed += batch.len();
            result = new_result;
        } else {
            let undo: Vec<DriveEdit> = edits.iter().map(|&(id, from, to)| (id, to, from)).collect();
            for &(id, _, from) in &undo {
                netlist.set_drive(id, from);
            }
            let _ = evaluate(netlist, &undo);
            break;
        }
    }

    ResizeOutcome {
        rounds,
        cells_changed,
        initial_wns,
        final_wns: result.wns,
    }
}

/// Splits every signal net with fanout above `max_fanout` by inserting a
/// buffer per sink group of `max_fanout`, placed at the group's centroid.
///
/// `positions` is extended with the new buffers' locations; the caller's
/// tier assignment must likewise be extended (new buffers inherit the
/// driver's tier — the helper returns the new cells and their driver so
/// the caller can do that).
///
/// Returns `(new_buffer, driver_cell)` pairs.
pub fn insert_buffers(
    netlist: &mut Netlist,
    positions: &mut Vec<Point>,
    max_fanout: usize,
) -> Vec<(CellId, CellId)> {
    let max_fanout = max_fanout.max(2);
    let mut inserted = Vec::new();
    let net_ids: Vec<NetId> = netlist.net_ids().collect();
    for net_id in net_ids {
        let net = netlist.net(net_id);
        if net.is_clock || net.fanout() <= max_fanout {
            continue;
        }
        let Some(driver) = net.driver else { continue };
        let sinks = net.sinks.clone();
        // Group sinks beyond the first `max_fanout` into buffered chunks.
        let (keep, spill) = sinks.split_at(max_fanout.min(sinks.len()));
        if spill.is_empty() {
            continue;
        }
        // Rebuild the net's sink list with only the kept sinks.
        {
            let net_mut = netlist.net_mut(net_id);
            net_mut.sinks = keep.to_vec();
        }
        for (gi, group) in spill.chunks(max_fanout).enumerate() {
            let buf = netlist.add_gate(
                format!("fobuf_{}_{}", net_id.index(), gi),
                CellKind::Buf,
                Drive::X4,
                0,
            );
            // Buffer input from the original net.
            netlist.connect(net_id, buf, 0);
            let new_net = netlist.add_net(format!("fonet_{}_{}", net_id.index(), gi), buf, 0);
            // Re-point the group's sinks at the new net (their input slots
            // still reference net_id; patch them).
            for pin in group {
                let cell = netlist.cell_mut(pin.cell);
                cell.inputs[pin.pin as usize] = Some(new_net);
                netlist.net_mut(new_net).sinks.push(*pin);
            }
            // Position: centroid of the group's sinks.
            let centroid = group
                .iter()
                .fold(Point::ORIGIN, |acc, p| acc + positions[p.cell.index()])
                / group.len() as f64;
            positions.push(centroid);
            inserted.push((buf, driver.cell));
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_sta::{analyze, ClockSpec, Parasitics, TimingContext};
    use m3d_tech::{Library, Tier, TierStack};

    fn evaluate(netlist: &Netlist, period: f64) -> StaResult {
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(netlist);
        analyze(&TimingContext {
            netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(period),
        })
    }

    #[test]
    fn upsizing_improves_wns_on_tight_budget() {
        // Use a macro-free design (macro access delay is unfixable by
        // sizing) and set the period for a mild ~12 % violation.
        let mut n = m3d_netgen::Benchmark::Netcard.generate(0.015, 13);
        let loose = evaluate(&n, 10.0);
        let period = (10.0 - loose.wns) * 0.88;
        let before = evaluate(&n, period);
        assert!(before.wns < 0.0, "want a violating start: {}", before.wns);
        let outcome = resize_for_timing(&mut n, 0.0, 4, |nl| evaluate(nl, period));
        assert!(
            outcome.final_wns > outcome.initial_wns,
            "{} -> {}",
            outcome.initial_wns,
            outcome.final_wns
        );
        assert!(outcome.cells_changed > 0);
    }

    #[test]
    fn downsizing_preserves_timing() {
        let mut n = m3d_netgen::Benchmark::Aes.generate(0.02, 13);
        let period = 2.0; // loose
        let before = evaluate(&n, period);
        assert!(before.wns > 0.0);
        let outcome = resize_for_power(&mut n, 0.3, 3, |nl| evaluate(nl, period));
        let after = evaluate(&n, period);
        assert!(
            after.wns >= before.wns - 0.01,
            "wns {} -> {}",
            before.wns,
            after.wns
        );
        // With X1 default drives nothing can shrink; the call must still
        // be safe and report zero changes.
        assert!(outcome.cells_changed == 0 || outcome.final_wns >= -0.01);
    }

    #[test]
    fn downsizing_reduces_oversized_design() {
        let mut n = m3d_netgen::Benchmark::Aes.generate(0.02, 13);
        // Blanket-upsize everything first.
        let gates: Vec<CellId> = n
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();
        for id in &gates {
            n.set_drive(*id, Drive::X8);
        }
        let outcome = resize_for_power(&mut n, 0.2, 5, |nl| evaluate(nl, 2.0));
        assert!(outcome.cells_changed > gates.len() / 2);
    }

    #[test]
    fn edit_stream_replays_to_identical_drives() {
        // The edit lists handed to an edit-aware evaluator must be a
        // complete journal: replaying them onto an untouched clone of the
        // input yields the optimized netlist, including rollback flushes.
        let mut n = m3d_netgen::Benchmark::Netcard.generate(0.015, 13);
        let loose = evaluate(&n, 10.0);
        let period = (10.0 - loose.wns) * 0.88;
        let mut replica = n.clone();
        let mut calls = 0usize;
        let outcome = resize_for_timing_with(&mut n, 0.0, 4, |nl, edits| {
            calls += 1;
            for &(id, from, to) in edits {
                assert_eq!(replica.cell(id).class.gate_drive(), Some(from));
                replica.set_drive(id, to);
            }
            evaluate(nl, period)
        });
        assert!(calls >= 1);
        assert!(outcome.cells_changed > 0);
        for (id, cell) in n.cells() {
            assert_eq!(
                cell.class.gate_drive(),
                replica.cell(id).class.gate_drive(),
                "cell {id:?} diverged"
            );
        }
    }

    #[test]
    fn buffer_insertion_caps_fanout() {
        let mut n = m3d_netgen::Benchmark::Ldpc.generate(0.02, 13);
        let before_max = n.stats().max_fanout;
        assert!(
            before_max > 16,
            "LDPC should have high fanout: {before_max}"
        );
        let mut positions = vec![Point::ORIGIN; n.cell_count()];
        let inserted = insert_buffers(&mut n, &mut positions, 16);
        assert!(!inserted.is_empty());
        assert_eq!(positions.len(), n.cell_count());
        n.validate().expect("still valid after buffering");
        // All original nets now obey the cap; buffer nets may cascade but
        // each individual net obeys it too.
        for (_, net) in n.nets() {
            if !net.is_clock {
                assert!(
                    net.fanout() <= 16 + 1,
                    "net {} fanout {}",
                    net.name,
                    net.fanout()
                );
            }
        }
    }

    #[test]
    fn buffer_insertion_is_noop_below_cap() {
        let mut n = m3d_netgen::Benchmark::Aes.generate(0.01, 13);
        let mut positions = vec![Point::ORIGIN; n.cell_count()];
        let cells_before = n.cell_count();
        let inserted = insert_buffers(&mut n, &mut positions, 10_000);
        assert!(inserted.is_empty());
        assert_eq!(n.cell_count(), cells_before);
    }
}
