//! Unified copy-on-write design database.
//!
//! Real EDA stacks (OpenDB, OpenAccess) center the flow on one evolving
//! design database with change notification; this crate is that center for
//! the hetero-3-D flow. A [`DesignDb`] owns every design artifact — the
//! netlist, technology binding, tier assignment, floorplan, placements,
//! routing, clock tree, parasitics and sign-off results — behind
//! `Arc`-based copy-on-write snapshots:
//!
//! * **Forking is O(1).** [`DesignDb::fork`] clones only the `Arc` handles.
//!   Configuration sweeps (`compare_configs`, the fmax ladder) fork one
//!   shared prefix snapshot per branch instead of recomputing it; a branch
//!   that mutates an artifact pays for the copy at first write
//!   (`Arc::make_mut`), and only for that artifact.
//! * **The change journal is the single source of truth for "what
//!   changed".** Every mutation goes through a journaling method and
//!   appends a typed [`DesignEdit`] record. Downstream consumers read the
//!   journal instead of diffing state: the incremental STA `Timer` takes
//!   [`Journal::timing_edits`] directly (skipping its O(cells + nets)
//!   signature scans), and the flow's observability layer counts journal
//!   traffic per pipeline stage.
//! * **Fine-grained edits replay.** Edits that carry `from`/`to` values
//!   ([`DesignEdit::is_fine_grained`]) can be re-applied to a fork via
//!   [`DesignDb::replay`], reproducing the journaled state bit for bit —
//!   the foundation for checkpoint/restore and (per the roadmap) design
//!   sharding.

use m3d_cts::ClockTree;
use m3d_geom::Point;
use m3d_netlist::{CellId, NetId, Netlist};
use m3d_place::{Floorplan, Placement};
use m3d_power::PowerResult;
use m3d_route::RoutingResult;
use m3d_sta::{NetModel, Parasitics, StaResult, TimingEdit};
use m3d_tech::{Drive, TechContext, Tier, TierStack};
use std::fmt;
use std::sync::Arc;

/// Content-based fingerprint of a netlist: FNV-1a over the design name,
/// the full cell list (class, gate kind/drive, block tag, pin-to-net
/// bindings) and the full net list (driver, sinks, clock flag). Two
/// netlists with equal fingerprints describe the same circuit, which is
/// what makes the value safe as a cache key — unlike
/// [`DesignDb::state_fingerprint`], which tracks the *mutable* flow
/// state (placement, parasitics, period) of one database.
#[must_use]
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn eat_into(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in netlist.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    let mut eat = |v: u64| eat_into(&mut h, v);
    eat(netlist.cell_count() as u64);
    eat(netlist.net_count() as u64);
    for (_, cell) in netlist.cells() {
        match &cell.class {
            m3d_netlist::CellClass::Gate { kind, drive } => {
                eat(1);
                eat(*kind as u64);
                eat(*drive as u64);
            }
            m3d_netlist::CellClass::Macro(spec) => {
                eat(2);
                eat(spec.area_um2().to_bits());
            }
            m3d_netlist::CellClass::PrimaryInput => eat(3),
            m3d_netlist::CellClass::PrimaryOutput => eat(4),
        }
        eat(u64::from(cell.block));
        for net in cell.inputs.iter().chain(cell.outputs.iter()) {
            eat(net.map_or(u64::MAX, |n| n.index() as u64));
        }
    }
    for (_, net) in netlist.nets() {
        eat(net.driver.map_or(u64::MAX, |p| p.cell.index() as u64));
        eat(net.sinks.len() as u64);
        for s in &net.sinks {
            eat(s.cell.index() as u64);
            eat(u64::from(s.pin));
        }
        eat(u64::from(net.is_clock));
    }
    h
}

/// Renders a fingerprint in the canonical 16-hex-digit form used by
/// manifest labels and cache keys.
#[must_use]
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// One typed change record. Fine-grained variants carry both the old and
/// the new value, so a journal can be replayed onto a fork of the
/// pre-edit snapshot; coarse `Replace*` variants record that a whole
/// artifact was swapped by a stage (floorplanning, routing, CTS, ...)
/// without copying it into the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignEdit {
    /// A gate's drive strength changed (cell sizing).
    ResizeCell {
        /// The resized gate.
        cell: CellId,
        /// Drive before the edit.
        from: Drive,
        /// Drive after the edit.
        to: Drive,
    },
    /// A cell moved to the other tier (partitioning ECO).
    SwapTier {
        /// The moved cell.
        cell: CellId,
        /// Tier before the edit.
        from: Tier,
        /// Tier after the edit.
        to: Tier,
    },
    /// A cell's placement location changed.
    MoveCell {
        /// The moved cell.
        cell: CellId,
        /// Location before the edit.
        from: Point,
        /// Location after the edit.
        to: Point,
    },
    /// One net's RC model changed.
    SetNetModel {
        /// The re-extracted net.
        net: NetId,
        /// Model before the edit.
        from: NetModel,
        /// Model after the edit.
        to: NetModel,
    },
    /// The clock period changed (fmax ladder rungs).
    SetPeriod {
        /// Period before, ns.
        from: f64,
        /// Period after, ns.
        to: f64,
    },
    /// The netlist was structurally rebuilt (buffer insertion, ...).
    ReplaceNetlist {
        /// Cell count after the replacement.
        cells: usize,
        /// Net count after the replacement.
        nets: usize,
    },
    /// The whole tier assignment was replaced (min-cut partitioning).
    ReplaceTiers,
    /// The floorplan was replaced.
    ReplaceFloorplan,
    /// The legalized placement was replaced.
    ReplacePlacement,
    /// The global (pre-legalization) placement was replaced.
    ReplaceGlobalPlacement,
    /// The routing result was replaced.
    ReplaceRouting,
    /// The clock tree was replaced.
    ReplaceClockTree,
    /// The parasitics were replaced (full re-extraction).
    ReplaceParasitics,
    /// The sign-off timing result was replaced.
    ReplaceSta,
    /// The sign-off power result was replaced.
    ReplacePower,
}

impl DesignEdit {
    /// `true` when the edit carries `from`/`to` values and can be
    /// replayed onto a fork of the pre-edit snapshot.
    #[must_use]
    pub fn is_fine_grained(&self) -> bool {
        matches!(
            self,
            DesignEdit::ResizeCell { .. }
                | DesignEdit::SwapTier { .. }
                | DesignEdit::MoveCell { .. }
                | DesignEdit::SetNetModel { .. }
                | DesignEdit::SetPeriod { .. }
        )
    }

    /// The timing-engine notification this edit maps to, if it affects
    /// timing at all. Coarse artifact replacements map to
    /// [`TimingEdit::Structural`] (conservative: full rebuild) when the
    /// replaced artifact feeds timing; placement/result replacements map
    /// to `None`.
    #[must_use]
    pub fn timing_edit(&self) -> Option<TimingEdit> {
        match self {
            DesignEdit::ResizeCell { cell, .. } => Some(TimingEdit::ResizeCell(*cell)),
            DesignEdit::SwapTier { cell, .. } => Some(TimingEdit::SwapTier(*cell)),
            DesignEdit::SetNetModel { net, .. } => Some(TimingEdit::NetModel(*net)),
            DesignEdit::SetPeriod { .. } => Some(TimingEdit::Period),
            DesignEdit::ReplaceNetlist { .. }
            | DesignEdit::ReplaceTiers
            | DesignEdit::ReplaceParasitics
            | DesignEdit::ReplaceClockTree => Some(TimingEdit::Structural),
            _ => None,
        }
    }
}

/// An append-only sequence of [`DesignEdit`] records — what one pipeline
/// stage (or one optimization loop) did to a [`DesignDb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    edits: Vec<DesignEdit>,
}

impl Journal {
    /// Number of recorded edits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// The recorded edits, in application order.
    #[must_use]
    pub fn edits(&self) -> &[DesignEdit] {
        &self.edits
    }

    /// Appends one record.
    pub fn push(&mut self, edit: DesignEdit) {
        self.edits.push(edit);
    }

    /// `true` when every record is fine-grained (replayable).
    #[must_use]
    pub fn is_replayable(&self) -> bool {
        self.edits.iter().all(DesignEdit::is_fine_grained)
    }

    /// The timing-engine view of the journal: one notification per edit
    /// that affects timing, in journal order. Feed this to
    /// `Timer::update_journaled` to skip the engine's signature diffing.
    #[must_use]
    pub fn timing_edits(&self) -> Vec<TimingEdit> {
        self.edits
            .iter()
            .filter_map(DesignEdit::timing_edit)
            .collect()
    }
}

/// Error from [`DesignDb::replay`]: the journal contained a coarse
/// artifact replacement, which carries no payload to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// The offending record.
    pub edit: DesignEdit,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal is not replayable: {:?} has no payload",
            self.edit
        )
    }
}

impl std::error::Error for ReplayError {}

/// The unified design database: every artifact of one implementation in
/// flight, behind copy-on-write `Arc` snapshots, with a change journal.
///
/// Structural artifacts produced by later stages (floorplan, placement,
/// routing, ...) are `Option` — a freshly constructed db holds only the
/// netlist, technology and an all-bottom tier assignment.
#[derive(Debug, Clone)]
pub struct DesignDb {
    netlist: Arc<Netlist>,
    stack: Arc<TierStack>,
    tiers: Arc<Vec<Tier>>,
    period_ns: f64,
    tech: TechContext,
    floorplan: Option<Arc<Floorplan>>,
    placement: Option<Arc<Placement>>,
    global_placement: Option<Arc<Placement>>,
    routing: Option<Arc<RoutingResult>>,
    clock_tree: Option<Arc<ClockTree>>,
    parasitics: Option<Arc<Parasitics>>,
    sta: Option<Arc<StaResult>>,
    power: Option<Arc<PowerResult>>,
    journal: Journal,
}

impl DesignDb {
    /// A fresh database: the given netlist and technology, every cell on
    /// the bottom tier, no derived artifacts, an empty journal.
    #[must_use]
    pub fn new(netlist: Netlist, stack: TierStack, period_ns: f64) -> Self {
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        DesignDb {
            netlist: Arc::new(netlist),
            stack: Arc::new(stack),
            tiers: Arc::new(tiers),
            period_ns,
            tech: TechContext::default(),
            floorplan: None,
            placement: None,
            global_placement: None,
            routing: None,
            clock_tree: None,
            parasitics: None,
            sta: None,
            power: None,
            journal: Journal::default(),
        }
    }

    /// [`DesignDb::new`] over an already-shared netlist: the handle is
    /// reused as-is, so forking many databases off one buffered netlist
    /// (the five-configuration study) never copies it.
    #[must_use]
    pub fn from_shared(netlist: Arc<Netlist>, stack: TierStack, period_ns: f64) -> Self {
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        DesignDb {
            netlist,
            stack: Arc::new(stack),
            tiers: Arc::new(tiers),
            period_ns,
            tech: TechContext::default(),
            floorplan: None,
            placement: None,
            global_placement: None,
            routing: None,
            clock_tree: None,
            parasitics: None,
            sta: None,
            power: None,
            journal: Journal::default(),
        }
    }

    /// Tags the database with the technology scenario it is being
    /// implemented under (builder style; the default is monolithic
    /// stacking at the typical corner). The scenario rides along
    /// through [`DesignDb::fork`] so checkpoints stay distinguishable.
    #[must_use]
    pub fn with_tech(mut self, tech: TechContext) -> Self {
        self.tech = tech;
        self
    }

    /// The technology scenario this database is implemented under.
    #[must_use]
    pub fn tech(&self) -> TechContext {
        self.tech
    }

    /// An O(1) copy-on-write snapshot: shares every artifact with `self`,
    /// starts with an empty journal. Mutations on either side copy only
    /// the artifact they touch.
    #[must_use]
    pub fn fork(&self) -> DesignDb {
        DesignDb {
            journal: Journal::default(),
            ..self.clone()
        }
    }

    // ---- read access ----------------------------------------------------

    /// The netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Shared handle to the netlist.
    #[must_use]
    pub fn netlist_arc(&self) -> Arc<Netlist> {
        Arc::clone(&self.netlist)
    }

    /// The technology stack.
    #[must_use]
    pub fn stack(&self) -> &TierStack {
        &self.stack
    }

    /// Shared handle to the technology stack.
    #[must_use]
    pub fn stack_arc(&self) -> Arc<TierStack> {
        Arc::clone(&self.stack)
    }

    /// Tier of every cell.
    #[must_use]
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Shared handle to the tier assignment.
    #[must_use]
    pub fn tiers_arc(&self) -> Arc<Vec<Tier>> {
        Arc::clone(&self.tiers)
    }

    /// Target clock period, ns.
    #[must_use]
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// The floorplan, once a floorplanning stage ran.
    #[must_use]
    pub fn floorplan(&self) -> Option<&Floorplan> {
        self.floorplan.as_deref()
    }

    /// Shared handle to the floorplan.
    #[must_use]
    pub fn floorplan_arc(&self) -> Option<Arc<Floorplan>> {
        self.floorplan.clone()
    }

    /// The legalized placement.
    #[must_use]
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_deref()
    }

    /// Shared handle to the legalized placement.
    #[must_use]
    pub fn placement_arc(&self) -> Option<Arc<Placement>> {
        self.placement.clone()
    }

    /// The pre-legalization (global) placement.
    #[must_use]
    pub fn global_placement(&self) -> Option<&Placement> {
        self.global_placement.as_deref()
    }

    /// Shared handle to the global placement.
    #[must_use]
    pub fn global_placement_arc(&self) -> Option<Arc<Placement>> {
        self.global_placement.clone()
    }

    /// The routing result.
    #[must_use]
    pub fn routing(&self) -> Option<&RoutingResult> {
        self.routing.as_deref()
    }

    /// Shared handle to the routing result.
    #[must_use]
    pub fn routing_arc(&self) -> Option<Arc<RoutingResult>> {
        self.routing.clone()
    }

    /// The synthesized clock tree.
    #[must_use]
    pub fn clock_tree(&self) -> Option<&ClockTree> {
        self.clock_tree.as_deref()
    }

    /// Shared handle to the clock tree.
    #[must_use]
    pub fn clock_tree_arc(&self) -> Option<Arc<ClockTree>> {
        self.clock_tree.clone()
    }

    /// The extracted parasitics.
    #[must_use]
    pub fn parasitics(&self) -> Option<&Parasitics> {
        self.parasitics.as_deref()
    }

    /// Shared handle to the parasitics.
    #[must_use]
    pub fn parasitics_arc(&self) -> Option<Arc<Parasitics>> {
        self.parasitics.clone()
    }

    /// The sign-off timing result.
    #[must_use]
    pub fn sta(&self) -> Option<&StaResult> {
        self.sta.as_deref()
    }

    /// Shared handle to the sign-off timing result.
    #[must_use]
    pub fn sta_arc(&self) -> Option<Arc<StaResult>> {
        self.sta.clone()
    }

    /// The sign-off power result.
    #[must_use]
    pub fn power(&self) -> Option<&PowerResult> {
        self.power.as_deref()
    }

    /// Shared handle to the power result.
    #[must_use]
    pub fn power_arc(&self) -> Option<Arc<PowerResult>> {
        self.power.clone()
    }

    // ---- journal --------------------------------------------------------

    /// The journal accumulated since construction, the last fork, or the
    /// last [`DesignDb::take_journal`].
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Drains the journal, leaving it empty — how the pipeline driver
    /// collects per-stage journals.
    pub fn take_journal(&mut self) -> Journal {
        std::mem::take(&mut self.journal)
    }

    // ---- fine-grained journaling mutators -------------------------------

    /// Sets a gate's drive strength, journaling the change. No-op (and no
    /// journal record) when the drive is already `to` or the cell is not
    /// a gate.
    pub fn set_drive(&mut self, cell: CellId, to: Drive) {
        let Some(from) = self.netlist.cell(cell).class.gate_drive() else {
            return;
        };
        if from == to {
            return;
        }
        Arc::make_mut(&mut self.netlist).set_drive(cell, to);
        self.journal.push(DesignEdit::ResizeCell { cell, from, to });
    }

    /// Moves a cell to `to`'s tier, journaling the change. No-op when
    /// already there.
    pub fn set_tier(&mut self, cell: CellId, to: Tier) {
        let from = self.tiers[cell.index()];
        if from == to {
            return;
        }
        Arc::make_mut(&mut self.tiers)[cell.index()] = to;
        self.journal.push(DesignEdit::SwapTier { cell, from, to });
    }

    /// Moves a cell in the legalized placement, journaling the change.
    ///
    /// # Panics
    ///
    /// Panics when no placement exists yet.
    pub fn move_cell(&mut self, cell: CellId, to: Point) {
        let placement = self
            .placement
            .as_mut()
            .expect("move_cell requires a placement");
        let from = placement.positions[cell.index()];
        if from == to {
            return;
        }
        Arc::make_mut(placement).positions[cell.index()] = to;
        self.journal.push(DesignEdit::MoveCell { cell, from, to });
    }

    /// Re-models one net's RC, journaling the change.
    ///
    /// # Panics
    ///
    /// Panics when no parasitics exist yet.
    pub fn set_net_model(&mut self, net: NetId, to: NetModel) {
        let parasitics = self
            .parasitics
            .as_mut()
            .expect("set_net_model requires parasitics");
        let from = parasitics.net(net);
        if from == to {
            return;
        }
        *Arc::make_mut(parasitics).net_mut(net) = to;
        self.journal.push(DesignEdit::SetNetModel { net, from, to });
    }

    /// Changes the clock period, journaling the change.
    pub fn set_period(&mut self, to: f64) {
        let from = self.period_ns;
        if from == to {
            return;
        }
        self.period_ns = to;
        self.journal.push(DesignEdit::SetPeriod { from, to });
    }

    // ---- scoped mutable access ------------------------------------------

    /// Runs `f` with mutable access to the netlist **and** the journal, so
    /// optimization loops can batch-edit in place while recording what
    /// they did. The closure is responsible for journaling its own edits
    /// (the flow's sizing loops push one [`DesignEdit::ResizeCell`] per
    /// applied or rolled-back drive change).
    pub fn with_netlist_mut<R>(&mut self, f: impl FnOnce(&mut Netlist, &mut Journal) -> R) -> R {
        f(Arc::make_mut(&mut self.netlist), &mut self.journal)
    }

    /// Runs `f` with mutable access to the tier assignment and the
    /// journal (the repartitioning ECO's batch interface).
    pub fn with_tiers_mut<R>(&mut self, f: impl FnOnce(&mut [Tier], &mut Journal) -> R) -> R {
        let tiers: &mut Vec<Tier> = Arc::make_mut(&mut self.tiers);
        f(tiers, &mut self.journal)
    }

    // ---- coarse artifact replacement ------------------------------------

    /// Replaces the netlist wholesale (structural rebuild).
    pub fn replace_netlist(&mut self, netlist: Netlist) {
        self.journal.push(DesignEdit::ReplaceNetlist {
            cells: netlist.cell_count(),
            nets: netlist.net_count(),
        });
        self.netlist = Arc::new(netlist);
    }

    /// Replaces the whole tier assignment (min-cut partitioning).
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is not sized to the netlist.
    pub fn set_tiers(&mut self, tiers: Vec<Tier>) {
        assert_eq!(
            tiers.len(),
            self.netlist.cell_count(),
            "tier assignment must cover every cell"
        );
        self.tiers = Arc::new(tiers);
        self.journal.push(DesignEdit::ReplaceTiers);
    }

    /// Installs a floorplan.
    pub fn set_floorplan(&mut self, fp: Floorplan) {
        self.floorplan = Some(Arc::new(fp));
        self.journal.push(DesignEdit::ReplaceFloorplan);
    }

    /// Installs a legalized placement.
    pub fn set_placement(&mut self, placement: Placement) {
        self.placement = Some(Arc::new(placement));
        self.journal.push(DesignEdit::ReplacePlacement);
    }

    /// Installs a global (pre-legalization) placement.
    pub fn set_global_placement(&mut self, placement: Placement) {
        self.global_placement = Some(Arc::new(placement));
        self.journal.push(DesignEdit::ReplaceGlobalPlacement);
    }

    /// Installs a shared global-placement handle (checkpoint reuse: the
    /// pseudo-3-D seed placement is shared, not copied, across forks).
    pub fn set_global_placement_arc(&mut self, placement: Arc<Placement>) {
        self.global_placement = Some(placement);
        self.journal.push(DesignEdit::ReplaceGlobalPlacement);
    }

    /// Installs a routing result.
    pub fn set_routing(&mut self, routing: RoutingResult) {
        self.routing = Some(Arc::new(routing));
        self.journal.push(DesignEdit::ReplaceRouting);
    }

    /// Installs a clock tree.
    pub fn set_clock_tree(&mut self, tree: ClockTree) {
        self.clock_tree = Some(Arc::new(tree));
        self.journal.push(DesignEdit::ReplaceClockTree);
    }

    /// Installs extracted parasitics.
    pub fn set_parasitics(&mut self, parasitics: Parasitics) {
        self.parasitics = Some(Arc::new(parasitics));
        self.journal.push(DesignEdit::ReplaceParasitics);
    }

    /// Installs shared parasitics (checkpoint reuse).
    pub fn set_parasitics_arc(&mut self, parasitics: Arc<Parasitics>) {
        self.parasitics = Some(parasitics);
        self.journal.push(DesignEdit::ReplaceParasitics);
    }

    /// Installs a sign-off timing result.
    pub fn set_sta(&mut self, sta: StaResult) {
        self.sta = Some(Arc::new(sta));
        self.journal.push(DesignEdit::ReplaceSta);
    }

    /// Installs a sign-off power result.
    pub fn set_power(&mut self, power: PowerResult) {
        self.power = Some(Arc::new(power));
        self.journal.push(DesignEdit::ReplacePower);
    }

    // ---- replay & identity ----------------------------------------------

    /// Re-applies a fine-grained journal (the `to` values) to this
    /// database, journaling as it goes. Applied to a fork of the snapshot
    /// the journal was recorded against, this reproduces the journaled
    /// state bit for bit ([`DesignDb::state_fingerprint`] agrees).
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError`] on the first coarse (non-replayable) record;
    /// edits before it have been applied.
    pub fn replay(&mut self, journal: &Journal) -> Result<(), ReplayError> {
        for edit in journal.edits() {
            match *edit {
                DesignEdit::ResizeCell { cell, to, .. } => self.set_drive(cell, to),
                DesignEdit::SwapTier { cell, to, .. } => self.set_tier(cell, to),
                DesignEdit::MoveCell { cell, to, .. } => self.move_cell(cell, to),
                DesignEdit::SetNetModel { net, to, .. } => self.set_net_model(net, to),
                DesignEdit::SetPeriod { to, .. } => self.set_period(to),
                ref coarse => {
                    return Err(ReplayError {
                        edit: coarse.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Exact fingerprint of the mutable design state: FNV-1a over the
    /// gate drives, tier assignment, placement position bits, net-model
    /// bits and the period bits. Two databases with equal fingerprints
    /// hold bit-identical journaled state.
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        const FNV: u64 = 0x0000_0100_0000_01B3;
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |v: u64| {
            h = (h ^ v).wrapping_mul(FNV);
        };
        eat(self.netlist.cell_count() as u64);
        eat(self.netlist.net_count() as u64);
        for (_, cell) in self.netlist.cells() {
            eat(cell.class.gate_drive().map_or(u64::MAX, |d| d as u64));
        }
        for &t in self.tiers.iter() {
            eat(t as u64);
        }
        eat(self.period_ns.to_bits());
        if let Some(p) = &self.placement {
            for q in &p.positions {
                eat(q.x.to_bits());
                eat(q.y.to_bits());
            }
        }
        if let Some(par) = &self.parasitics {
            for k in 0..self.netlist.net_count() {
                let m = par.net(NetId::from_index(k));
                eat(m.wire_cap_ff.to_bits());
                eat(m.wire_delay_ns.to_bits());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netgen::Benchmark;
    use m3d_tech::Library;

    fn small_db() -> DesignDb {
        let netlist = Benchmark::Aes.generate(0.01, 3);
        let parasitics = Parasitics::zero_wire(&netlist);
        let mut db = DesignDb::new(netlist, TierStack::heterogeneous(), 1.0);
        db.set_parasitics(parasitics);
        let _ = db.take_journal();
        db
    }

    #[test]
    fn tech_scenario_defaults_and_survives_forks() {
        let db = small_db();
        assert!(db.tech().is_default());
        let scenario = TechContext {
            stacking: m3d_tech::StackingStyle::F2fHybridBond,
            corners: m3d_tech::CornerSet::Worst,
        };
        let tagged = db.fork().with_tech(scenario);
        assert_eq!(tagged.tech(), scenario);
        assert_eq!(tagged.fork().tech(), scenario);
        // The original is untouched.
        assert!(db.tech().is_default());
    }

    fn first_gate(db: &DesignDb) -> CellId {
        db.netlist()
            .cells()
            .find(|(_, c)| c.class.is_gate())
            .map(|(id, _)| id)
            .expect("benchmark has gates")
    }

    #[test]
    fn netlist_fingerprint_is_content_based() {
        let a = Benchmark::Aes.generate(0.01, 3);
        let a_again = Benchmark::Aes.generate(0.01, 3);
        let other_seed = Benchmark::Aes.generate(0.01, 4);
        let other_scale = Benchmark::Aes.generate(0.02, 3);
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&a_again));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&other_seed));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&other_scale));
        // A single-drive resize must change the key: the cache would
        // otherwise serve stale checkpoints for an edited netlist.
        let mut edited = a.clone();
        let g = edited
            .cells()
            .find(|(_, c)| c.class.is_gate())
            .map(|(id, _)| id)
            .expect("gates");
        edited.set_drive(g, Drive::X16);
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&edited));
        assert_eq!(fingerprint_hex(netlist_fingerprint(&a)).len(), 16);
    }

    #[test]
    fn mutations_journal_and_cow() {
        let mut db = small_db();
        let fork = db.fork();
        let g = first_gate(&db);
        db.set_drive(g, Drive::X8);
        db.set_tier(g, Tier::Top);
        db.set_period(0.8);
        db.set_net_model(
            NetId::from_index(0),
            NetModel {
                wire_cap_ff: 3.0,
                wire_delay_ns: 0.01,
            },
        );
        assert_eq!(db.journal().len(), 4);
        assert!(db.journal().is_replayable());
        // The fork still sees the pre-edit state (copy-on-write).
        assert_ne!(
            fork.netlist().cell(g).class.gate_drive(),
            db.netlist().cell(g).class.gate_drive()
        );
        assert_eq!(fork.tiers()[g.index()], Tier::Bottom);
        assert_eq!(fork.period_ns(), 1.0);
        assert!(fork.journal().is_empty());
    }

    #[test]
    fn noop_mutations_do_not_journal() {
        let mut db = small_db();
        let g = first_gate(&db);
        let d = db.netlist().cell(g).class.gate_drive().expect("gate");
        db.set_drive(g, d);
        db.set_tier(g, Tier::Bottom);
        db.set_period(1.0);
        assert!(db.journal().is_empty());
    }

    #[test]
    fn replay_reproduces_state_bit_for_bit() {
        let mut db = small_db();
        let mut fork = db.fork();
        let g = first_gate(&db);
        db.set_drive(g, Drive::X8);
        db.set_tier(g, Tier::Top);
        db.set_period(0.77);
        let journal = db.take_journal();
        assert_ne!(db.state_fingerprint(), fork.state_fingerprint());
        fork.replay(&journal).expect("fine-grained journal");
        assert_eq!(db.state_fingerprint(), fork.state_fingerprint());
    }

    #[test]
    fn coarse_journals_do_not_replay() {
        let mut db = small_db();
        let tiers = db.tiers().to_vec();
        db.set_tiers(tiers);
        let journal = db.take_journal();
        assert!(!journal.is_replayable());
        let mut fork = db.fork();
        assert!(fork.replay(&journal).is_err());
    }

    #[test]
    fn timing_edits_map_the_flow_vocabulary() {
        let mut db = small_db();
        let g = first_gate(&db);
        db.set_drive(g, Drive::X8);
        db.set_period(0.9);
        db.set_tiers(vec![Tier::Bottom; db.netlist().cell_count()]);
        let edits = db.journal().timing_edits();
        assert_eq!(
            edits,
            vec![
                TimingEdit::ResizeCell(g),
                TimingEdit::Period,
                TimingEdit::Structural
            ]
        );
    }

    #[test]
    fn new_db_starts_on_bottom_tier() {
        let db = DesignDb::new(
            Benchmark::Aes.generate(0.01, 3),
            TierStack::two_d(Library::twelve_track()),
            1.0,
        );
        assert!(db.tiers().iter().all(|&t| t == Tier::Bottom));
        assert!(db.floorplan().is_none());
        assert!(db.journal().is_empty());
    }
}
