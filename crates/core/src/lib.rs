//! # hetero3d — heterogeneous monolithic 3-D IC design in Rust
//!
//! A from-scratch reproduction of *"Heterogeneous Monolithic 3-D IC
//! Designs: Challenges, EDA Solutions, and Power, Performance, Cost
//! Tradeoffs"* (Pentapati & Lim): an RTL-to-GDS-class physical design
//! flow that stacks a fast 12-track die and a small 9-track die of a
//! 28 nm-class technology, partitions gate-level netlists across them by
//! timing criticality, and evaluates power / performance / area / cost
//! against four homogeneous baselines.
//!
//! The facade re-exports every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `m3d-geom` | points, rects, bins, Steiner estimates |
//! | [`tech`] | `m3d-tech` | multi-track libraries, NLDM tables, BEOL |
//! | [`circuit`] | `m3d-circuit` | transistor-level FO-4 boundary sims |
//! | [`netlist`] | `m3d-netlist` | gate-level netlists + Verilog I/O |
//! | [`netgen`] | `m3d-netgen` | AES/LDPC/Netcard/CPU workload generators |
//! | [`sta`] | `m3d-sta` | static timing, cell criticality, paths |
//! | [`place`] | `m3d-place` | floorplan, global placement, legalization |
//! | [`route`] | `m3d-route` | 3-D global routing, RC extraction |
//! | [`cts`] | `m3d-cts` | 2-D/3-D clock tree synthesis |
//! | [`partition`] | `m3d-partition` | FM min-cut, timing partitioning, ECO |
//! | [`power`] | `m3d-power` | activity propagation, power roll-up |
//! | [`cost`] | `m3d-cost` | Table IV cost model, PDP, PPC |
//! | [`db`] | `m3d-db` | copy-on-write design database + change journal |
//! | [`opt`] | `m3d-opt` | sizing, buffering |
//! | [`par`] | `m3d-par` | deterministic parallel primitives |
//! | [`json`] | `m3d-json` | zero-dependency JSON reader/writer (wire format) |
//! | [`flow`] | `m3d-flow` | the five configurations + Hetero-Pin-3D flow |
//! | [`serve`] | `m3d-serve` | concurrent flow service + checkpoint cache |
//! | [`report`] | `m3d-report` | paper tables, Table VIII dives, SVG figures |
//!
//! # Quickstart
//!
//! The primary entry point is [`flow::FlowSession`]: bind a netlist to a
//! set of options once, then answer any number of run/fmax/compare
//! queries from the session's shared checkpoints.
//!
//! ```no_run
//! use hetero3d::flow::{Config, FlowOptions, FlowSession};
//! use hetero3d::netgen::Benchmark;
//!
//! // Generate an AES-class netlist and implement it heterogeneously.
//! let netlist = Benchmark::Aes.generate(0.1, 42);
//! let session = FlowSession::builder(&netlist)
//!     .options(FlowOptions::default())
//!     .build()?;
//! let imp = session.run(Config::Hetero3d, 1.2)?;
//! let ppac = imp.ppac(&hetero3d::cost::CostModel::default());
//! println!("power: {:.1} mW, PPC: {:.3}", ppac.total_power_mw, ppac.ppc);
//! # Ok::<(), hetero3d::flow::FlowError>(())
//! ```
//!
//! For serializable requests (and the `m3d-serve` daemon built on them)
//! see [`flow::FlowRequest`] / [`flow::FlowReport`] and the [`serve`]
//! module.

pub use m3d_circuit as circuit;
pub use m3d_cost as cost;
pub use m3d_cts as cts;
pub use m3d_db as db;
pub use m3d_flow as flow;
pub use m3d_geom as geom;
pub use m3d_json as json;
pub use m3d_netgen as netgen;
pub use m3d_netlist as netlist;
pub use m3d_obs as obs;
pub use m3d_opt as opt;
pub use m3d_par as par;
pub use m3d_partition as partition;
pub use m3d_place as place;
pub use m3d_power as power;
pub use m3d_report as report;
pub use m3d_route as route;
pub use m3d_serve as serve;
pub use m3d_sta as sta;
pub use m3d_tech as tech;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // A smoke test stitching several subsystems through the facade.
        let lib = crate::tech::Library::twelve_track();
        assert_eq!(lib.vdd, 0.90);
        let n = crate::netgen::Benchmark::Aes.generate(0.01, 1);
        assert!(n.validate().is_ok());
        let model = crate::cost::CostModel::default();
        assert!(model.die_cost(0.1, false) > 0.0);
    }
}
