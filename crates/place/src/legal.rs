use crate::floorplan::Floorplan;
use crate::placement::Placement;
use m3d_geom::Rect;
use m3d_netlist::{CellClass, Netlist};
use m3d_tech::{Tier, TierStack};

/// Tetris row legalization.
///
/// Cells of each tier are snapped onto that tier's rows (row height = the
/// tier library's cell height — 0.81 µm for 9-track, 1.08 µm for 12-track)
/// without overlaps, skipping macro keep-outs. Cells are processed in
/// left-to-right order and packed at per-row frontiers, choosing the row
/// that minimizes displacement — the classic Tetris heuristic.
///
/// Ports and macros are left untouched.
#[must_use]
pub fn legalize(
    netlist: &Netlist,
    placement: &Placement,
    fp: &Floorplan,
    stack: &TierStack,
    tiers: &[Tier],
) -> Placement {
    legalize_with_stats(netlist, placement, fp, stack, tiers).0
}

/// Displacement counters from one legalization run, surfaced for run
/// telemetry. Deterministic: legalization is a sequential sweep and the
/// sums fold in cell-index order.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LegalStats {
    /// Movable gates the sweep placed.
    pub moved_cells: u64,
    /// Sum of |legal − global| displacements, in µm.
    pub total_displacement_um: f64,
    /// Largest single-cell displacement, in µm.
    pub max_displacement_um: f64,
}

/// Why a legalization input cannot be processed. Each variant corresponds
/// to a malformed-input class that would previously surface as an index
/// panic or a silently wrong snap deep inside the row sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum LegalizeError {
    /// `tiers.len()` does not cover every netlist cell.
    TierCountMismatch { tiers: usize, cells: usize },
    /// `placement.positions.len()` does not cover every netlist cell.
    PositionCountMismatch { positions: usize, cells: usize },
    /// A movable gate sits at a NaN/infinite coordinate, which would poison
    /// the displacement sums and the row comparators.
    NonFinitePosition { cell: usize },
    /// The floorplan die has no positive area, so no row can be built.
    DegenerateDie { width_um: f64, height_um: f64 },
}

impl std::fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalizeError::TierCountMismatch { tiers, cells } => {
                write!(
                    f,
                    "tier assignment covers {tiers} cells, netlist has {cells}"
                )
            }
            LegalizeError::PositionCountMismatch { positions, cells } => {
                write!(f, "placement covers {positions} cells, netlist has {cells}")
            }
            LegalizeError::NonFinitePosition { cell } => {
                write!(f, "cell #{cell} has a non-finite position")
            }
            LegalizeError::DegenerateDie {
                width_um,
                height_um,
            } => {
                write!(f, "die outline {width_um}x{height_um} um has no area")
            }
        }
    }
}

impl std::error::Error for LegalizeError {}

/// [`legalize_with_stats`] with input validation: malformed inputs come
/// back as a [`LegalizeError`] instead of an index panic mid-sweep.
pub fn try_legalize_with_stats(
    netlist: &Netlist,
    placement: &Placement,
    fp: &Floorplan,
    stack: &TierStack,
    tiers: &[Tier],
) -> Result<(Placement, LegalStats), LegalizeError> {
    let cells = netlist.cell_count();
    if tiers.len() != cells {
        return Err(LegalizeError::TierCountMismatch {
            tiers: tiers.len(),
            cells,
        });
    }
    if placement.positions.len() != cells {
        return Err(LegalizeError::PositionCountMismatch {
            positions: placement.positions.len(),
            cells,
        });
    }
    for (id, c) in netlist.cells() {
        if c.fixed || !c.class.is_gate() {
            continue;
        }
        let p = placement.positions[id.index()];
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(LegalizeError::NonFinitePosition { cell: id.index() });
        }
    }
    if fp.die.width() <= 0.0 || fp.die.height() <= 0.0 {
        return Err(LegalizeError::DegenerateDie {
            width_um: fp.die.width(),
            height_um: fp.die.height(),
        });
    }
    Ok(legalize_with_stats(netlist, placement, fp, stack, tiers))
}

/// [`legalize`] plus the [`LegalStats`] counters of the run.
#[must_use]
pub fn legalize_with_stats(
    netlist: &Netlist,
    placement: &Placement,
    fp: &Floorplan,
    stack: &TierStack,
    tiers: &[Tier],
) -> (Placement, LegalStats) {
    let mut out = placement.clone();
    for tier in Tier::BOTH {
        legalize_tier(netlist, &mut out, fp, stack, tiers, tier);
        if !stack.is_3d() {
            break;
        }
    }
    let mut stats = LegalStats::default();
    for (id, c) in netlist.cells() {
        if c.fixed || !c.class.is_gate() {
            continue;
        }
        let i = id.index();
        let d = placement.positions[i].distance(out.positions[i]);
        stats.moved_cells += 1;
        stats.total_displacement_um += d;
        stats.max_displacement_um = stats.max_displacement_um.max(d);
    }
    (out, stats)
}

struct Row {
    y_center: f64,
    /// Sorted, disjoint free x-intervals (die minus keepouts minus already
    /// placed cells). Interval bookkeeping — rather than a single packing
    /// frontier — means a slot skipped for one cell stays available for a
    /// later one, so rows only reject a cell when they are genuinely full.
    free: Vec<(f64, f64)>,
}

/// Best slot for a cell of `width` wanting its center at `desired_x`:
/// `(interval index, left edge, x-displacement)`. Scans outward from the
/// interval containing `desired_x`; displacement grows monotonically with
/// distance on each side, so the first fitting interval per side is that
/// side's optimum.
fn best_slot(free: &[(f64, f64)], desired_x: f64, width: f64) -> Option<(usize, f64, f64)> {
    let p = free.partition_point(|&(s, _)| s <= desired_x);
    let mut best: Option<(usize, f64, f64)> = None;
    for i in (0..p).rev() {
        let (s, e) = free[i];
        if e - s >= width {
            let x = (desired_x - width * 0.5).clamp(s, e - width);
            best = Some((i, x, (x + width * 0.5 - desired_x).abs()));
            break;
        }
    }
    for (i, &(s, e)) in free.iter().enumerate().skip(p) {
        if e - s >= width {
            let x = (desired_x - width * 0.5).clamp(s, e - width);
            let dx = (x + width * 0.5 - desired_x).abs();
            if best.is_none_or(|(_, _, b)| dx < b) {
                best = Some((i, x, dx));
            }
            break;
        }
    }
    best
}

/// Carves `[x, x + width)` out of `row.free[slot]`, keeping the interval
/// list sorted and disjoint.
fn occupy(row: &mut Row, slot: usize, x: f64, width: f64) {
    let (s, e) = row.free[slot];
    let eps = 1e-9;
    row.free.remove(slot);
    let mut at = slot;
    if x - s > eps {
        row.free.insert(at, (s, x));
        at += 1;
    }
    if e - (x + width) > eps {
        row.free.insert(at, (x + width, e));
    }
}

fn legalize_tier(
    netlist: &Netlist,
    placement: &mut Placement,
    fp: &Floorplan,
    stack: &TierStack,
    tiers: &[Tier],
    tier: Tier,
) {
    let lib = stack.library(tier);
    let row_h = lib.cell_height_um;
    let die = fp.die;
    let n_rows = ((die.height() / row_h).floor() as usize).max(1);
    let keepouts = fp.keepouts(tier);

    let mut rows: Vec<Row> = (0..n_rows)
        .map(|r| {
            let y0 = die.lly() + r as f64 * row_h;
            let band = Rect::new(die.llx(), y0, die.urx(), y0 + row_h);
            let mut obstacles: Vec<(f64, f64)> = keepouts
                .iter()
                .filter(|k| k.intersects(&band))
                .map(|k| (k.llx(), k.urx()))
                .collect();
            obstacles.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut free = Vec::new();
            let mut x = die.llx();
            for &(ox0, ox1) in &obstacles {
                if ox0 > x {
                    free.push((x, ox0.min(die.urx())));
                }
                x = x.max(ox1);
            }
            if x < die.urx() {
                free.push((x, die.urx()));
            }
            Row {
                y_center: y0 + row_h * 0.5,
                free,
            }
        })
        .collect();

    // Movable gates on this tier, sorted by desired x.
    let mut cells: Vec<(usize, f64)> = netlist
        .cells()
        .filter(|(id, c)| !c.fixed && c.class.is_gate() && tiers[id.index()] == tier)
        .map(|(id, c)| {
            let w = match &c.class {
                CellClass::Gate { kind, drive } => {
                    lib.cell(*kind, *drive).map_or(0.3, |m| m.width_um)
                }
                _ => 0.3,
            };
            (id.index(), w)
        })
        .collect();
    cells.sort_by(|a, b| {
        placement.positions[a.0]
            .x
            .partial_cmp(&placement.positions[b.0].x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let search_span = 24usize;
    for (idx, width) in cells {
        let desired = placement.positions[idx];
        let ideal_row = (((desired.y - die.lly()) / row_h).floor() as isize)
            .clamp(0, n_rows as isize - 1) as usize;
        let lo = ideal_row.saturating_sub(search_span);
        let hi = (ideal_row + search_span).min(n_rows - 1);
        let mut best: Option<(usize, usize, f64, f64)> = None; // (row, slot, x, cost)
        let consider = |range: std::ops::Range<usize>,
                        best: &mut Option<(usize, usize, f64, f64)>| {
            for r in range {
                let row = &rows[r];
                let dy = (row.y_center - desired.y).abs();
                if let Some((slot, x, dx)) = best_slot(&row.free, desired.x, width) {
                    let cost = dx + dy;
                    if best.is_none_or(|(_, _, _, c)| cost < c) {
                        *best = Some((r, slot, x, cost));
                    }
                }
            }
        };
        consider(lo..hi + 1, &mut best);
        if best.is_none() {
            // Every nearby row is full; widen to the whole die.
            consider(0..n_rows, &mut best);
        }
        match best {
            Some((r, slot, x, _)) => {
                placement.positions[idx] = m3d_geom::Point::new(x + width * 0.5, rows[r].y_center);
                occupy(&mut rows[r], slot, x, width);
            }
            None => {
                // No free slot fits the cell anywhere: true capacity
                // exhaustion. Overlap minimally into the largest remaining
                // gap (a bounded local overlap beats a cell escaping the
                // die outline).
                let mut widest: Option<(f64, usize, usize)> = None;
                for (r, row) in rows.iter().enumerate() {
                    for (slot, &(s, e)) in row.free.iter().enumerate() {
                        let len = e - s;
                        if widest.is_none_or(|(best_len, _, _)| len > best_len) {
                            widest = Some((len, r, slot));
                        }
                    }
                }
                let (r, slot) = widest.map_or((ideal_row, usize::MAX), |(_, r, s)| (r, s));
                if slot == usize::MAX {
                    // Not even a gap left; pin to the die edge of the
                    // ideal row.
                    let x = (desired.x - width * 0.5).clamp(die.llx(), die.urx() - width);
                    placement.positions[idx] =
                        m3d_geom::Point::new(x + width * 0.5, rows[ideal_row].y_center);
                } else {
                    let (s, _) = rows[r].free[slot];
                    let x = s.min(die.urx() - width).max(die.llx());
                    placement.positions[idx] =
                        m3d_geom::Point::new(x + width * 0.5, rows[r].y_center);
                    rows[r].free.remove(slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{global_place, PlacerConfig};
    use m3d_tech::Library;

    fn legal_setup(
        bench: m3d_netgen::Benchmark,
        stack: TierStack,
        split: bool,
    ) -> (Netlist, Vec<Tier>, Floorplan, Placement) {
        let n = bench.generate(0.02, 4);
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        if split {
            for (i, t) in tiers.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *t = Tier::Top;
                }
            }
        }
        let fp = Floorplan::new(&n, &stack, &tiers, 0.65);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        let legal = legalize(&n, &p, &fp, &stack, &tiers);
        (n, tiers, fp, legal)
    }

    fn check_no_overlaps(
        n: &Netlist,
        tiers: &[Tier],
        stack: &TierStack,
        p: &Placement,
        tier: Tier,
    ) {
        let lib = stack.library(tier);
        let mut rects: Vec<Rect> = Vec::new();
        for (id, c) in n.cells() {
            if !c.class.is_gate() || c.fixed || tiers[id.index()] != tier {
                continue;
            }
            let (kind, drive) = (c.class.gate_kind().unwrap(), c.class.gate_drive().unwrap());
            let m = lib.cell(kind, drive).unwrap();
            let pos = p.positions[id.index()];
            rects.push(Rect::new(
                pos.x - m.width_um * 0.5 + 1e-6,
                pos.y - m.height_um * 0.5 + 1e-6,
                pos.x + m.width_um * 0.5 - 1e-6,
                pos.y + m.height_um * 0.5 - 1e-6,
            ));
        }
        // Sort by y then x; only same-row neighbors can overlap.
        rects.sort_by(|a, b| {
            (a.lly(), a.llx())
                .partial_cmp(&(b.lly(), b.llx()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for w in rects.windows(2) {
            assert!(
                !w[0].intersects(&w[1]),
                "overlap between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn two_d_legalization_is_overlap_free() {
        let stack = TierStack::two_d(Library::twelve_track());
        let (n, tiers, _fp, legal) = legal_setup(m3d_netgen::Benchmark::Aes, stack.clone(), false);
        check_no_overlaps(&n, &tiers, &stack, &legal, Tier::Bottom);
    }

    #[test]
    fn hetero_legalization_respects_both_row_heights() {
        let stack = TierStack::heterogeneous();
        let (n, tiers, fp, legal) = legal_setup(m3d_netgen::Benchmark::Aes, stack.clone(), true);
        check_no_overlaps(&n, &tiers, &stack, &legal, Tier::Bottom);
        check_no_overlaps(&n, &tiers, &stack, &legal, Tier::Top);
        // Row pitch check: every top-tier gate sits at a 9T row center.
        let row_h = stack.library(Tier::Top).cell_height_um;
        for (id, c) in n.cells() {
            if c.class.is_gate() && !c.fixed && tiers[id.index()] == Tier::Top {
                let y = legal.positions[id.index()].y - fp.die.lly();
                let frac = (y / row_h) - (y / row_h).floor();
                assert!(
                    (frac - 0.5).abs() < 1e-6,
                    "cell off-row at y={y}, frac {frac}"
                );
            }
        }
    }

    #[test]
    fn legalization_keeps_cells_out_of_macros() {
        let stack = TierStack::two_d(Library::twelve_track());
        let (n, tiers, fp, legal) = legal_setup(m3d_netgen::Benchmark::Cpu, stack.clone(), false);
        let keepouts = fp.keepouts(Tier::Bottom);
        assert!(!keepouts.is_empty());
        let lib = stack.library(Tier::Bottom);
        for (id, c) in n.cells() {
            if !c.class.is_gate() || c.fixed || tiers[id.index()] != Tier::Bottom {
                continue;
            }
            let (kind, drive) = (c.class.gate_kind().unwrap(), c.class.gate_drive().unwrap());
            let m = lib.cell(kind, drive).unwrap();
            let pos = legal.positions[id.index()];
            let r = Rect::new(
                pos.x - m.width_um * 0.5 + 1e-6,
                pos.y - m.height_um * 0.5 + 1e-6,
                pos.x + m.width_um * 0.5 - 1e-6,
                pos.y + m.height_um * 0.5 - 1e-6,
            );
            for k in &keepouts {
                assert!(!r.intersects(k), "cell {id:?} inside macro keepout");
            }
        }
    }

    fn try_setup() -> (Netlist, Vec<Tier>, Floorplan, Placement, TierStack) {
        let stack = TierStack::two_d(Library::twelve_track());
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 4);
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.65);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        (n, tiers, fp, p, stack)
    }

    #[test]
    fn try_legalize_rejects_short_tier_vector() {
        let (n, mut tiers, fp, p, stack) = try_setup();
        tiers.pop();
        let err = try_legalize_with_stats(&n, &p, &fp, &stack, &tiers).unwrap_err();
        assert_eq!(
            err,
            LegalizeError::TierCountMismatch {
                tiers: n.cell_count() - 1,
                cells: n.cell_count()
            }
        );
    }

    #[test]
    fn try_legalize_rejects_short_placement() {
        let (n, tiers, fp, mut p, stack) = try_setup();
        p.positions.truncate(3);
        let err = try_legalize_with_stats(&n, &p, &fp, &stack, &tiers).unwrap_err();
        assert_eq!(
            err,
            LegalizeError::PositionCountMismatch {
                positions: 3,
                cells: n.cell_count()
            }
        );
    }

    #[test]
    fn try_legalize_rejects_nan_coordinates() {
        let (n, tiers, fp, mut p, stack) = try_setup();
        let victim = n
            .cells()
            .find(|(_, c)| !c.fixed && c.class.is_gate())
            .map(|(id, _)| id.index())
            .expect("benchmark has movable gates");
        p.positions[victim] = m3d_geom::Point::new(f64::NAN, 1.0);
        let err = try_legalize_with_stats(&n, &p, &fp, &stack, &tiers).unwrap_err();
        assert_eq!(err, LegalizeError::NonFinitePosition { cell: victim });
    }

    #[test]
    fn try_legalize_rejects_degenerate_die() {
        let (n, tiers, mut fp, p, stack) = try_setup();
        fp.die = Rect::new(0.0, 0.0, 0.0, 0.0);
        let err = try_legalize_with_stats(&n, &p, &fp, &stack, &tiers).unwrap_err();
        assert!(matches!(err, LegalizeError::DegenerateDie { .. }), "{err}");
    }

    #[test]
    fn try_legalize_accepts_well_formed_input() {
        let (n, tiers, fp, p, stack) = try_setup();
        let (legal, stats) = try_legalize_with_stats(&n, &p, &fp, &stack, &tiers).unwrap();
        let (want, want_stats) = legalize_with_stats(&n, &p, &fp, &stack, &tiers);
        assert_eq!(legal.positions, want.positions);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn legalization_displacement_is_bounded() {
        let stack = TierStack::two_d(Library::twelve_track());
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 4);
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.65);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        let legal = legalize(&n, &p, &fp, &stack, &tiers);
        // Legalized wirelength should stay within ~2x of global HPWL.
        let before = p.hpwl(&n);
        let after = legal.hpwl(&n);
        assert!(
            after < 2.0 * before + 100.0,
            "legalization blew up wirelength: {before} -> {after}"
        );
    }
}
