//! Placement substrate: floorplanning, global placement and legalization.
//!
//! Implements the placement stages the Pin-3-D flow needs:
//!
//! * [`Floorplan`] — utilization-driven die sizing (per configuration: a
//!   2-D die, or the halved-footprint shared outline of a 3-D stack),
//!   macro placement and boundary I/O pads,
//! * [`global_place`] — connectivity-driven global placement: net-centroid
//!   relaxation interleaved with bin-density spreading (a SimPL/FastPlace-
//!   class heuristic, deterministic under a fixed seed),
//! * [`legalize`] — Tetris row legalization per tier, honoring each tier's
//!   row height (9-track rows are 25 % shorter than 12-track rows) and
//!   macro keep-outs,
//! * [`Placement`] — positions plus wirelength/overlap queries.
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_place::{global_place, legalize, Floorplan, PlacerConfig};
//! use m3d_tech::{Library, Tier, TierStack};
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let stack = TierStack::two_d(Library::twelve_track());
//! let tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let fp = Floorplan::new(&netlist, &stack, &tiers, 0.7);
//! let config = PlacerConfig::default();
//! let placed = global_place(&netlist, &fp, &config);
//! let legal = legalize(&netlist, &placed, &fp, &stack, &tiers);
//! assert!(legal.hpwl(&netlist) > 0.0);
//! ```

mod floorplan;
mod global;
mod legal;
mod placement;

pub use floorplan::Floorplan;
pub use global::{global_place, refine_place, PlacerConfig};
pub use legal::{
    legalize, legalize_with_stats, try_legalize_with_stats, LegalStats, LegalizeError,
};
pub use placement::Placement;
