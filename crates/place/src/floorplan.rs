use m3d_geom::{Point, Rect};
use m3d_netlist::{CellClass, CellId, Netlist};
use m3d_tech::{Tier, TierStack};

/// Die outline, macro placement and per-tier row geometry.
///
/// The floorplan implements the paper's area methodology: the die is sized
/// so that standard cells reach the target utilization. For a 3-D stack
/// the two tiers share the outline and the footprint is set by the more
/// occupied tier, which is how the heterogeneous design's total silicon
/// area drops by ~12.5 % (half the cells shrink by 25 %).
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die outline (shared by both tiers in 3-D).
    pub die: Rect,
    /// Standard-cell area per tier, µm².
    pub cell_area: [f64; 2],
    /// Macro outlines with their owning cell and tier (macros go to the
    /// fast/bottom tier in 3-D configurations).
    pub macros: Vec<(CellId, Tier, Rect)>,
    /// Target utilization used for sizing.
    pub utilization: f64,
}

impl Floorplan {
    /// Sizes a die for `netlist` under the given tier assignment.
    ///
    /// Standard-cell area per tier comes from each cell's library binding;
    /// macros are placed as fixed blocks along the left edge and their
    /// area is added to the bottom tier's demand.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    #[must_use]
    pub fn new(netlist: &Netlist, stack: &TierStack, tiers: &[Tier], utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0,1]"
        );
        let mut cell_area = [0.0_f64; 2];
        let mut macro_area = 0.0;
        let mut macro_cells: Vec<(CellId, f64, f64)> = Vec::new();
        for (id, cell) in netlist.cells() {
            match &cell.class {
                CellClass::Gate { kind, drive } => {
                    let tier = tiers[id.index()];
                    if let Some(m) = stack.library(tier).cell(*kind, *drive) {
                        cell_area[tier.index()] += m.area_um2;
                    }
                }
                CellClass::Macro(spec) => {
                    macro_area += spec.area_um2();
                    macro_cells.push((id, spec.width_um, spec.height_um));
                }
                _ => {}
            }
        }

        // Footprint: per the paper's methodology, the shared 3-D outline
        // is sized to maintain the target utilization *on average* across
        // tiers (the denser tier may exceed it) — this is what realizes
        // the heterogeneous 12.5 % silicon saving. 2-D dies use the single
        // tier's demand.
        // Macros occupy one tier only; in 3-D the logic displaced by a
        // macro simply lives on the other tier above it, so macro area
        // joins the shared budget instead of growing the outline — but the
        // outline must still be large enough for each individual tier
        // (macros + that tier's cells must fit on the bottom).
        let total = if stack.is_3d() {
            // Shared budget at the *target* utilization; each tier is
            // additionally allowed to run dense (up to MAX_TIER_UTIL, the
            // paper's hetero bottom tiers reach 82-88 %) before the
            // outline must grow.
            const MAX_TIER_UTIL: f64 = 0.92;
            let shared = ((cell_area[0] + cell_area[1]) / utilization + macro_area * 1.15) * 0.5;
            let bottom = cell_area[0] / MAX_TIER_UTIL + macro_area * 1.15;
            let top = cell_area[1] / MAX_TIER_UTIL;
            shared.max(bottom).max(top)
        } else {
            (cell_area[0] + cell_area[1]) / utilization + macro_area * 1.15
        };
        let side = total.sqrt().max(2.0);
        let die = Rect::new(0.0, 0.0, side, side);

        // Stack macros along the left edge, bottom-up.
        let mut macros = Vec::new();
        let mut y = 0.0;
        let mut x = 0.0;
        let mut col_w: f64 = 0.0;
        for (id, w, h) in macro_cells {
            if y + h > side {
                x += col_w;
                y = 0.0;
                col_w = 0.0;
            }
            let r = Rect::new(x, y, (x + w).min(side), (y + h).min(side));
            macros.push((id, Tier::Bottom, r));
            y += h;
            col_w = col_w.max(w);
        }

        Floorplan {
            die,
            cell_area,
            macros,
            utilization,
        }
    }

    /// Total silicon area: footprint per fabricated tier, µm².
    #[must_use]
    pub fn silicon_area_um2(&self, is_3d: bool) -> f64 {
        let per_tier = self.die.area();
        if is_3d {
            per_tier * 2.0
        } else {
            per_tier
        }
    }

    /// Standard-cell density of `tier` (cell area / placeable area).
    #[must_use]
    pub fn density(&self, tier: Tier) -> f64 {
        let blocked: f64 = self
            .macros
            .iter()
            .filter(|(_, t, _)| *t == tier)
            .map(|(_, _, r)| r.area())
            .sum();
        let placeable = (self.die.area() - blocked).max(1e-9);
        self.cell_area[tier.index()] / placeable
    }

    /// Average standard-cell density across occupied tiers.
    #[must_use]
    pub fn overall_density(&self, is_3d: bool) -> f64 {
        if is_3d {
            (self.density(Tier::Bottom) + self.density(Tier::Top)) * 0.5
        } else {
            self.density(Tier::Bottom)
        }
    }

    /// Chip width, µm.
    #[must_use]
    pub fn width_um(&self) -> f64 {
        self.die.width()
    }

    /// The fixed position (center) of a macro, if `cell` is one.
    #[must_use]
    pub fn macro_position(&self, cell: CellId) -> Option<Point> {
        self.macros
            .iter()
            .find(|(id, _, _)| *id == cell)
            .map(|(_, _, r)| r.center())
    }

    /// Keep-out rectangles on `tier`.
    #[must_use]
    pub fn keepouts(&self, tier: Tier) -> Vec<Rect> {
        self.macros
            .iter()
            .filter(|(_, t, _)| *t == tier)
            .map(|(_, _, r)| *r)
            .collect()
    }

    /// Evenly spaced I/O pad location for the `i`-th of `n` ports, walking
    /// the die perimeter counter-clockwise from the lower-left corner.
    #[must_use]
    pub fn io_position(&self, i: usize, n: usize) -> Point {
        let per = 2.0 * (self.die.width() + self.die.height());
        let d = per * (i as f64 + 0.5) / n.max(1) as f64;
        let w = self.die.width();
        let h = self.die.height();
        let (llx, lly) = (self.die.llx(), self.die.lly());
        if d < w {
            Point::new(llx + d, lly)
        } else if d < w + h {
            Point::new(llx + w, lly + (d - w))
        } else if d < 2.0 * w + h {
            Point::new(llx + w - (d - w - h), lly + h)
        } else {
            Point::new(llx, lly + h - (d - 2.0 * w - h))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::Library;

    fn netlist_with_macro() -> Netlist {
        let mut n = m3d_netgen::Benchmark::Cpu.generate(0.02, 1);
        let _ = &mut n;
        n
    }

    #[test]
    fn die_meets_utilization() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 1);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let density = fp.density(Tier::Bottom);
        assert!(
            (density - 0.7).abs() < 0.08,
            "density {density} should be near target"
        );
    }

    #[test]
    fn nine_track_die_is_smaller() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 1);
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let twelve = Floorplan::new(&n, &TierStack::two_d(Library::twelve_track()), &tiers, 0.7);
        let nine = Floorplan::new(&n, &TierStack::two_d(Library::nine_track()), &tiers, 0.7);
        let ratio = nine.die.area() / twelve.die.area();
        assert!((ratio - 0.75).abs() < 0.02, "area ratio {ratio}");
    }

    #[test]
    fn three_d_footprint_is_half() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 1);
        let stack = TierStack::homogeneous_3d(Library::twelve_track());
        let two_d_tiers = vec![Tier::Bottom; n.cell_count()];
        let fp2d = Floorplan::new(
            &n,
            &TierStack::two_d(Library::twelve_track()),
            &two_d_tiers,
            0.7,
        );
        // Balanced split halves each tier's demand.
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        for (i, t) in tiers.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let fp3d = Floorplan::new(&n, &stack, &tiers, 0.7);
        let ratio = fp3d.die.area() / fp2d.die.area();
        assert!((0.4..0.62).contains(&ratio), "footprint ratio {ratio}");
        // Same total silicon.
        let si_ratio = fp3d.silicon_area_um2(true) / fp2d.silicon_area_um2(false);
        assert!((0.85..1.2).contains(&si_ratio), "Si ratio {si_ratio}");
    }

    #[test]
    fn macros_do_not_overlap() {
        let n = netlist_with_macro();
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        assert!(fp.macros.len() >= 2);
        for i in 0..fp.macros.len() {
            for j in i + 1..fp.macros.len() {
                assert!(
                    !fp.macros[i].2.intersects(&fp.macros[j].2),
                    "macros {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn io_positions_lie_on_perimeter() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 1);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        for i in 0..16 {
            let p = fp.io_position(i, 16);
            let on_x = (p.x - fp.die.llx()).abs() < 1e-9 || (p.x - fp.die.urx()).abs() < 1e-9;
            let on_y = (p.y - fp.die.lly()).abs() < 1e-9 || (p.y - fp.die.ury()).abs() < 1e-9;
            assert!(on_x || on_y, "pad {i} at {p} not on boundary");
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.01, 1);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let _ = Floorplan::new(&n, &stack, &tiers, 0.0);
    }
}
