use m3d_geom::{steiner, Point, Rect};
use m3d_netlist::{NetId, Netlist};

/// Cell positions over a die outline.
///
/// Positions are cell *centers* in microns, indexed by cell id. A 3-D
/// design keeps a single `Placement` — both tiers share the footprint; the
/// tier of each cell lives in the flow's assignment vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Cell centers, indexed by cell id.
    pub positions: Vec<Point>,
    /// Die outline.
    pub die: Rect,
}

impl Placement {
    /// Creates a placement with every cell at the die center.
    #[must_use]
    pub fn centered(netlist: &Netlist, die: Rect) -> Self {
        Placement {
            positions: vec![die.center(); netlist.cell_count()],
            die,
        }
    }

    /// Position of a cell.
    #[must_use]
    pub fn position(&self, cell: usize) -> Point {
        self.positions[cell]
    }

    /// Pin locations of a net (cell centers; pin offsets are below the
    /// fidelity of a global flow).
    #[must_use]
    pub fn net_pins(&self, netlist: &Netlist, net: NetId) -> Vec<Point> {
        let mut buf = Vec::new();
        self.net_pins_into(netlist, net, &mut buf);
        buf
    }

    /// Gathers a net's pin locations into `buf` (cleared first) — the
    /// allocation-free core of [`Placement::net_pins`] for callers that
    /// sweep many nets with one scratch buffer.
    pub fn net_pins_into(&self, netlist: &Netlist, net: NetId, buf: &mut Vec<Point>) {
        buf.clear();
        buf.extend(netlist.net(net).cells().map(|c| self.positions[c.index()]));
    }

    /// Half-perimeter wirelength of one net, µm.
    #[must_use]
    pub fn net_hpwl(&self, netlist: &Netlist, net: NetId) -> f64 {
        steiner::hpwl(&self.net_pins(netlist, net))
    }

    /// [`Placement::net_hpwl`] with a caller-provided pin scratch buffer.
    #[must_use]
    pub fn net_hpwl_with(&self, netlist: &Netlist, net: NetId, buf: &mut Vec<Point>) -> f64 {
        self.net_pins_into(netlist, net, buf);
        steiner::hpwl(buf)
    }

    /// Steiner-estimate length of one net, µm.
    #[must_use]
    pub fn net_steiner(&self, netlist: &Netlist, net: NetId) -> f64 {
        steiner::steiner_estimate(&self.net_pins(netlist, net))
    }

    /// [`Placement::net_steiner`] with a caller-provided pin scratch
    /// buffer.
    #[must_use]
    pub fn net_steiner_with(&self, netlist: &Netlist, net: NetId, buf: &mut Vec<Point>) -> f64 {
        self.net_pins_into(netlist, net, buf);
        steiner::steiner_estimate(buf)
    }

    /// Total HPWL over all signal nets, µm.
    #[must_use]
    pub fn hpwl(&self, netlist: &Netlist) -> f64 {
        let mut buf = Vec::new();
        netlist
            .nets()
            .filter(|(_, n)| !n.is_clock)
            .map(|(id, _)| self.net_hpwl_with(netlist, id, &mut buf))
            .sum()
    }

    /// Total Steiner wirelength over all signal nets, µm.
    #[must_use]
    pub fn steiner_wirelength(&self, netlist: &Netlist) -> f64 {
        let mut buf = Vec::new();
        netlist
            .nets()
            .filter(|(_, n)| !n.is_clock)
            .map(|(id, _)| self.net_steiner_with(netlist, id, &mut buf))
            .sum()
    }

    /// Clamps every position into the die outline.
    pub fn clamp_to_die(&mut self) {
        for p in &mut self.positions {
            *p = self.die.clamp_point(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{CellKind, Drive};

    fn two_gate() -> (Netlist, Placement) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g = n.add_gate("g", CellKind::Inv, Drive::X1, 0);
        let y = n.add_output("y");
        let na = n.add_net("na", a, 0);
        let ny = n.add_net("ny", g, 0);
        n.connect(na, g, 0);
        n.connect(ny, y, 0);
        let die = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut p = Placement::centered(&n, die);
        p.positions[a.index()] = Point::new(0.0, 0.0);
        p.positions[g.index()] = Point::new(10.0, 10.0);
        p.positions[y.index()] = Point::new(30.0, 10.0);
        (n, p)
    }

    #[test]
    fn hpwl_sums_nets() {
        let (n, p) = two_gate();
        // na: (0,0)-(10,10) = 20 ; ny: (10,10)-(30,10) = 20
        assert_eq!(p.hpwl(&n), 40.0);
    }

    #[test]
    fn clamp_keeps_cells_inside() {
        let (n, mut p) = two_gate();
        p.positions[0] = Point::new(-50.0, 500.0);
        p.clamp_to_die();
        assert!(p.die.contains(p.positions[0]));
        let _ = n;
    }

    #[test]
    fn centered_placement_has_zero_wirelength() {
        let (n, _) = two_gate();
        let p = Placement::centered(&n, Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(p.hpwl(&n), 0.0);
    }
}
