use crate::floorplan::Floorplan;
use crate::placement::Placement;
use m3d_geom::Point;
use m3d_netlist::{CellClass, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Global-placement parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Outer iterations (each = one centroid relaxation + one spreading).
    pub iterations: usize,
    /// Centroid (Jacobi) sweeps per iteration.
    pub relax_sweeps: usize,
    /// Spatial bins per axis for density spreading.
    pub bins: usize,
    /// Target bin fill (fraction of bin area).
    pub target_fill: f64,
    /// RNG seed for the initial scatter.
    pub seed: u64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            iterations: 18,
            relax_sweeps: 4,
            bins: 24,
            target_fill: 0.8,
            seed: 0xC0FFEE,
        }
    }
}

/// Connectivity-driven global placement.
///
/// Alternates net-centroid relaxation (pulls connected cells together —
/// the quadratic-wirelength limit) with bin-density spreading (pushes
/// cells out of overfilled bins toward their emptiest neighbor), the
/// standard academic global-placement recipe. Ports pre-placed on the
/// perimeter and macros act as fixed anchors, so connected logic clusters
/// around them deterministically.
#[must_use]
pub fn global_place(netlist: &Netlist, fp: &Floorplan, config: &PlacerConfig) -> Placement {
    place_loop(netlist, fp, config, None, config.iterations)
}

/// Warm-start refinement: re-runs a few placement iterations from an
/// existing placement (after tier legalization or repartitioning moved
/// cells) to heal wirelength without discarding the global structure.
#[must_use]
pub fn refine_place(
    netlist: &Netlist,
    fp: &Floorplan,
    seed: &Placement,
    config: &PlacerConfig,
    iterations: usize,
) -> Placement {
    place_loop(netlist, fp, config, Some(&seed.positions), iterations)
}

fn place_loop(
    netlist: &Netlist,
    fp: &Floorplan,
    config: &PlacerConfig,
    warm_start: Option<&[Point]>,
    iterations: usize,
) -> Placement {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = netlist.cell_count();
    let die = fp.die;
    let mut placement = Placement::centered(netlist, die);
    if let Some(seed) = warm_start {
        placement.positions.copy_from_slice(seed);
        placement.clamp_to_die();
    }

    // Fixed cells: macros at their floorplan slots, ports on the rim.
    let mut fixed = vec![false; n];
    let port_ids: Vec<usize> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_port())
        .map(|(id, _)| id.index())
        .collect();
    for (k, &i) in port_ids.iter().enumerate() {
        placement.positions[i] = fp.io_position(k, port_ids.len());
        fixed[i] = true;
    }
    for (id, _, rect) in &fp.macros {
        placement.positions[id.index()] = rect.center();
        fixed[id.index()] = true;
    }

    // Initial scatter for movable cells (cold start only).
    if warm_start.is_none() {
        for (id, cell) in netlist.cells() {
            let i = id.index();
            if fixed[i] {
                continue;
            }
            let _ = cell;
            placement.positions[i] = Point::new(
                die.llx() + rng.gen_range(0.1..0.9) * die.width(),
                die.lly() + rng.gen_range(0.1..0.9) * die.height(),
            );
        }
    }

    // Approximate area of each cell for density (library-independent
    // proxy: pin count; close enough for spreading).
    let areas: Vec<f64> = netlist
        .cells()
        .map(|(_, c)| match &c.class {
            CellClass::Gate { .. } => 1.0 + 0.3 * c.inputs.len() as f64,
            CellClass::Macro(spec) => spec.area_um2(),
            _ => 0.0,
        })
        .collect();

    // Worker count for the inner kernels. The choice is a function of the
    // *design size* only (never of the machine), so the same code path —
    // and the same chunk decomposition — runs at every thread count,
    // keeping float accumulation orders fixed.
    let eff_threads = if n >= m3d_par::PAR_THRESHOLD { 0 } else { 1 };

    // Relaxation connectivity, built once as CSR — two flat arrays per
    // direction instead of a Vec-of-Vecs per net/cell: per-net pin slices
    // and weights, and the cell → net incidence in net-index order. The
    // incidence order IS the accumulation order of the centroid gather
    // below, so per-cell float sums are reproduced exactly regardless of
    // how many workers computed the per-net centroids.
    let net_count = netlist.net_count();
    let mut net_off: Vec<u32> = Vec::with_capacity(net_count + 1);
    net_off.push(0);
    let mut net_w: Vec<f64> = Vec::with_capacity(net_count);
    let mut pin_total = 0u32;
    for (_, net) in netlist.nets() {
        if net.is_clock || net.degree() < 2 {
            net_w.push(0.0);
        } else {
            pin_total += net.degree() as u32;
            net_w.push(1.0 / (net.degree() as f64 - 1.0));
        }
        net_off.push(pin_total);
    }
    let mut net_cell: Vec<u32> = vec![0; pin_total as usize];
    for (id, net) in netlist.nets() {
        if net.is_clock || net.degree() < 2 {
            continue;
        }
        for (w, c) in (net_off[id.index()] as usize..).zip(net.cells()) {
            net_cell[w] = c.index() as u32;
        }
    }
    let net_of = |k: usize| &net_cell[net_off[k] as usize..net_off[k + 1] as usize];
    // Cell → incident nets by counting sort over the nets in index order
    // (the same per-cell sequence the legacy push loop produced).
    let mut inc_off: Vec<u32> = vec![0; n + 1];
    for &c in &net_cell {
        inc_off[c as usize + 1] += 1;
    }
    for i in 0..n {
        inc_off[i + 1] += inc_off[i];
    }
    let mut next_slot: Vec<u32> = inc_off[..n].to_vec();
    let mut inc_net: Vec<u32> = vec![0; pin_total as usize];
    for k in 0..net_count {
        for &c in net_of(k) {
            inc_net[next_slot[c as usize] as usize] = k as u32;
            next_slot[c as usize] += 1;
        }
    }
    drop(next_slot);
    let nets_of = |c: usize| &inc_net[inc_off[c] as usize..inc_off[c + 1] as usize];

    for iter in 0..iterations {
        // --- net-centroid relaxation --------------------------------
        // Two deterministic parallel phases: (1) each net's centroid from
        // the snapshot, (2) each cell's weighted gather over its incident
        // nets (fixed order) and damped move. No cross-item dependencies
        // in either phase.
        for _ in 0..config.relax_sweeps {
            let snapshot = placement.positions.clone();
            let snap = &snapshot;
            let centroids: Vec<Point> = m3d_par::par_map_indices(eff_threads, net_count, |k| {
                let pins = net_of(k);
                if pins.is_empty() {
                    return Point::ORIGIN;
                }
                let mut centroid = Point::ORIGIN;
                let mut count = 0.0;
                for &c in pins {
                    centroid += snap[c as usize];
                    count += 1.0;
                }
                centroid / count
            });
            let centroids_ref = &centroids;
            let net_w_ref = &net_w;
            let fixed_ref = &fixed;
            let moved: Vec<Option<Point>> = m3d_par::par_map_indices(eff_threads, n, |i| {
                if fixed_ref[i] {
                    return None;
                }
                let mut sum = Point::ORIGIN;
                let mut weight = 0.0_f64;
                for &ni in nets_of(i) {
                    let ni = ni as usize;
                    sum += centroids_ref[ni] * net_w_ref[ni];
                    weight += net_w_ref[ni];
                }
                if weight == 0.0 {
                    return None;
                }
                let target = sum / weight;
                // Damped move toward the connectivity centroid.
                let cur = snap[i];
                Some(cur + (target - cur) * 0.7)
            });
            for (i, m) in moved.into_iter().enumerate() {
                if let Some(p) = m {
                    placement.positions[i] = p;
                }
            }
            placement.clamp_to_die();
        }

        // --- density spreading: 1-D grid warping ----------------------
        // FastPlace-style cell shifting: remap x (then y) coordinates so
        // each stripe's share of cell area maps to a proportional share
        // of the die extent. Monotone in each axis, so relative order --
        // and therefore most of the wirelength structure -- survives.
        let lambda = 0.55 * (1.0 - 0.5 * iter as f64 / iterations.max(1) as f64);
        for axis in 0..2 {
            let k = config.bins;
            let (lo, span) = if axis == 0 {
                (die.llx(), die.width())
            } else {
                (die.lly(), die.height())
            };
            let coord = |p: Point| if axis == 0 { p.x } else { p.y };
            // Histogram fill: per-chunk partial histograms merged in
            // chunk-index order. The chunk boundaries are a function of
            // `n` alone, so the summation order is fixed at any thread
            // count.
            let positions = &placement.positions;
            let areas_ref = &areas;
            let partials = m3d_par::par_ranges(eff_threads, n, |range| {
                let mut part = vec![0.0_f64; k];
                for i in range {
                    if areas_ref[i] == 0.0 {
                        continue;
                    }
                    let f = ((coord(positions[i]) - lo) / span).clamp(0.0, 0.999_999);
                    part[(f * k as f64) as usize] += areas_ref[i];
                }
                part
            });
            let mut fill = vec![1e-9_f64; k];
            for part in partials {
                for (b, v) in part.into_iter().enumerate() {
                    fill[b] += v;
                }
            }
            let total: f64 = fill.iter().sum();
            let mut cum = vec![0.0_f64; k + 1];
            for i in 0..k {
                cum[i + 1] = cum[i] + fill[i];
            }
            let fill_ref = &fill;
            let cum_ref = &cum;
            let fixed_ref = &fixed;
            let new_coords: Vec<Option<f64>> = m3d_par::par_map_indices(eff_threads, n, |i| {
                if fixed_ref[i] {
                    return None;
                }
                let c = coord(positions[i]);
                let f = ((c - lo) / span).clamp(0.0, 0.999_999);
                let bin = (f * k as f64) as usize;
                let frac = f * k as f64 - bin as f64;
                let new_f = (cum_ref[bin] + frac * fill_ref[bin]) / total;
                let target = lo + new_f * span;
                Some(c + (target - c) * lambda)
            });
            for (i, c) in new_coords.into_iter().enumerate() {
                let Some(moved) = c else { continue };
                if axis == 0 {
                    placement.positions[i].x = moved;
                } else {
                    placement.positions[i].y = moved;
                }
            }
        }
        // Small jitter breaks exact coincidences so Tetris rows pack well.
        if iter + 1 == iterations {
            for (i, &fix) in fixed.iter().enumerate() {
                if !fix {
                    placement.positions[i] +=
                        Point::new(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2));
                }
            }
        }
        placement.clamp_to_die();
    }

    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_geom::BinGrid;
    use m3d_tech::{Library, Tier, TierStack};

    fn setup(scale: f64) -> (Netlist, Floorplan) {
        let n = m3d_netgen::Benchmark::Aes.generate(scale, 2);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        (n, fp)
    }

    #[test]
    fn placement_improves_over_random_scatter() {
        let (n, fp) = setup(0.03);
        let config = PlacerConfig::default();
        let placed = global_place(&n, &fp, &config);

        // Compare against the initial random scatter (one iteration of
        // nothing): re-run with zero iterations.
        let zero = PlacerConfig {
            iterations: 0,
            ..config.clone()
        };
        let scattered = global_place(&n, &fp, &zero);
        assert!(
            placed.hpwl(&n) < 0.7 * scattered.hpwl(&n),
            "placement {} vs scatter {}",
            placed.hpwl(&n),
            scattered.hpwl(&n)
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let (n, fp) = setup(0.02);
        let a = global_place(&n, &fp, &PlacerConfig::default());
        let b = global_place(&n, &fp, &PlacerConfig::default());
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn cells_stay_in_die() {
        let (n, fp) = setup(0.02);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        for (i, pos) in p.positions.iter().enumerate() {
            assert!(fp.die.contains(*pos), "cell {i} at {pos} outside die");
        }
    }

    #[test]
    fn density_is_spread() {
        let (n, fp) = setup(0.03);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        let bins = 12;
        let mut grid = BinGrid::new(fp.die, bins, bins);
        for (id, cell) in n.cells() {
            if cell.class.is_gate() {
                *grid.value_mut(grid.bin_of(p.positions[id.index()])) += 1.0;
            }
        }
        let mean = grid.total() / (bins * bins) as f64;
        // No bin should hold more than ~8x the average after spreading.
        assert!(
            grid.max() < 8.0 * mean + 10.0,
            "max bin {} vs mean {mean}",
            grid.max()
        );
    }

    #[test]
    fn connected_blocks_cluster() {
        // Two blocks with no cross connections should separate spatially
        // more than cells within one block.
        let spec = m3d_netgen::DesignSpec {
            name: "two".into(),
            primary_inputs: 8,
            primary_outputs: 8,
            blocks: vec![
                m3d_netgen::BlockSpec::new("a", 150, 8, 20, 0.98),
                m3d_netgen::BlockSpec::new("b", 150, 8, 20, 0.98),
            ],
            srams: vec![],
        };
        let n = m3d_netgen::generate(&spec, 3);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let p = global_place(&n, &fp, &PlacerConfig::default());

        let centroid = |tag: &str| {
            let pts: Vec<Point> = n
                .cells()
                .filter(|(_, c)| n.block_name(c.block).starts_with(tag) && c.class.is_gate())
                .map(|(id, _)| p.positions[id.index()])
                .collect();
            let sum = pts.iter().fold(Point::ORIGIN, |acc, &q| acc + q);
            (sum / pts.len() as f64, pts)
        };
        let (ca, pa) = centroid("a_");
        let (cb, _) = centroid("b_");
        let spread_a: f64 = pa.iter().map(|q| q.distance(ca)).sum::<f64>() / pa.len() as f64;
        // Between-cluster distance should exceed within-cluster spread.
        assert!(
            ca.distance(cb) > 0.6 * spread_a,
            "centroids {:.1} apart vs spread {:.1}",
            ca.distance(cb),
            spread_a
        );
    }
}
