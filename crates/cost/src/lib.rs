//! The cost model of Section II-C — Table IV, formulas (1)–(5).
//!
//! Costs are expressed in units of `C'`, the baseline wafer cost of one
//! FEOL layer plus eight metal layers, exactly as the paper normalizes
//! them. The model derives: wafer costs for 2-D and (two-tier) 3-D,
//! dies-per-wafer, yields (with the extra 3-D yield degradation `β`), die
//! cost, cost per cm², and the two composite metrics the paper optimizes —
//! power-delay product (PDP) and performance per cost (PPC).
//!
//! # Examples
//!
//! ```
//! use m3d_cost::CostModel;
//!
//! let model = CostModel::default();
//! // The derived wafer costs of Table IV.
//! assert!((model.wafer_cost_2d() - 0.96).abs() < 1e-12);
//! assert!((model.wafer_cost_3d() - 1.97).abs() < 1e-12);
//! // A 1 mm² die is much cheaper than a 100 mm² die.
//! assert!(model.die_cost(1.0, false) < model.die_cost(100.0, false) / 50.0);
//! ```

use std::f64::consts::PI;

/// Table IV's assumptions, in units of the baseline wafer cost `C'`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Baseline wafer cost (FEOL + 8 metals); the unit, normally 1.0.
    pub c_prime: f64,
    /// FEOL share of the baseline wafer cost (0.3).
    pub feol_fraction: f64,
    /// BEOL share for six metal layers (0.66 — consistent per-layer cost).
    pub beol6_fraction: f64,
    /// 3-D integration cost adder `α` (0.05).
    pub integration_fraction: f64,
    /// Wafer diameter, mm (300).
    pub wafer_diameter_mm: f64,
    /// Defect density `D_w`, mm⁻² (0.2... the paper's table lists
    /// 0.2 mm⁻²; see the note on units in `die_yield`).
    pub defect_density_per_mm2: f64,
    /// Base wafer yield `κ` (0.95).
    pub wafer_yield: f64,
    /// 3-D yield degradation `β` (0.95).
    pub yield_degradation_3d: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            c_prime: 1.0,
            feol_fraction: 0.3,
            beol6_fraction: 0.66,
            integration_fraction: 0.05,
            wafer_diameter_mm: 300.0,
            defect_density_per_mm2: 0.2,
            wafer_yield: 0.95,
            yield_degradation_3d: 0.95,
        }
    }
}

impl CostModel {
    /// Wafer area, mm².
    #[must_use]
    pub fn wafer_area_mm2(&self) -> f64 {
        let r = self.wafer_diameter_mm * 0.5;
        PI * r * r
    }

    /// 2-D wafer cost `C_2D = (0.3 + 0.66) C' = 0.96 C'`.
    #[must_use]
    pub fn wafer_cost_2d(&self) -> f64 {
        (self.feol_fraction + self.beol6_fraction) * self.c_prime
    }

    /// 3-D wafer cost `C_3D = (2·(0.3 + 0.66) + 0.05) C' = 1.97 C'`:
    /// two FEOL layers, two six-metal BEOLs and the integration adder.
    #[must_use]
    pub fn wafer_cost_3d(&self) -> f64 {
        (2.0 * (self.feol_fraction + self.beol6_fraction) + self.integration_fraction)
            * self.c_prime
    }

    /// Formula (1): dies per wafer,
    /// `DPW = A_w/A_d − √(2π·A_w/A_d)` (the second term discounts edge
    /// dies). `die_area_mm2` is the die footprint.
    ///
    /// # Panics
    ///
    /// Panics if `die_area_mm2` is not positive.
    #[must_use]
    pub fn dies_per_wafer(&self, die_area_mm2: f64) -> f64 {
        assert!(die_area_mm2 > 0.0, "die area must be positive");
        let ratio = self.wafer_area_mm2() / die_area_mm2;
        (ratio - (2.0 * PI * ratio).sqrt()).max(0.0)
    }

    /// Formula (2): 2-D die yield `Y_2D = κ (1 + A_d·D_w/2)^−2`.
    #[must_use]
    pub fn die_yield_2d(&self, die_area_mm2: f64) -> f64 {
        self.wafer_yield * (1.0 + die_area_mm2 * self.defect_density_per_mm2 * 0.5).powi(-2)
    }

    /// Formula (3): 3-D die yield `Y_3D = κ·β (1 + A_d·D_w/2)^−2`.
    #[must_use]
    pub fn die_yield_3d(&self, die_area_mm2: f64) -> f64 {
        self.yield_degradation_3d * self.die_yield_2d(die_area_mm2)
    }

    /// Formula (4): good dies per wafer.
    #[must_use]
    pub fn good_dies(&self, die_area_mm2: f64, is_3d: bool) -> f64 {
        let y = if is_3d {
            self.die_yield_3d(die_area_mm2)
        } else {
            self.die_yield_2d(die_area_mm2)
        };
        self.dies_per_wafer(die_area_mm2) * y
    }

    /// Formula (5): die cost `C_wafer / (N_GD × Y)` in units of `C'`.
    ///
    /// `die_area_mm2` is the *footprint* (shared outline for 3-D).
    #[must_use]
    pub fn die_cost(&self, die_area_mm2: f64, is_3d: bool) -> f64 {
        let (wafer, y) = if is_3d {
            (self.wafer_cost_3d(), self.die_yield_3d(die_area_mm2))
        } else {
            (self.wafer_cost_2d(), self.die_yield_2d(die_area_mm2))
        };
        wafer / (self.good_dies(die_area_mm2, is_3d) * y)
    }

    /// Cost per cm² of silicon: `die cost / total Si area`.
    /// `si_area_mm2` is the total fabricated silicon (2× footprint for 3-D).
    #[must_use]
    pub fn cost_per_cm2(&self, die_area_mm2: f64, si_area_mm2: f64, is_3d: bool) -> f64 {
        self.die_cost(die_area_mm2, is_3d) / (si_area_mm2 * 1e-2)
    }
}

/// Power-delay product in pJ: `power (mW) × effective delay (ns)`.
#[must_use]
pub fn pdp_pj(power_mw: f64, effective_delay_ns: f64) -> f64 {
    power_mw * effective_delay_ns
}

/// Performance per cost, the paper's composite metric:
/// `frequency (GHz) / (power (W) × die cost (10⁻⁶ C'))` — note the watt
/// normalization, which reproduces the magnitudes of Table VI (e.g. the
/// CPU's `1.2 GHz / (0.188 W × 6.26) ≈ 1.02`).
#[must_use]
pub fn ppc(frequency_ghz: f64, power_mw: f64, die_cost: f64) -> f64 {
    frequency_ghz / (power_mw * 1e-3 * die_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_wafer_costs() {
        let m = CostModel::default();
        assert!((m.wafer_cost_2d() - 0.96).abs() < 1e-12);
        assert!((m.wafer_cost_3d() - 1.97).abs() < 1e-12);
    }

    #[test]
    fn dpw_decreases_with_die_area() {
        let m = CostModel::default();
        assert!(m.dies_per_wafer(1.0) > m.dies_per_wafer(10.0));
        assert!(m.dies_per_wafer(10.0) > m.dies_per_wafer(100.0));
        // 300 mm wafer, 100 mm2 die: ~640 gross dies.
        let dpw = m.dies_per_wafer(100.0);
        assert!((600.0..700.0).contains(&dpw), "dpw {dpw}");
    }

    #[test]
    fn yield_decreases_with_area_and_3d_penalty() {
        let m = CostModel::default();
        assert!(m.die_yield_2d(1.0) > m.die_yield_2d(50.0));
        let r = m.die_yield_3d(10.0) / m.die_yield_2d(10.0);
        assert!((r - 0.95).abs() < 1e-12);
        // Yield is a probability.
        assert!(m.die_yield_2d(0.001) <= 0.95 + 1e-12);
    }

    #[test]
    fn die_cost_monotone_in_area() {
        let m = CostModel::default();
        let costs: Vec<f64> = [0.1, 0.5, 1.0, 5.0, 20.0]
            .iter()
            .map(|&a| m.die_cost(a, false))
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn small_3d_die_can_beat_large_2d_die() {
        // The heterogeneous premise: halving the footprint (and shaving
        // 12.5 % of silicon) can offset the 3-D wafer premium.
        // Paper-scale dies (Table VI footprints are 0.1-0.4 mm2).
        let m = CostModel::default();
        let cost_2d = m.die_cost(0.4, false);
        // Same logic folded onto two tiers: footprint 0.2 mm2, 3-D.
        let cost_3d = m.die_cost(0.2, true);
        // Homogeneous 3-D costs more than 2-D (2x wafer + beta)...
        assert!(cost_3d > cost_2d);
        // ...but the heterogeneous 12.5 % silicon saving (footprint
        // 0.875 x 0.2) flips the comparison -- the paper's die-cost win.
        let hetero_3d = m.die_cost(0.175, true);
        assert!(hetero_3d < cost_3d);
        assert!(hetero_3d < cost_2d);
    }

    #[test]
    fn cost_per_cm2_is_higher_for_3d() {
        let m = CostModel::default();
        // Iso-silicon comparison at paper-scale dies: 2-D of 0.4 mm2 vs
        // 3-D of 0.2 mm2 footprint (0.4 mm2 total silicon).
        let c2 = m.cost_per_cm2(0.4, 0.4, false);
        let c3 = m.cost_per_cm2(0.2, 0.4, true);
        assert!(c3 > c2, "3-D per-area cost {c3} should exceed 2-D {c2}");
        // And by single-digit percents, as in Table VII's cost/cm2 row.
        assert!(c3 / c2 < 1.25, "ratio {}", c3 / c2);
    }

    #[test]
    fn composite_metrics() {
        assert_eq!(pdp_pj(100.0, 0.5), 50.0);
        // Paper Table VI sanity: cpu at 1.2 GHz, 188 mW, 6.26e-6 C'.
        assert!((ppc(1.2, 188.0, 6.26) - 1.0195).abs() < 1e-3);
        // PPC improves when any of power/cost drops.
        assert!(ppc(1.0, 50.0, 1.0) > ppc(1.0, 100.0, 1.0));
        assert!(ppc(1.0, 100.0, 0.5) > ppc(1.0, 100.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "die area")]
    fn zero_area_panics() {
        let _ = CostModel::default().dies_per_wafer(0.0);
    }
}
