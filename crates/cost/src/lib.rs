//! The cost model of Section II-C — Table IV, formulas (1)–(5).
//!
//! Costs are expressed in units of `C'`, the baseline wafer cost of one
//! FEOL layer plus eight metal layers, exactly as the paper normalizes
//! them. The model derives: wafer costs for 2-D and (two-tier) 3-D,
//! dies-per-wafer, yields (with the extra 3-D yield degradation `β`), die
//! cost, cost per cm², and the two composite metrics the paper optimizes —
//! power-delay product (PDP) and performance per cost (PPC).
//!
//! Two 3-D stacking styles are costed. **Monolithic** (the paper's
//! subject) pays the sequential-integration adder `α` and the β yield
//! hit. **F2F hybrid bonding** replaces `α` with a (cheaper)
//! wafer-bonding adder, carries its own bond-yield degradation, and —
//! unlike monolithic MIVs, which are free — pays a small cost *per
//! bonded connection* ([`CostModel::die_cost_f2f`]), so MIV-rich
//! partitions erode its wafer-cost advantage.
//!
//! # Examples
//!
//! ```
//! use m3d_cost::CostModel;
//!
//! let model = CostModel::default();
//! // The derived wafer costs of Table IV.
//! assert!((model.wafer_cost_2d() - 0.96).abs() < 1e-12);
//! assert!((model.wafer_cost_3d() - 1.97).abs() < 1e-12);
//! // A 1 mm² die is much cheaper than a 100 mm² die.
//! assert!(model.die_cost(1.0, false) < model.die_cost(100.0, false) / 50.0);
//! ```

use std::f64::consts::PI;

/// Table IV's assumptions, in units of the baseline wafer cost `C'`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Baseline wafer cost (FEOL + 8 metals); the unit, normally 1.0.
    pub c_prime: f64,
    /// FEOL share of the baseline wafer cost (0.3).
    pub feol_fraction: f64,
    /// BEOL share for six metal layers (0.66 — consistent per-layer cost).
    pub beol6_fraction: f64,
    /// 3-D integration cost adder `α` (0.05).
    pub integration_fraction: f64,
    /// Wafer diameter, mm (300).
    pub wafer_diameter_mm: f64,
    /// Defect density `D_w`, mm⁻² (0.2... the paper's table lists
    /// 0.2 mm⁻²; see the note on units in `die_yield`).
    pub defect_density_per_mm2: f64,
    /// Base wafer yield `κ` (0.95).
    pub wafer_yield: f64,
    /// 3-D yield degradation `β` (0.95).
    pub yield_degradation_3d: f64,
    /// F2F wafer-bonding cost adder replacing `α` for bonded stacks
    /// (0.03 — wafer-on-wafer bonding skips the sequential
    /// thermal-budget processing that makes monolithic integration
    /// expensive).
    pub f2f_bond_fraction: f64,
    /// F2F bond-yield degradation, the bonded analogue of `β` (0.95).
    pub f2f_yield_degradation: f64,
    /// Incremental cost per hybrid-bond connection, in units of `C'`
    /// (10⁻¹² — negligible alone, material for MIV-rich partitions of
    /// the paper-scale sub-mm² dies).
    pub f2f_cost_per_connection: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            c_prime: 1.0,
            feol_fraction: 0.3,
            beol6_fraction: 0.66,
            integration_fraction: 0.05,
            wafer_diameter_mm: 300.0,
            defect_density_per_mm2: 0.2,
            wafer_yield: 0.95,
            yield_degradation_3d: 0.95,
            f2f_bond_fraction: 0.03,
            f2f_yield_degradation: 0.95,
            f2f_cost_per_connection: 1e-12,
        }
    }
}

/// The error of the `try_*` cost entry points: a die area that is not
/// a positive finite number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidDieArea {
    /// The offending area, mm².
    pub die_area_mm2: f64,
}

impl std::fmt::Display for InvalidDieArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "die area must be positive, got {} mm2",
            self.die_area_mm2
        )
    }
}

impl std::error::Error for InvalidDieArea {}

impl CostModel {
    /// Wafer area, mm².
    #[must_use]
    pub fn wafer_area_mm2(&self) -> f64 {
        let r = self.wafer_diameter_mm * 0.5;
        PI * r * r
    }

    /// 2-D wafer cost `C_2D = (0.3 + 0.66) C' = 0.96 C'`.
    #[must_use]
    pub fn wafer_cost_2d(&self) -> f64 {
        (self.feol_fraction + self.beol6_fraction) * self.c_prime
    }

    /// 3-D wafer cost `C_3D = (2·(0.3 + 0.66) + 0.05) C' = 1.97 C'`:
    /// two FEOL layers, two six-metal BEOLs and the integration adder.
    #[must_use]
    pub fn wafer_cost_3d(&self) -> f64 {
        (2.0 * (self.feol_fraction + self.beol6_fraction) + self.integration_fraction)
            * self.c_prime
    }

    /// Formula (1): dies per wafer,
    /// `DPW = A_w/A_d − √(2π·A_w/A_d)` (the second term discounts edge
    /// dies). `die_area_mm2` is the die footprint.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDieArea`] when `die_area_mm2` is not a
    /// positive finite number.
    pub fn try_dies_per_wafer(&self, die_area_mm2: f64) -> Result<f64, InvalidDieArea> {
        if !(die_area_mm2.is_finite() && die_area_mm2 > 0.0) {
            return Err(InvalidDieArea { die_area_mm2 });
        }
        Ok(self.dpw_unchecked(die_area_mm2))
    }

    /// Shared panicking check for the internal call sites (`good_dies`,
    /// `die_cost`, …) that keep formula (1)'s historical contract.
    fn checked_dpw(&self, die_area_mm2: f64) -> f64 {
        assert!(die_area_mm2 > 0.0, "die area must be positive");
        self.dpw_unchecked(die_area_mm2)
    }

    fn dpw_unchecked(&self, die_area_mm2: f64) -> f64 {
        let ratio = self.wafer_area_mm2() / die_area_mm2;
        (ratio - (2.0 * PI * ratio).sqrt()).max(0.0)
    }

    /// Formula (2): 2-D die yield `Y_2D = κ (1 + A_d·D_w/2)^−2`.
    #[must_use]
    pub fn die_yield_2d(&self, die_area_mm2: f64) -> f64 {
        self.wafer_yield * (1.0 + die_area_mm2 * self.defect_density_per_mm2 * 0.5).powi(-2)
    }

    /// Formula (3): 3-D die yield `Y_3D = κ·β (1 + A_d·D_w/2)^−2`.
    #[must_use]
    pub fn die_yield_3d(&self, die_area_mm2: f64) -> f64 {
        self.yield_degradation_3d * self.die_yield_2d(die_area_mm2)
    }

    /// Formula (4): good dies per wafer.
    #[must_use]
    pub fn good_dies(&self, die_area_mm2: f64, is_3d: bool) -> f64 {
        let y = if is_3d {
            self.die_yield_3d(die_area_mm2)
        } else {
            self.die_yield_2d(die_area_mm2)
        };
        self.checked_dpw(die_area_mm2) * y
    }

    /// Formula (5): die cost `C_wafer / (N_GD × Y)` in units of `C'`.
    ///
    /// `die_area_mm2` is the *footprint* (shared outline for 3-D).
    #[must_use]
    pub fn die_cost(&self, die_area_mm2: f64, is_3d: bool) -> f64 {
        let (wafer, y) = if is_3d {
            (self.wafer_cost_3d(), self.die_yield_3d(die_area_mm2))
        } else {
            (self.wafer_cost_2d(), self.die_yield_2d(die_area_mm2))
        };
        wafer / (self.good_dies(die_area_mm2, is_3d) * y)
    }

    /// Cost per cm² of silicon: `die cost / total Si area`.
    /// `si_area_mm2` is the total fabricated silicon (2× footprint for 3-D).
    #[must_use]
    pub fn cost_per_cm2(&self, die_area_mm2: f64, si_area_mm2: f64, is_3d: bool) -> f64 {
        self.die_cost(die_area_mm2, is_3d) / (si_area_mm2 * 1e-2)
    }

    /// F2F 3-D wafer cost: two FEOLs, two six-metal BEOLs and the
    /// wafer-bonding adder instead of the monolithic integration adder
    /// — `(2·(0.3 + 0.66) + 0.03) C' = 1.95 C'` at the defaults.
    #[must_use]
    pub fn wafer_cost_3d_f2f(&self) -> f64 {
        (2.0 * (self.feol_fraction + self.beol6_fraction) + self.f2f_bond_fraction) * self.c_prime
    }

    /// F2F 3-D die yield: formula (3) with the bond-yield degradation
    /// in place of `β`.
    #[must_use]
    pub fn die_yield_3d_f2f(&self, die_area_mm2: f64) -> f64 {
        self.f2f_yield_degradation * self.die_yield_2d(die_area_mm2)
    }

    /// Formula (5) for an F2F hybrid-bonded stack: the bonded wafer
    /// cost over good bonded dies, plus the per-connection bonding
    /// cost of the stack's `bond_connections` inter-tier bonds. In
    /// units of `C'`.
    ///
    /// # Panics
    ///
    /// Panics if `die_area_mm2` is not positive (same contract as
    /// [`CostModel::die_cost`]).
    #[must_use]
    pub fn die_cost_f2f(&self, die_area_mm2: f64, bond_connections: usize) -> f64 {
        let y = self.die_yield_3d_f2f(die_area_mm2);
        let per_die = self.wafer_cost_3d_f2f() / (self.checked_dpw(die_area_mm2) * y * y);
        per_die + bond_connections as f64 * self.f2f_cost_per_connection
    }
}

/// Power-delay product in pJ: `power (mW) × effective delay (ns)`.
#[must_use]
pub fn pdp_pj(power_mw: f64, effective_delay_ns: f64) -> f64 {
    power_mw * effective_delay_ns
}

/// Performance per cost, the paper's composite metric:
/// `frequency (GHz) / (power (W) × die cost (10⁻⁶ C'))` — note the watt
/// normalization, which reproduces the magnitudes of Table VI (e.g. the
/// CPU's `1.2 GHz / (0.188 W × 6.26) ≈ 1.02`).
#[must_use]
pub fn ppc(frequency_ghz: f64, power_mw: f64, die_cost: f64) -> f64 {
    frequency_ghz / (power_mw * 1e-3 * die_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_wafer_costs() {
        let m = CostModel::default();
        assert!((m.wafer_cost_2d() - 0.96).abs() < 1e-12);
        assert!((m.wafer_cost_3d() - 1.97).abs() < 1e-12);
    }

    #[test]
    fn dpw_decreases_with_die_area() {
        let m = CostModel::default();
        let dpw = |a| m.try_dies_per_wafer(a).expect("positive area");
        assert!(dpw(1.0) > dpw(10.0));
        assert!(dpw(10.0) > dpw(100.0));
        // 300 mm wafer, 100 mm2 die: ~640 gross dies.
        let dpw = dpw(100.0);
        assert!((600.0..700.0).contains(&dpw), "dpw {dpw}");
    }

    #[test]
    fn yield_decreases_with_area_and_3d_penalty() {
        let m = CostModel::default();
        assert!(m.die_yield_2d(1.0) > m.die_yield_2d(50.0));
        let r = m.die_yield_3d(10.0) / m.die_yield_2d(10.0);
        assert!((r - 0.95).abs() < 1e-12);
        // Yield is a probability.
        assert!(m.die_yield_2d(0.001) <= 0.95 + 1e-12);
    }

    #[test]
    fn die_cost_monotone_in_area() {
        let m = CostModel::default();
        let costs: Vec<f64> = [0.1, 0.5, 1.0, 5.0, 20.0]
            .iter()
            .map(|&a| m.die_cost(a, false))
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn small_3d_die_can_beat_large_2d_die() {
        // The heterogeneous premise: halving the footprint (and shaving
        // 12.5 % of silicon) can offset the 3-D wafer premium.
        // Paper-scale dies (Table VI footprints are 0.1-0.4 mm2).
        let m = CostModel::default();
        let cost_2d = m.die_cost(0.4, false);
        // Same logic folded onto two tiers: footprint 0.2 mm2, 3-D.
        let cost_3d = m.die_cost(0.2, true);
        // Homogeneous 3-D costs more than 2-D (2x wafer + beta)...
        assert!(cost_3d > cost_2d);
        // ...but the heterogeneous 12.5 % silicon saving (footprint
        // 0.875 x 0.2) flips the comparison -- the paper's die-cost win.
        let hetero_3d = m.die_cost(0.175, true);
        assert!(hetero_3d < cost_3d);
        assert!(hetero_3d < cost_2d);
    }

    #[test]
    fn cost_per_cm2_is_higher_for_3d() {
        let m = CostModel::default();
        // Iso-silicon comparison at paper-scale dies: 2-D of 0.4 mm2 vs
        // 3-D of 0.2 mm2 footprint (0.4 mm2 total silicon).
        let c2 = m.cost_per_cm2(0.4, 0.4, false);
        let c3 = m.cost_per_cm2(0.2, 0.4, true);
        assert!(c3 > c2, "3-D per-area cost {c3} should exceed 2-D {c2}");
        // And by single-digit percents, as in Table VII's cost/cm2 row.
        assert!(c3 / c2 < 1.25, "ratio {}", c3 / c2);
    }

    #[test]
    fn composite_metrics() {
        assert_eq!(pdp_pj(100.0, 0.5), 50.0);
        // Paper Table VI sanity: cpu at 1.2 GHz, 188 mW, 6.26e-6 C'.
        assert!((ppc(1.2, 188.0, 6.26) - 1.0195).abs() < 1e-3);
        // PPC improves when any of power/cost drops.
        assert!(ppc(1.0, 50.0, 1.0) > ppc(1.0, 100.0, 1.0));
        assert!(ppc(1.0, 100.0, 0.5) > ppc(1.0, 100.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "die area")]
    fn zero_area_panics_on_the_internal_path() {
        // `good_dies` keeps formula (1)'s historical assert for the
        // internal call sites; the public surface is `try_dies_per_wafer`.
        let _ = CostModel::default().good_dies(0.0, false);
    }

    #[test]
    fn try_dies_per_wafer_rejects_bad_areas_and_matches_the_internal_path() {
        let m = CostModel::default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = m.try_dies_per_wafer(bad).unwrap_err();
            assert_eq!(err.die_area_mm2.to_bits(), bad.to_bits());
            assert!(err.to_string().contains("die area must be positive"));
        }
        // Same arithmetic as the internal panicking path: good dies at
        // perfect yield reduce to gross dies per wafer.
        let perfect = CostModel {
            wafer_yield: 1.0,
            defect_density_per_mm2: 0.0,
            ..CostModel::default()
        };
        let gross = m.try_dies_per_wafer(0.25).expect("positive area");
        assert!((perfect.good_dies(0.25, false) - gross).abs() < 1e-9);
    }

    #[test]
    fn f2f_wafer_is_cheaper_but_pays_per_connection() {
        let m = CostModel::default();
        assert!((m.wafer_cost_3d_f2f() - 1.95).abs() < 1e-12);
        assert!(m.wafer_cost_3d_f2f() < m.wafer_cost_3d());
        // Bond-free F2F die beats monolithic at the defaults (cheaper
        // wafer, same yield degradation)...
        let mono = m.die_cost(0.2, true);
        let f2f = m.die_cost_f2f(0.2, 0);
        assert!(f2f < mono);
        // ...but every bonded connection eats into the margin, and
        // enough of them flip the comparison.
        assert!(m.die_cost_f2f(0.2, 100) > f2f);
        let break_even = (mono - f2f) / m.f2f_cost_per_connection;
        assert!(m.die_cost_f2f(0.2, break_even as usize + 10) > mono);
    }

    #[test]
    #[should_panic(expected = "die area")]
    fn f2f_zero_area_panics_like_monolithic() {
        let _ = CostModel::default().die_cost_f2f(0.0, 0);
    }

    /// Formats one Table IV cost row: per-footprint wafer cost, yield
    /// and die cost (µC') for a stacking style.
    fn table_iv_row(m: &CostModel, style: &str, area: f64, bonds: usize) -> String {
        let (wafer, yield_, die_uc) = match style {
            "2d" => (
                m.wafer_cost_2d(),
                m.die_yield_2d(area),
                m.die_cost(area, false) * 1e6,
            ),
            "monolithic" => (
                m.wafer_cost_3d(),
                m.die_yield_3d(area),
                m.die_cost(area, true) * 1e6,
            ),
            "f2f" => (
                m.wafer_cost_3d_f2f(),
                m.die_yield_3d_f2f(area),
                m.die_cost_f2f(area, bonds) * 1e6,
            ),
            _ => unreachable!(),
        };
        format!("{style:<10} {area:>8.3} {bonds:>6} {wafer:>8.3} {yield_:>8.5} {die_uc:>12.6}")
    }

    fn render_table_iv(m: &CostModel) -> String {
        let mut out = String::from("style       area_mm2  bonds  wafer_c    yield  die_cost_uc\n");
        for &(area, bonds) in &[(0.1, 64), (0.2, 128), (0.4, 256)] {
            for style in ["2d", "monolithic", "f2f"] {
                out.push_str(&table_iv_row(
                    m,
                    style,
                    area,
                    if style == "f2f" { bonds } else { 0 },
                ));
                out.push('\n');
            }
        }
        out
    }

    const GOLDEN_TABLE4: &str = "\
style       area_mm2  bonds  wafer_c    yield  die_cost_uc
2d            0.100      0    0.960  0.93128     1.570630
monolithic    0.100      0    1.970  0.88472     3.571262
f2f           0.100     64    1.950  0.88472     3.535069
2d            0.200      0    0.960  0.91311     3.271578
monolithic    0.200      0    1.970  0.86745     7.438838
f2f           0.200    128    1.950  0.86745     7.363445
2d            0.400      0    0.960  0.87833     7.084062
monolithic    0.400      0    1.970  0.83441    16.107574
f2f           0.400    256    1.950  0.83441    15.944302
";

    /// Golden snapshot of the Table IV cost rows for all stacking
    /// styles — catches cost-model drift the way Tables VI/VII do for
    /// the flow. Regenerate with
    /// `cargo test -p m3d-cost -- --ignored print_golden --nocapture`.
    #[test]
    fn table_iv_rows_match_golden() {
        let actual = render_table_iv(&CostModel::default());
        for (line, (a, g)) in actual.lines().zip(GOLDEN_TABLE4.lines()).enumerate() {
            assert_eq!(a, g, "table4 line {line} drifted");
        }
        assert_eq!(
            actual.lines().count(),
            GOLDEN_TABLE4.lines().count(),
            "table4 row count drifted"
        );
    }

    #[test]
    #[ignore = "golden regenerator"]
    fn print_golden_table4() {
        println!("{}", render_table_iv(&CostModel::default()));
    }
}
