//! Table VIII: clock network, critical path and memory-interconnect
//! analyses of one implementation.

use m3d_flow::Implementation;
use m3d_route::extract_parasitics;
use m3d_sta::{worst_paths, ClockSpec, TimingContext};
use m3d_tech::Tier;

/// Memory-interconnect metrics (Table VIII, first block).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryReport {
    /// RMS wire latency of nets feeding macro inputs, ps.
    pub input_net_latency_ps: f64,
    /// RMS wire latency of nets driven by macro outputs, ps.
    pub output_net_latency_ps: f64,
    /// Switching power of all macro-attached nets, µW (at sign-off
    /// activity).
    pub net_switching_power_uw: f64,
    /// Number of macro-attached nets.
    pub net_count: usize,
}

/// Clock-network metrics (Table VIII, second block).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockReport {
    /// Total clock buffers.
    pub buffer_count: usize,
    /// Buffers on the top tier (0 for 2-D).
    pub top_buffer_count: usize,
    /// Buffers on the bottom tier.
    pub bottom_buffer_count: usize,
    /// Total buffer area, µm².
    pub buffer_area_um2: f64,
    /// Clock wirelength, mm.
    pub wirelength_mm: f64,
    /// Maximum insertion delay, ns.
    pub max_latency_ns: f64,
    /// Global skew, ns.
    pub max_skew_ns: f64,
    /// Average launch/capture skew over the 100 most critical paths, ns.
    pub avg_skew_100_ns: f64,
}

/// Critical-path anatomy (Table VIII, third block).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CriticalPathReport {
    /// Clock period, ns.
    pub clock_period_ns: f64,
    /// Path slack, ns.
    pub slack_ns: f64,
    /// Launch/capture clock skew, ns.
    pub clock_skew_ns: f64,
    /// Total path delay, ns.
    pub path_delay_ns: f64,
    /// Wire delay along the path, ns.
    pub wire_delay_ns: f64,
    /// Cell delay along the path, ns.
    pub cell_delay_ns: f64,
    /// Cells on the path.
    pub total_cells: usize,
    /// MIV crossings on the path.
    pub mivs: usize,
    /// Cells on the top tier.
    pub top_cells: usize,
    /// Cells on the bottom tier.
    pub bottom_cells: usize,
    /// Cell delay contributed by the top tier, ns.
    pub top_cell_delay_ns: f64,
    /// Cell delay contributed by the bottom tier, ns.
    pub bottom_cell_delay_ns: f64,
}

impl CriticalPathReport {
    /// Average stage delay on the top tier, ns.
    #[must_use]
    pub fn avg_top_delay_ns(&self) -> f64 {
        if self.top_cells > 0 {
            self.top_cell_delay_ns / self.top_cells as f64
        } else {
            0.0
        }
    }

    /// Average stage delay on the bottom tier, ns.
    #[must_use]
    pub fn avg_bottom_delay_ns(&self) -> f64 {
        if self.bottom_cells > 0 {
            self.bottom_cell_delay_ns / self.bottom_cells as f64
        } else {
            0.0
        }
    }
}

/// The full Table VIII data set for one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepDive {
    /// Memory-interconnect block (zeroed when the design has no macros).
    pub memory: MemoryReport,
    /// Clock-network block.
    pub clock: ClockReport,
    /// Critical-path block.
    pub path: CriticalPathReport,
}

/// Computes the Table VIII analyses from a finished implementation.
#[must_use]
pub fn deep_dive(imp: &Implementation) -> DeepDive {
    let netlist = &imp.netlist;
    let parasitics = extract_parasitics(netlist, &imp.placement, &imp.stack, Some(&imp.routing));

    // ---- memory interconnects ------------------------------------------
    let mut in_sq = 0.0;
    let mut in_n = 0usize;
    let mut out_sq = 0.0;
    let mut out_n = 0usize;
    let mut switching_uw = 0.0;
    for (net_id, net) in netlist.nets() {
        if net.is_clock {
            continue;
        }
        let drives_macro = net
            .sinks
            .iter()
            .any(|p| netlist.cell(p.cell).class.is_macro());
        let driven_by_macro = net
            .driver
            .is_some_and(|p| netlist.cell(p.cell).class.is_macro());
        if !drives_macro && !driven_by_macro {
            continue;
        }
        let model = parasitics.net(net_id);
        let lat = model.wire_delay_ns * 1e3; // ps
        if drives_macro {
            in_sq += lat * lat;
            in_n += 1;
        }
        if driven_by_macro {
            out_sq += lat * lat;
            out_n += 1;
        }
        // Switching power of the net at a nominal 0.15 activity.
        let vdd = net
            .driver
            .map_or(0.9, |p| imp.stack.library(imp.tiers[p.cell.index()]).vdd);
        switching_uw += 0.5 * 0.15 * model.wire_cap_ff * vdd * vdd * imp.frequency_ghz;
    }
    let memory = MemoryReport {
        input_net_latency_ps: if in_n > 0 {
            (in_sq / in_n as f64).sqrt()
        } else {
            0.0
        },
        output_net_latency_ps: if out_n > 0 {
            (out_sq / out_n as f64).sqrt()
        } else {
            0.0
        },
        net_switching_power_uw: switching_uw,
        net_count: in_n + out_n,
    };

    // ---- clock network ----------------------------------------------------
    // Rebuild the sign-off timing context (cheap) to extract the top
    // critical paths for the skew and path blocks from `imp.sta`.
    let mut clock_spec = ClockSpec::with_period(1.0 / imp.frequency_ghz);
    clock_spec.latency_ns = imp.clock_tree.sink_latency.clone();
    let lats = imp.clock_tree.latencies();
    if !lats.is_empty() {
        clock_spec.virtual_io_latency_ns = lats.iter().sum::<f64>() / lats.len() as f64;
    }
    let ctx = TimingContext {
        netlist,
        stack: &imp.stack,
        tiers: &imp.tiers,
        parasitics: &parasitics,
        clock: clock_spec,
    };
    // The flow already signed off with this exact context (same netlist,
    // parasitics extraction and clock construction), so reuse its result
    // instead of re-running a full analyze.
    let paths = worst_paths(&ctx, &imp.sta, 100);

    let mut skew_sum = 0.0;
    let mut skew_n = 0usize;
    for p in &paths {
        if p.len() < 2 {
            continue;
        }
        let launch = p.stages[0].cell;
        let capture = p.stages[p.len() - 1].cell;
        skew_sum += imp.clock_tree.pair_skew_ns(launch, capture);
        skew_n += 1;
    }
    let clock = ClockReport {
        buffer_count: imp.clock_tree.buffer_count(),
        top_buffer_count: imp.clock_tree.buffer_count_on(Tier::Top),
        bottom_buffer_count: imp.clock_tree.buffer_count_on(Tier::Bottom),
        buffer_area_um2: imp.clock_tree.buffer_area_um2(&imp.stack),
        wirelength_mm: imp.clock_tree.wirelength_um * 1e-3,
        max_latency_ns: imp.clock_tree.max_latency_ns(),
        max_skew_ns: imp.clock_tree.max_skew_ns(),
        avg_skew_100_ns: if skew_n > 0 {
            skew_sum / skew_n as f64
        } else {
            0.0
        },
    };

    // ---- critical path -----------------------------------------------------
    let path = match paths.first() {
        Some(p) if p.len() >= 2 => {
            let launch = p.stages[0].cell;
            let capture = p.stages[p.len() - 1].cell;
            CriticalPathReport {
                clock_period_ns: 1.0 / imp.frequency_ghz,
                slack_ns: p.slack_ns,
                clock_skew_ns: imp.clock_tree.pair_skew_ns(launch, capture),
                path_delay_ns: p.cell_delay_ns + p.wire_delay_ns,
                wire_delay_ns: p.wire_delay_ns,
                cell_delay_ns: p.cell_delay_ns,
                total_cells: p.len(),
                mivs: p.miv_count(),
                top_cells: p.cells_on(Tier::Top),
                bottom_cells: p.cells_on(Tier::Bottom),
                top_cell_delay_ns: p.cell_delay_on(Tier::Top),
                bottom_cell_delay_ns: p.cell_delay_on(Tier::Bottom),
            }
        }
        _ => CriticalPathReport::default(),
    };

    DeepDive {
        memory,
        clock,
        path,
    }
}

/// Formats a set of deep dives side by side as the Table VIII layout.
#[must_use]
pub fn format_deep_dive(labels: &[&str], dives: &[&DeepDive]) -> String {
    use crate::tables::TextTable;
    let mut header: Vec<String> = vec!["Metric".into(), "Units".into()];
    header.extend(labels.iter().map(|s| (*s).to_string()));
    let mut t = TextTable::new(header);
    let row = |name: &str, unit: &str, get: &dyn Fn(&DeepDive) -> String| {
        let mut cells = vec![name.to_string(), unit.to_string()];
        cells.extend(dives.iter().map(|d| get(d)));
        cells
    };
    let f1 = |v: f64| format!("{v:.1}");
    let f2 = |v: f64| format!("{v:.2}");
    let f3 = |v: f64| format!("{v:.3}");
    t.row(row("Input Net Latency", "ps", &|d| {
        f1(d.memory.input_net_latency_ps)
    }));
    t.row(row("Output Net Latency", "ps", &|d| {
        f1(d.memory.output_net_latency_ps)
    }));
    t.row(row("Net Switching Power", "uW", &|d| {
        f2(d.memory.net_switching_power_uw)
    }));
    t.row(row("Buffer Count", "", &|d| {
        d.clock.buffer_count.to_string()
    }));
    t.row(row("Top Buffer Count", "", &|d| {
        d.clock.top_buffer_count.to_string()
    }));
    t.row(row("Bottom Buffer Count", "", &|d| {
        d.clock.bottom_buffer_count.to_string()
    }));
    t.row(row("Buffer Area", "um2", &|d| f1(d.clock.buffer_area_um2)));
    t.row(row("Clock WL", "mm", &|d| f3(d.clock.wirelength_mm)));
    t.row(row("Max Latency", "ns", &|d| f3(d.clock.max_latency_ns)));
    t.row(row("Max Skew", "ns", &|d| f3(d.clock.max_skew_ns)));
    t.row(row("100 Path Avg. Skew", "ns", &|d| {
        f3(d.clock.avg_skew_100_ns)
    }));
    t.row(row("Clock Period", "ns", &|d| f3(d.path.clock_period_ns)));
    t.row(row("Slack", "ns", &|d| f3(d.path.slack_ns)));
    t.row(row("Clock Skew", "ns", &|d| f3(d.path.clock_skew_ns)));
    t.row(row("Path Delay", "ns", &|d| f3(d.path.path_delay_ns)));
    t.row(row("Wire Delay", "ns", &|d| f3(d.path.wire_delay_ns)));
    t.row(row("Cell Delay", "ns", &|d| f3(d.path.cell_delay_ns)));
    t.row(row("Total Cells", "", &|d| d.path.total_cells.to_string()));
    t.row(row("# MIVs", "", &|d| d.path.mivs.to_string()));
    t.row(row("Top Cells", "", &|d| d.path.top_cells.to_string()));
    t.row(row("Top Cell Delay", "ns", &|d| {
        f3(d.path.top_cell_delay_ns)
    }));
    t.row(row("Avg. Top Delay", "ns", &|d| {
        f3(d.path.avg_top_delay_ns())
    }));
    t.row(row("Bottom Cells", "", &|d| {
        d.path.bottom_cells.to_string()
    }));
    t.row(row("Bottom Cell Delay", "ns", &|d| {
        f3(d.path.bottom_cell_delay_ns)
    }));
    t.row(row("Avg. Bottom Delay", "ns", &|d| {
        f3(d.path.avg_bottom_delay_ns())
    }));
    t.render()
}

/// Formats a telemetry [`Manifest`](m3d_obs::Manifest) as the deep dive's
/// runtime section: the stage-span tree with call counts, wall time and
/// share of the total, followed by the deterministic counters and gauges.
///
/// Collect the manifest by attaching [`m3d_obs::Obs::enabled`] to
/// `FlowOptions::obs` before the run; an empty manifest (telemetry
/// disabled) renders as a note instead of empty tables.
#[must_use]
pub fn format_runtime(manifest: &m3d_obs::Manifest) -> String {
    use crate::tables::TextTable;
    if manifest.spans.is_empty() && manifest.counters.is_empty() {
        return "Runtime: no telemetry collected (FlowOptions::obs disabled)\n".to_string();
    }
    // Share is relative to the longest recorded span: the outermost stage
    // of whatever entry point ran (run_flow, find_fmax, compare_configs).
    let total_ns = manifest
        .spans
        .iter()
        .map(|s| s.wall_ns)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut spans = TextTable::new(vec!["Stage", "Calls", "Wall ms", "Share %"]);
    for s in &manifest.spans {
        let depth = s.path.matches('/').count();
        let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
        spans.row(vec![
            format!("{}{leaf}", "  ".repeat(depth)),
            s.calls.to_string(),
            format!("{:.3}", s.wall_ns as f64 / 1e6),
            format!("{:.1}", 100.0 * s.wall_ns as f64 / total_ns as f64),
        ]);
    }
    let mut metrics = TextTable::new(vec!["Metric", "Value"]);
    for (k, v) in &manifest.counters {
        metrics.row(vec![k.clone(), v.to_string()]);
    }
    for (k, v) in &manifest.gauges {
        metrics.row(vec![k.clone(), format!("{v:.3}")]);
    }
    for (k, v) in &manifest.labels {
        metrics.row(vec![k.clone(), v.clone()]);
    }
    format!(
        "Runtime (stage spans)\n{}\nRuntime (metrics)\n{}",
        spans.render(),
        metrics.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_flow::{try_run_flow, Config, FlowOptions};

    #[test]
    fn deep_dive_on_cpu_populates_all_blocks() {
        let n = m3d_netgen::Benchmark::Cpu.generate(0.02, 51);
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 6;
        let imp = try_run_flow(&n, Config::Hetero3d, 1.0, &o).expect("flow");
        let dive = deep_dive(&imp);
        assert!(dive.memory.net_count > 0, "CPU has macro nets");
        assert!(dive.memory.input_net_latency_ps >= 0.0);
        assert!(dive.clock.buffer_count > 0);
        assert!(dive.path.total_cells >= 2);
        assert!(dive.path.path_delay_ns > 0.0);
        let text = format_deep_dive(&["Hetero 3D"], &[&dive]);
        assert!(text.contains("Buffer Count"));
        assert!(text.contains("Avg. Top Delay"));
    }

    #[test]
    fn runtime_section_formats_an_instrumented_run() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.01, 3);
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 6;
        o.obs = m3d_obs::Obs::enabled();
        let obs = o.obs.clone();
        let _ = try_run_flow(&n, Config::Hetero3d, 1.0, &o).expect("flow");
        let text = format_runtime(&obs.manifest());
        assert!(text.contains("run_flow"), "span tree lists the flow root");
        assert!(
            text.contains("partition/final_cut"),
            "counters listed:\n{text}"
        );
        assert!(text.contains("Share %"));
        let empty = format_runtime(&m3d_obs::Manifest::default());
        assert!(empty.contains("no telemetry"));
    }

    #[test]
    fn hetero_critical_path_prefers_fast_tier() {
        // Table VIII's key observation: most critical-path cells sit on
        // the fast (bottom) tier, and the slow tier's average stage delay
        // is larger.
        let n = m3d_netgen::Benchmark::Cpu.generate(0.025, 51);
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 6;
        let imp = try_run_flow(&n, Config::Hetero3d, 1.3, &o).expect("flow");
        let dive = deep_dive(&imp);
        assert!(
            dive.path.bottom_cells >= dive.path.top_cells,
            "bottom {} vs top {}",
            dive.path.bottom_cells,
            dive.path.top_cells
        );
        if dive.path.top_cells > 2 && dive.path.bottom_cells > 2 {
            assert!(
                dive.path.avg_top_delay_ns() > dive.path.avg_bottom_delay_ns(),
                "slow tier avg {} vs fast {}",
                dive.path.avg_top_delay_ns(),
                dive.path.avg_bottom_delay_ns()
            );
        }
    }
}
