//! Reporting: the paper's tables as formatted text, deep-dive analyses
//! (Table VIII) and SVG renderings of the layout figures (Figs. 1, 3, 4).
//!
//! Every regeneration binary in `m3d-bench` funnels through this crate so
//! the printed rows match the paper's row/column structure exactly.
//!
//! # Examples
//!
//! ```
//! use m3d_report::TextTable;
//!
//! let mut t = TextTable::new(vec!["metric", "value"]);
//! t.row(vec!["Frequency".into(), "1.200".into()]);
//! assert!(t.render().contains("Frequency"));
//! ```

mod deep_dive;
mod ranking;
mod svg;
mod tables;

pub use deep_dive::{
    deep_dive, format_deep_dive, format_runtime, ClockReport, CriticalPathReport, DeepDive,
    MemoryReport,
};
pub use ranking::{qualitative_ranking, RankTable};
pub use svg::{render_config_cartoon, render_layout, render_overlays, LayerChoice};
pub use tables::{format_comparison, format_ppac, format_table5, format_table7, TextTable};
