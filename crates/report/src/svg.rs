//! SVG renderings of the paper's figures: configuration cartoons (Fig. 1),
//! placement/routing layouts (Fig. 3) and clock / memory-net /
//! critical-path overlays (Fig. 4).

use m3d_flow::Implementation;
use m3d_netlist::CellClass;
use m3d_sta::{worst_paths, ClockSpec, TimingContext};
use m3d_tech::Tier;
use std::fmt::Write as _;

/// Which content to render in a layout view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerChoice {
    /// Both tiers overlaid (bottom blue, top orange).
    Both,
    /// Bottom tier only.
    Bottom,
    /// Top tier only.
    Top,
}

const SVG_SIZE: f64 = 600.0;

fn svg_header(out: &mut String, title: &str) {
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{s}" height="{s}" viewBox="0 0 {s} {s}">"#,
        s = SVG_SIZE + 40.0
    );
    let _ = writeln!(
        out,
        r#"<text x="10" y="18" font-family="monospace" font-size="14">{title}</text>"#
    );
}

/// Renders the placement of an implementation as SVG (Fig. 3-style).
///
/// Gates are drawn as small rectangles colored by tier, macros as gray
/// blocks, the die outline in black.
#[must_use]
pub fn render_layout(imp: &Implementation, layers: LayerChoice, title: &str) -> String {
    let die = imp.floorplan.die;
    let scale = SVG_SIZE / die.width().max(die.height());
    let tx = |x: f64| 20.0 + (x - die.llx()) * scale;
    let ty = |y: f64| 20.0 + (die.ury() - y) * scale; // flip y

    let mut out = String::new();
    svg_header(&mut out, title);
    let _ = writeln!(
        out,
        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="white" stroke="black"/>"#,
        tx(die.llx()),
        ty(die.ury()),
        die.width() * scale,
        die.height() * scale
    );
    // Macros.
    for (_, _, r) in &imp.floorplan.macros {
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#b0b0b0" stroke="#606060"/>"##,
            tx(r.llx()),
            ty(r.ury()),
            r.width() * scale,
            r.height() * scale
        );
    }
    // Cells.
    for (id, cell) in imp.netlist.cells() {
        if !cell.class.is_gate() {
            continue;
        }
        let tier = imp.tiers[id.index()];
        let draw = match layers {
            LayerChoice::Both => true,
            LayerChoice::Bottom => tier == Tier::Bottom,
            LayerChoice::Top => tier == Tier::Top,
        };
        if !draw {
            continue;
        }
        let (kind, drive) = match &cell.class {
            CellClass::Gate { kind, drive } => (*kind, *drive),
            _ => unreachable!(),
        };
        let lib = imp.stack.library(tier);
        let (w, h) = lib
            .cell(kind, drive)
            .map_or((0.3, 1.0), |m| (m.width_um, m.height_um));
        let p = imp.placement.positions[id.index()];
        let color = match tier {
            Tier::Bottom => "#4878cf",
            Tier::Top => "#e8853d",
        };
        let _ = writeln!(
            out,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{color}" fill-opacity="0.7"/>"#,
            tx(p.x - w * 0.5),
            ty(p.y + h * 0.5),
            (w * scale).max(0.5),
            (h * scale).max(0.5)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders Fig. 4-style overlays: the clock tree (green), memory nets
/// (yellow/magenta) and the worst critical path (red) over a faint
/// placement.
#[must_use]
pub fn render_overlays(imp: &Implementation, title: &str) -> String {
    let die = imp.floorplan.die;
    let scale = SVG_SIZE / die.width().max(die.height());
    let tx = |x: f64| 20.0 + (x - die.llx()) * scale;
    let ty = |y: f64| 20.0 + (die.ury() - y) * scale;

    let mut out = String::new();
    svg_header(&mut out, title);
    let _ = writeln!(
        out,
        r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#f8f8f8" stroke="black"/>"##,
        tx(die.llx()),
        ty(die.ury()),
        die.width() * scale,
        die.height() * scale
    );
    for (_, _, r) in &imp.floorplan.macros {
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#d0d0d0" stroke="#808080"/>"##,
            tx(r.llx()),
            ty(r.ury()),
            r.width() * scale,
            r.height() * scale
        );
    }

    // Clock tree edges (green).
    for node in &imp.clock_tree.nodes {
        for child in &node.children {
            let cpos = match child {
                m3d_cts::ClockChild::Node(ci) => imp.clock_tree.nodes[*ci].pos,
                m3d_cts::ClockChild::Sink(id) => imp.placement.positions[id.index()],
            };
            let _ = writeln!(
                out,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#3a9e4c" stroke-width="0.7"/>"##,
                tx(node.pos.x),
                ty(node.pos.y),
                tx(cpos.x),
                ty(cpos.y)
            );
        }
    }

    // Memory nets: to-macro yellow, from-macro magenta.
    for (_, net) in imp.netlist.nets() {
        if net.is_clock {
            continue;
        }
        let Some(drv) = net.driver else { continue };
        let driven_by_macro = imp.netlist.cell(drv.cell).class.is_macro();
        for sink in &net.sinks {
            let drives_macro = imp.netlist.cell(sink.cell).class.is_macro();
            if !driven_by_macro && !drives_macro {
                continue;
            }
            let color = if driven_by_macro {
                "#cc41b0"
            } else {
                "#d9b42a"
            };
            let a = imp.placement.positions[drv.cell.index()];
            let b = imp.placement.positions[sink.cell.index()];
            let _ = writeln!(
                out,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="0.8"/>"#,
                tx(a.x),
                ty(a.y),
                tx(b.x),
                ty(b.y)
            );
        }
    }

    // Worst critical path (red polyline).
    let parasitics =
        m3d_route::extract_parasitics(&imp.netlist, &imp.placement, &imp.stack, Some(&imp.routing));
    let mut clock = ClockSpec::with_period(1.0 / imp.frequency_ghz);
    clock.latency_ns = imp.clock_tree.sink_latency.clone();
    let lats = imp.clock_tree.latencies();
    if !lats.is_empty() {
        clock.virtual_io_latency_ns = lats.iter().sum::<f64>() / lats.len() as f64;
    }
    let ctx = TimingContext {
        netlist: &imp.netlist,
        stack: &imp.stack,
        tiers: &imp.tiers,
        parasitics: &parasitics,
        clock,
    };
    // Path extraction reuses the flow's sign-off result (computed with
    // this exact context) instead of re-running a full analyze.
    if let Some(p) = worst_paths(&ctx, &imp.sta, 1).first() {
        let pts: Vec<String> = p
            .stages
            .iter()
            .map(|s| {
                let q = imp.placement.positions[s.cell.index()];
                format!("{:.1},{:.1}", tx(q.x), ty(q.y))
            })
            .collect();
        let _ = writeln!(
            out,
            r##"<polyline points="{}" fill="none" stroke="#d62020" stroke-width="1.6"/>"##,
            pts.join(" ")
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the Fig. 1 configuration cartoon: five stacks of labeled dies.
#[must_use]
pub fn render_config_cartoon() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="900" height="240" viewBox="0 0 900 240">"#
    );
    let configs: [(&str, &[(&str, &str)]); 5] = [
        ("(a) 12T 2D", &[("12-track @0.90V", "#4878cf")]),
        ("(b) 9T 2D", &[("9-track @0.81V", "#e8853d")]),
        (
            "(c) 12T 3D",
            &[("12-track", "#4878cf"), ("12-track", "#4878cf")],
        ),
        (
            "(d) 9T 3D",
            &[("9-track", "#e8853d"), ("9-track", "#e8853d")],
        ),
        (
            "(e) Hetero 3D",
            &[("9-track top", "#e8853d"), ("12-track bottom", "#4878cf")],
        ),
    ];
    for (i, (label, dies)) in configs.iter().enumerate() {
        let x = 20.0 + i as f64 * 175.0;
        let _ = writeln!(
            out,
            r#"<text x="{x}" y="30" font-family="monospace" font-size="13">{label}</text>"#
        );
        for (j, (name, color)) in dies.iter().enumerate() {
            let w = if dies.len() == 1 { 150.0 } else { 106.0 };
            let y = 60.0 + j as f64 * 50.0;
            let _ = writeln!(
                out,
                r#"<rect x="{x}" y="{y}" width="{w}" height="40" fill="{color}" fill-opacity="0.8" stroke="black"/>"#
            );
            let _ = writeln!(
                out,
                r#"<text x="{tx}" y="{ty}" font-family="monospace" font-size="10" fill="white">{name}</text>"#,
                tx = x + 5.0,
                ty = y + 24.0
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_flow::{try_run_flow, Config, FlowOptions};

    #[test]
    fn layout_svg_is_well_formed() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.01, 61);
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 4;
        let imp = try_run_flow(&n, Config::Hetero3d, 1.0, &o).expect("flow");
        let svg = render_layout(&imp, LayerChoice::Both, "aes hetero");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.matches("<rect").count() > 50);
        // Both tier colors present.
        assert!(svg.contains("#4878cf"));
        assert!(svg.contains("#e8853d"));
    }

    #[test]
    fn overlay_svg_contains_clock_and_path() {
        let n = m3d_netgen::Benchmark::Cpu.generate(0.012, 61);
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 4;
        let imp = try_run_flow(&n, Config::Hetero3d, 1.0, &o).expect("flow");
        let svg = render_overlays(&imp, "cpu overlays");
        assert!(svg.contains("polyline"), "critical path missing");
        assert!(svg.contains("#3a9e4c"), "clock tree missing");
        assert!(
            svg.contains("#d9b42a") || svg.contains("#cc41b0"),
            "memory nets missing"
        );
    }

    #[test]
    fn cartoon_lists_all_five_configs() {
        let svg = render_config_cartoon();
        for label in ["(a)", "(b)", "(c)", "(d)", "(e)"] {
            assert!(svg.contains(label));
        }
    }
}
