use m3d_flow::{BaselineComparison, Comparison, Ppac};
use std::fmt::Write as _;

/// A minimal fixed-width text-table builder.
///
/// Columns auto-size to their widest cell; the first column is
/// left-aligned, the rest right-aligned — the layout of the paper's
/// tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given header.
    #[must_use]
    pub fn new(header: Vec<impl Into<String>>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats one configuration's PPAC metrics as a Table VI column block.
#[must_use]
pub fn format_ppac(p: &Ppac) -> TextTable {
    let mut t = TextTable::new(vec!["Metric", "Units", p.config.to_string().as_str()]);
    t.row(vec![
        "Frequency".into(),
        "GHz".into(),
        f(p.frequency_ghz, 3),
    ]);
    t.row(vec!["Area".into(), "mm2".into(), f(p.si_area_mm2, 4)]);
    t.row(vec![
        "Chip Width".into(),
        "um".into(),
        f(p.chip_width_um, 0),
    ]);
    t.row(vec!["Density".into(), "%".into(), f(p.density_pct, 0)]);
    t.row(vec!["WL".into(), "mm".into(), f(p.wirelength_mm, 2)]);
    t.row(vec!["# MIVs".into(), "".into(), p.mivs.to_string()]);
    t.row(vec![
        "Total Power".into(),
        "mW".into(),
        f(p.total_power_mw, 2),
    ]);
    t.row(vec!["WNS".into(), "ns".into(), f(p.wns_ns, 3)]);
    t.row(vec!["TNS".into(), "ns".into(), f(p.tns_ns, 2)]);
    t.row(vec![
        "Effective Delay".into(),
        "ns".into(),
        f(p.effective_delay_ns, 3),
    ]);
    t.row(vec!["PDP".into(), "pJ".into(), f(p.pdp_pj, 2)]);
    t.row(vec![
        "Die Cost".into(),
        "1e-6 C'".into(),
        f(p.die_cost_uc, 3),
    ]);
    t.row(vec![
        "Cost per cm2".into(),
        "1e-6 C'/cm2".into(),
        f(p.cost_per_cm2_uc, 2),
    ]);
    t.row(vec!["PPC".into(), "GHz/(mW*1e-6C')".into(), f(p.ppc, 3)]);
    t
}

/// Formats Table VI: raw hetero PPAC for several designs side by side.
#[must_use]
pub fn format_comparison(comparisons: &[&Comparison]) -> String {
    let mut header: Vec<String> = vec!["Metric".into(), "Units".into()];
    header.extend(comparisons.iter().map(|c| c.design.clone()));
    let mut t = TextTable::new(header);
    let row = |name: &str, unit: &str, get: &dyn Fn(&Ppac) -> String| {
        let mut cells = vec![name.to_string(), unit.to_string()];
        cells.extend(comparisons.iter().map(|c| get(&c.hetero)));
        cells
    };
    t.row(row("Frequency", "GHz", &|p| f(p.frequency_ghz, 3)));
    t.row(row("Area", "mm2", &|p| f(p.si_area_mm2, 4)));
    t.row(row("Chip Width", "um", &|p| f(p.chip_width_um, 0)));
    t.row(row("Density", "%", &|p| f(p.density_pct, 0)));
    t.row(row("WL", "mm", &|p| f(p.wirelength_mm, 2)));
    t.row(row("# MIVs", "", &|p| p.mivs.to_string()));
    t.row(row("Total Power", "mW", &|p| f(p.total_power_mw, 2)));
    t.row(row("WNS", "ns", &|p| f(p.wns_ns, 3)));
    t.row(row("TNS", "ns", &|p| f(p.tns_ns, 2)));
    t.row(row("Effective Delay", "ns", &|p| {
        f(p.effective_delay_ns, 3)
    }));
    t.row(row("PDP", "pJ", &|p| f(p.pdp_pj, 2)));
    t.row(row("Die Cost", "1e-6 C'", &|p| f(p.die_cost_uc, 3)));
    t.row(row("PPC", "", &|p| f(p.ppc, 3)));
    t.render()
}

/// Formats Table VII: percent deltas of hetero vs each homogeneous config
/// for a set of designs.
#[must_use]
pub fn format_table7(comparisons: &[&Comparison]) -> String {
    let mut out = String::new();
    for (ci, config) in m3d_flow::Config::HOMOGENEOUS.iter().enumerate() {
        let _ = writeln!(out, "### vs {config}");
        let mut header: Vec<String> = vec!["Metric".into()];
        header.extend(comparisons.iter().map(|c| c.design.clone()));
        let mut t = TextTable::new(header);
        let row = |name: &str, get: &dyn Fn(&m3d_flow::DeltaRow) -> String| {
            let mut cells = vec![name.to_string()];
            cells.extend(comparisons.iter().map(|c| get(&c.deltas[ci])));
            cells
        };
        t.row(row("Si Area %", &|d| f(d.si_area, 1)));
        t.row(row("Density %", &|d| f(d.density, 1)));
        t.row(row("WL %", &|d| f(d.wirelength, 1)));
        t.row(row("Total Power %", &|d| f(d.total_power, 1)));
        t.row(row("Eff. Delay %", &|d| f(d.effective_delay, 1)));
        t.row(row("PDP %", &|d| f(d.pdp, 1)));
        t.row(row("Die Cost %", &|d| f(d.die_cost, 1)));
        t.row(row("Cost per cm2 %", &|d| f(d.cost_per_cm2, 2)));
        t.row(row("PPC %", &|d| f(d.ppc, 1)));
        t.row(row("Width (um)", &|d| f(d.width_um, 0)));
        t.row(row("WNS (ns)", &|d| f(d.wns_ns, 3)));
        t.row(row("TNS (ns)", &|d| f(d.tns_ns, 2)));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Formats Table V: Pin-3-D baseline vs Hetero-Pin-3-D.
#[must_use]
pub fn format_table5(cmp: &BaselineComparison) -> String {
    let mut t = TextTable::new(vec!["Metric", "Units", "Pin-3D", "Hetero-Pin-3D"]);
    t.row(vec![
        "Frequency".into(),
        "GHz".into(),
        f(cmp.frequency_ghz, 3),
        f(cmp.frequency_ghz, 3),
    ]);
    t.row(vec![
        "WL".into(),
        "mm".into(),
        f(cmp.pin3d.wirelength_mm, 2),
        f(cmp.hetero_pin3d.wirelength_mm, 2),
    ]);
    t.row(vec![
        "WNS".into(),
        "ns".into(),
        f(cmp.pin3d.wns_ns, 3),
        f(cmp.hetero_pin3d.wns_ns, 3),
    ]);
    t.row(vec![
        "Total Power".into(),
        "mW".into(),
        f(cmp.pin3d.total_power_mw, 2),
        f(cmp.hetero_pin3d.total_power_mw, 2),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }
}
