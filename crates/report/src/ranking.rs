//! Table I: qualitative 1–5 ranking of the five configurations.

use m3d_flow::{Config, Ppac};

/// A rank table: metric name → per-configuration rank (1 = worst,
/// 5 = best), in [`Config::ALL`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTable {
    /// Metric labels (rows).
    pub metrics: Vec<&'static str>,
    /// `ranks[row][config]`, config order = [`Config::ALL`].
    pub ranks: Vec<[u8; 5]>,
}

impl RankTable {
    /// Renders the ranking with configuration headers.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = crate::tables::TextTable::new(
            std::iter::once("Metric".to_string())
                .chain(Config::ALL.iter().map(ToString::to_string))
                .collect::<Vec<_>>(),
        );
        for (m, r) in self.metrics.iter().zip(&self.ranks) {
            let mut row = vec![(*m).to_string()];
            row.extend(r.iter().map(ToString::to_string));
            t.row(row);
        }
        t.render()
    }
}

/// Ranks five measured implementations on the Table I metrics.
///
/// `ppacs` must hold one entry per configuration. Higher rank = better:
/// higher achieved frequency, lower power, lower power/freq, smaller
/// footprint, smaller silicon, cheaper die.
///
/// # Panics
///
/// Panics if `ppacs` does not contain all five configurations.
#[must_use]
pub fn qualitative_ranking(ppacs: &[Ppac]) -> RankTable {
    let get = |config: Config| -> &Ppac {
        ppacs
            .iter()
            .find(|p| p.config == config)
            .unwrap_or_else(|| panic!("missing configuration {config}"))
    };
    let ordered: Vec<&Ppac> = Config::ALL.iter().map(|&c| get(c)).collect();

    // Rank helper: score per config; higher score -> higher rank.
    let rank_by = |score: &dyn Fn(&Ppac) -> f64| -> [u8; 5] {
        let scores: Vec<f64> = ordered.iter().map(|p| score(p)).collect();
        let mut idx: Vec<usize> = (0..5).collect();
        idx.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ranks = [0u8; 5];
        for (rank0, &i) in idx.iter().enumerate() {
            ranks[i] = rank0 as u8 + 1;
        }
        ranks
    };

    let metrics = vec![
        "Frequency",
        "Power",
        "Power/Freq",
        "Footprint",
        "Si Area",
        "Die Cost",
    ];
    let achieved = |p: &Ppac| 1.0 / p.effective_delay_ns.max(1e-9);
    let ranks = vec![
        rank_by(&|p| achieved(p)),
        rank_by(&|p| -p.total_power_mw),
        rank_by(&|p| achieved(p) / p.total_power_mw.max(1e-12)),
        rank_by(&|p| -p.footprint_mm2),
        rank_by(&|p| -p.si_area_mm2),
        rank_by(&|p| -p.die_cost_uc),
    ];
    RankTable { metrics, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_power::PowerResult;

    fn fake(config: Config, freq_eff: f64, power: f64, footprint: f64, si: f64, cost: f64) -> Ppac {
        Ppac {
            config,
            frequency_ghz: 1.0,
            footprint_mm2: footprint,
            si_area_mm2: si,
            chip_width_um: 100.0,
            density_pct: 80.0,
            wirelength_mm: 1.0,
            mivs: 0,
            power: PowerResult::default(),
            total_power_mw: power,
            wns_ns: 0.0,
            tns_ns: 0.0,
            effective_delay_ns: 1.0 / freq_eff,
            pdp_pj: power / freq_eff,
            die_cost_uc: cost,
            cost_per_cm2_uc: cost / si,
            ppc: freq_eff / (power * cost),
        }
    }

    #[test]
    fn ranking_matches_table_one_expectations() {
        // Construct metrics following Table I's ideal behavior.
        let ppacs = vec![
            // 12T 2D: rank 3 freq, 1 power, big area.
            fake(Config::TwoD12T, 3.0, 4.0, 1.0, 1.0, 4.0),
            // 9T 2D: slowest, frugal, small Si.
            fake(Config::TwoD9T, 1.0, 1.5, 0.75, 0.75, 2.0),
            // 12T 3D: fastest, most power, expensive.
            fake(Config::ThreeD12T, 5.0, 3.5, 0.5, 1.0, 5.0),
            // 9T 3D: second slowest, least power.
            fake(Config::ThreeD9T, 2.0, 1.0, 0.375, 0.75, 3.0),
            // Hetero: rank 4 freq, middle power, middle cost.
            fake(Config::Hetero3d, 4.0, 2.0, 0.44, 0.875, 3.5),
        ];
        let table = qualitative_ranking(&ppacs);
        // Frequency row (Config::ALL order: 12T2D, 9T2D, 12T3D, 9T3D, Het):
        assert_eq!(table.ranks[0], [3, 1, 5, 2, 4]);
        // Power row: lower power = better rank.
        assert_eq!(table.ranks[1], [1, 4, 2, 5, 3]);
        // Die cost row.
        assert_eq!(table.ranks[5], [2, 5, 1, 4, 3]);
        assert!(table.render().contains("Frequency"));
    }

    #[test]
    #[should_panic(expected = "missing configuration")]
    fn missing_config_panics() {
        let ppacs = vec![fake(Config::TwoD12T, 1.0, 1.0, 1.0, 1.0, 1.0)];
        let _ = qualitative_ranking(&ppacs);
    }
}
