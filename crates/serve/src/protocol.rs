//! The wire protocol: newline-delimited JSON framing over a byte
//! stream, a typed [`ProtocolError`] for malformed input, and the
//! [`Response`] envelope every request is answered with.
//!
//! One request per line, one response per line. Responses carry the
//! request's `id`, so a client may pipeline requests and match replies
//! out of order. A line that fails to decode is answered with a
//! [`RejectKind::Protocol`] rejection (never a dropped connection, a
//! panic or a hang), echoing the `id` when one can be salvaged from the
//! malformed line.
//!
//! Protocol **v2** adds one streaming request shape: a `sweep` command
//! (sent with `"proto": 2`) is answered not with a single response line
//! but with a framed stream of [`StreamEvent`] lines — `progress`, one
//! `point`/`error` per grid point, and a terminal `done` — each carrying
//! the request's `id` (and, for per-point events, the point `index` in
//! the sweep's deterministic scenario-major order). Event lines are
//! distinguished from v1 responses by `"status": "event"`, so a v1
//! client that never sends a sweep never sees one; [`decode_message`]
//! decodes either shape.

use m3d_flow::{FlowReport, FlowRequest};
use m3d_json::{
    decode_borrowed, parse, parse_borrowed, Cur, DecodeError, FromJson, JsonError, Obj, ToJson,
    Value,
};
use std::fmt;

/// Why the service rejected a request (the `kind` of a rejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The line was not a well-formed request: bad JSON, or JSON of the
    /// wrong shape.
    Protocol,
    /// The flow itself failed (invalid netlist, bad frequency, stage
    /// error).
    Flow,
    /// The queue was at capacity; the request was never accepted.
    /// Back off and retry.
    Overloaded,
    /// The request sat in the queue past its deadline and was dropped
    /// without running.
    Deadline,
    /// The server is draining and accepts no new work.
    Shutdown,
}

impl RejectKind {
    fn wire_name(self) -> &'static str {
        match self {
            RejectKind::Protocol => "protocol",
            RejectKind::Flow => "flow",
            RejectKind::Overloaded => "overloaded",
            RejectKind::Deadline => "deadline",
            RejectKind::Shutdown => "shutdown",
        }
    }

    fn from_wire(cur: &Cur<'_>) -> Result<RejectKind, DecodeError> {
        match cur.str()? {
            "protocol" => Ok(RejectKind::Protocol),
            "flow" => Ok(RejectKind::Flow),
            "overloaded" => Ok(RejectKind::Overloaded),
            "deadline" => Ok(RejectKind::Deadline),
            "shutdown" => Ok(RejectKind::Shutdown),
            _ => Err(DecodeError::new(
                cur.path(),
                "a reject kind (protocol|flow|overloaded|deadline|shutdown)",
            )),
        }
    }
}

impl fmt::Display for RejectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One response line: either the command's report, or a typed
/// rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request ran to completion.
    Ok {
        /// Echo of the request's correlation id.
        id: u64,
        /// Whether the checkpoint cache already held the request's
        /// `(netlist fingerprint, options fingerprint)` session.
        cache_hit: bool,
        /// The command's result (boxed: a report dwarfs a rejection).
        report: Box<FlowReport>,
    },
    /// The request was rejected (or failed).
    Rejected {
        /// Echo of the request's id, when one was decodable.
        id: Option<u64>,
        /// Why.
        kind: RejectKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Builds a rejection.
    #[must_use]
    pub fn reject(id: Option<u64>, kind: RejectKind, message: impl Into<String>) -> Response {
        Response::Rejected {
            id,
            kind,
            message: message.into(),
        }
    }

    /// The correlation id, when known.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        match self {
            Response::Ok { id, .. } => Some(*id),
            Response::Rejected { id, .. } => *id,
        }
    }

    /// Whether this is a successful response.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }

    /// The rejection kind, when rejected.
    #[must_use]
    pub fn reject_kind(&self) -> Option<RejectKind> {
        match self {
            Response::Ok { .. } => None,
            Response::Rejected { kind, .. } => Some(*kind),
        }
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Value {
        match self {
            Response::Ok {
                id,
                cache_hit,
                report,
            } => Obj::new()
                .put("id", *id)
                .put("status", "ok")
                .put("cache_hit", *cache_hit)
                .put("report", report.to_json())
                .build(),
            Response::Rejected { id, kind, message } => {
                let mut o = Obj::new();
                if let Some(id) = id {
                    o = o.put("id", *id);
                }
                o.put("status", "rejected")
                    .put("kind", kind.wire_name())
                    .put("message", message.as_str())
                    .build()
            }
        }
    }
}

impl FromJson for Response {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let status = cur.get("status")?;
        match status.str()? {
            "ok" => Ok(Response::Ok {
                id: cur.get("id")?.u64()?,
                cache_hit: cur.get("cache_hit")?.bool()?,
                report: Box::new(FlowReport::from_json(cur.get("report")?)?),
            }),
            "rejected" => Ok(Response::Rejected {
                id: cur.opt("id").map(|c| c.u64()).transpose()?,
                kind: RejectKind::from_wire(&cur.get("kind")?)?,
                message: cur.get("message")?.str()?.to_string(),
            }),
            _ => Err(DecodeError::new(status.path(), "a status (ok|rejected)")),
        }
    }
}

/// One event line in a protocol-v2 sweep stream. Every event carries
/// the originating request's `id`; per-point events add the point's
/// `index` in the sweep's deterministic scenario-major order.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Emitted once, before any point: the sweep was admitted and will
    /// produce `total` per-point events followed by `done`.
    Progress {
        /// Echo of the sweep request's id.
        id: u64,
        /// Number of grid points the sweep decomposes into.
        total: u64,
    },
    /// One grid point completed.
    Point {
        /// Echo of the sweep request's id.
        id: u64,
        /// The point's index in scenario-major order.
        index: u64,
        /// Whether the point's scenario session was already cached.
        cache_hit: bool,
        /// The point's flow report (a `run` report).
        report: Box<FlowReport>,
    },
    /// One grid point failed; the rest of the sweep continues.
    Error {
        /// Echo of the sweep request's id.
        id: u64,
        /// The point's index in scenario-major order.
        index: u64,
        /// Why, using the same taxonomy as v1 rejections.
        kind: RejectKind,
        /// Human-readable detail.
        message: String,
    },
    /// Terminal event: every point is accounted for. After `done`,
    /// no further event with this `id` will arrive.
    Done {
        /// Echo of the sweep request's id.
        id: u64,
        /// Points that completed and streamed a `point` event.
        points: u64,
        /// Points that failed and streamed an `error` event.
        errors: u64,
    },
}

impl StreamEvent {
    /// The originating request's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            StreamEvent::Progress { id, .. }
            | StreamEvent::Point { id, .. }
            | StreamEvent::Error { id, .. }
            | StreamEvent::Done { id, .. } => *id,
        }
    }

    /// Whether this is the stream's terminal event.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, StreamEvent::Done { .. })
    }
}

impl ToJson for StreamEvent {
    fn to_json(&self) -> Value {
        let o = Obj::new();
        match self {
            StreamEvent::Progress { id, total } => o
                .put("id", *id)
                .put("status", "event")
                .put("event", "progress")
                .put("total", *total)
                .build(),
            StreamEvent::Point {
                id,
                index,
                cache_hit,
                report,
            } => o
                .put("id", *id)
                .put("status", "event")
                .put("event", "point")
                .put("index", *index)
                .put("cache_hit", *cache_hit)
                .put("report", report.to_json())
                .build(),
            StreamEvent::Error {
                id,
                index,
                kind,
                message,
            } => o
                .put("id", *id)
                .put("status", "event")
                .put("event", "error")
                .put("index", *index)
                .put("kind", kind.wire_name())
                .put("message", message.as_str())
                .build(),
            StreamEvent::Done { id, points, errors } => o
                .put("id", *id)
                .put("status", "event")
                .put("event", "done")
                .put("points", *points)
                .put("errors", *errors)
                .build(),
        }
    }
}

impl FromJson for StreamEvent {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let id = cur.get("id")?.u64()?;
        let event = cur.get("event")?;
        match event.str()? {
            "progress" => Ok(StreamEvent::Progress {
                id,
                total: cur.get("total")?.u64()?,
            }),
            "point" => Ok(StreamEvent::Point {
                id,
                index: cur.get("index")?.u64()?,
                cache_hit: cur.get("cache_hit")?.bool()?,
                report: Box::new(FlowReport::from_json(cur.get("report")?)?),
            }),
            "error" => Ok(StreamEvent::Error {
                id,
                index: cur.get("index")?.u64()?,
                kind: RejectKind::from_wire(&cur.get("kind")?)?,
                message: cur.get("message")?.str()?.to_string(),
            }),
            "done" => Ok(StreamEvent::Done {
                id,
                points: cur.get("points")?.u64()?,
                errors: cur.get("errors")?.u64()?,
            }),
            _ => Err(DecodeError::new(
                event.path(),
                "an event (progress|point|error|done)",
            )),
        }
    }
}

/// Anything the server can put on the wire: a v1 [`Response`], or a v2
/// sweep [`StreamEvent`]. The `status` field discriminates.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// A single-shot response (or rejection).
    Response(Response),
    /// One event of a sweep stream.
    Event(StreamEvent),
}

impl ServerMessage {
    /// The correlation id, when known.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        match self {
            ServerMessage::Response(r) => r.id(),
            ServerMessage::Event(e) => Some(e.id()),
        }
    }
}

impl ToJson for ServerMessage {
    fn to_json(&self) -> Value {
        match self {
            ServerMessage::Response(r) => r.to_json(),
            ServerMessage::Event(e) => e.to_json(),
        }
    }
}

impl FromJson for ServerMessage {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let status = cur.get("status")?;
        match status.str()? {
            "event" => Ok(ServerMessage::Event(StreamEvent::from_json(cur)?)),
            _ => Ok(ServerMessage::Response(Response::from_json(cur)?)),
        }
    }
}

/// A malformed request line, as a typed error: JSON-level failures keep
/// the parser's message, shape-level failures keep the offending path
/// and what was expected there.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line was not JSON.
    Parse(String),
    /// The line was JSON but not a [`FlowRequest`].
    Decode(DecodeError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Parse(msg) => write!(f, "request is not JSON: {msg}"),
            ProtocolError::Decode(e) => write!(f, "request is not a FlowRequest: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Decodes one request line on the zero-copy path: the JSON tree
/// borrows its strings from `line`, and a well-formed request decodes
/// without a single per-field allocation.
///
/// # Errors
///
/// Returns a [`ProtocolError`] for anything that is not a well-formed
/// [`FlowRequest`]; decoding never panics. Errors (and only errors)
/// allocate their path/message strings.
pub fn decode_request(line: &str) -> Result<FlowRequest, ProtocolError> {
    decode_borrowed(line).map_err(|e| match e {
        JsonError::Parse(msg) => ProtocolError::Parse(msg),
        JsonError::Decode(err) => ProtocolError::Decode(err),
    })
}

/// Best-effort extraction of the `id` field from a line that failed to
/// decode, so its rejection can still be correlated.
#[must_use]
pub fn salvage_id(line: &str) -> Option<u64> {
    parse_borrowed(line)
        .ok()
        .and_then(|v| v.get("id")?.as_u64())
}

/// Decodes one response line — the client side of the wire. (Response
/// decoding stays on the owned cursor: reports carry arrays, and the
/// client's read path is not the hot one.)
///
/// # Errors
///
/// Returns the parse or shape error as text.
pub fn decode_response(line: &str) -> Result<Response, String> {
    let doc = parse(line.trim())?;
    Response::from_json(Cur::root(&doc)).map_err(|e| e.to_string())
}

/// Decodes one server line of either protocol shape: a v1 response or a
/// v2 sweep event. Clients that mix single-shot and sweep requests on
/// one connection read everything through this.
///
/// # Errors
///
/// Returns the parse or shape error as text.
pub fn decode_message(line: &str) -> Result<ServerMessage, String> {
    let doc = parse(line.trim())?;
    ServerMessage::from_json(Cur::root(&doc)).map_err(|e| e.to_string())
}

/// Renders one value as a protocol line (JSON + trailing newline).
#[must_use]
pub fn encode_line<T: ToJson>(value: &T) -> String {
    let mut line = value.to_json().render();
    line.push('\n');
    line
}
