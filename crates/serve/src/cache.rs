//! The checkpoint cache: an LRU map from `(netlist fingerprint,
//! options fingerprint)` to a shared [`FlowSession`].
//!
//! A session holds the expensive flow prefixes — the validated,
//! buffered base design and (lazily) the pseudo-3-D checkpoint — so a
//! cache hit answers a repeated design-space query by forking those
//! snapshots in O(1) instead of recomputing them. The cache guarantees:
//!
//! * **one build per key**: racing requests for the same key share one
//!   slot whose `OnceLock` admits exactly one builder; the losers block
//!   on that build instead of duplicating it. Misses are counted at
//!   slot creation, so `misses == distinct keys seen` regardless of
//!   scheduling — the invariant `bench_gate` enforces.
//! * **bounded residency**: beyond `capacity` entries the
//!   least-recently-used slot is dropped from the map. In-flight
//!   holders keep it alive through their `Arc`; it is simply no longer
//!   findable, so a later request for that key rebuilds.
//! * **content-based keys**: the netlist half is
//!   [`m3d_db::netlist_fingerprint`] over the materialized circuit, the
//!   options half is [`FlowOptions::fingerprint`] (thread count and
//!   telemetry excluded) — two requests that would produce bit-identical
//!   results share a key even if they arrived spelled differently.

use m3d_flow::{FlowError, FlowOptions, FlowSession};
use m3d_netlist::Netlist;
use m3d_obs::Obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The cache key: both halves are fingerprint strings (16 hex digits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Content fingerprint of the netlist.
    pub netlist_fp: String,
    /// Fingerprint of the result-affecting options.
    pub options_fp: String,
}

impl SessionKey {
    /// Computes the key for one (netlist, options) pair.
    #[must_use]
    pub fn of(netlist: &Netlist, options: &FlowOptions) -> SessionKey {
        SessionKey {
            netlist_fp: m3d_db::fingerprint_hex(m3d_db::netlist_fingerprint(netlist)),
            options_fp: options.fingerprint(),
        }
    }
}

/// One cache slot: built at most once, shared by every request that
/// maps to its key while it is resident.
struct Slot {
    cell: OnceLock<Result<Arc<FlowSession>, FlowError>>,
}

struct Entry {
    slot: Arc<Slot>,
    last_used: u64,
}

/// LRU session cache. All methods take `&self`; the cache is shared
/// across the worker pool behind one `Arc`.
pub struct SessionCache {
    capacity: usize,
    obs: Obs,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Inner {
    map: HashMap<SessionKey, Entry>,
    tick: u64,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions (floored at 1).
    /// Flow telemetry from sessions built here lands on `obs` under
    /// the flow's native keys — e.g. `flow/pseudo3d_runs` counts
    /// pseudo-3-D stage executions across every session the cache
    /// ever built.
    #[must_use]
    pub fn new(capacity: usize, obs: Obs) -> SessionCache {
        SessionCache {
            capacity: capacity.max(1),
            obs,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up (or builds) the session for `(netlist, options)`.
    /// Returns the shared session and whether this was a cache hit.
    ///
    /// A hit means the slot already existed — including slots still
    /// being built by another thread, which this call then blocks on
    /// and shares. A failed build is cached too (same query, same
    /// failure) until its slot is evicted.
    ///
    /// # Errors
    ///
    /// Propagates the session build's [`FlowError`] (e.g. an invalid
    /// netlist).
    pub fn get_or_build(
        &self,
        netlist: &Netlist,
        options: &FlowOptions,
    ) -> (Result<Arc<FlowSession>, FlowError>, bool) {
        let key = SessionKey::of(netlist, options);
        let (slot, hit) = self.lookup_slot(key);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let built = slot.cell.get_or_init(|| {
            // The session's own telemetry feeds the server's collector
            // under the flow's native key space (`flow/pseudo3d_runs`,
            // `sta/...`): counters accumulate across sessions, so the
            // totals cover the whole service lifetime. The obs handle
            // is excluded from the options fingerprint, so this does
            // not perturb the key (or the results).
            let mut options = options.clone();
            options.obs = self.obs.clone();
            FlowSession::builder(netlist)
                .options(options)
                .build()
                .map(Arc::new)
        });
        (built.clone(), hit)
    }

    /// Finds or creates the slot for `key`, bumping its recency.
    fn lookup_slot(&self, key: SessionKey) -> (Arc<Slot>, bool) {
        let mut inner = self.inner.lock().expect("session cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            return (Arc::clone(&entry.slot), true);
        }
        let slot = Arc::new(Slot {
            cell: OnceLock::new(),
        });
        inner.map.insert(
            key,
            Entry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        if inner.map.len() > self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        (slot, false)
    }

    /// How many lookups found a resident slot.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many lookups created a slot (== distinct keys seen, minus
    /// rebuilds of evicted keys).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many slots the LRU policy dropped.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of resident sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("session cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netgen::Benchmark;

    fn small() -> Netlist {
        Benchmark::Aes.generate(0.01, 5)
    }

    #[test]
    fn repeated_keys_share_one_session() {
        let cache = SessionCache::new(4, Obs::disabled());
        let n = small();
        let o = FlowOptions::default();
        let (a, hit_a) = cache.get_or_build(&n, &o);
        let (b, hit_b) = cache.get_or_build(&n, &o);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_options_get_distinct_sessions() {
        let cache = SessionCache::new(4, Obs::disabled());
        let n = small();
        let a = FlowOptions::default();
        let mut b = FlowOptions::default();
        b.placer_mut().iterations += 1;
        let (sa, _) = cache.get_or_build(&n, &a);
        let (sb, _) = cache.get_or_build(&n, &b);
        assert!(!Arc::ptr_eq(&sa.unwrap(), &sb.unwrap()));
        assert_eq!(cache.misses(), 2);
        // threads is not result-affecting, so it shares the first slot.
        let mut c = a.clone();
        c.threads = 7;
        let (_, hit) = cache.get_or_build(&n, &c);
        assert!(hit);
    }

    #[test]
    fn lru_evicts_the_coldest_key() {
        let cache = SessionCache::new(2, Obs::disabled());
        let n = small();
        let opts: Vec<FlowOptions> = (0..3)
            .map(|i| {
                let mut o = FlowOptions::default();
                o.placer_mut().iterations = 8 + i;
                o
            })
            .collect();
        let _ = cache.get_or_build(&n, &opts[0]);
        let _ = cache.get_or_build(&n, &opts[1]);
        let _ = cache.get_or_build(&n, &opts[0]); // refresh 0; 1 is now LRU
        let _ = cache.get_or_build(&n, &opts[2]); // evicts 1
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let (_, hit0) = cache.get_or_build(&n, &opts[0]);
        assert!(hit0, "refreshed key must survive");
        let (_, hit1) = cache.get_or_build(&n, &opts[1]);
        assert!(!hit1, "evicted key must rebuild");
    }

    #[test]
    fn failed_builds_are_cached_as_failures() {
        let cache = SessionCache::new(2, Obs::disabled());
        let mut invalid = Netlist::new("invalid");
        let pi = invalid.add_input("a");
        let net = invalid.add_net("na", pi, 0);
        let g = invalid.add_gate("g", m3d_tech::CellKind::Nand2, m3d_tech::Drive::X1, 0);
        invalid.connect(net, g, 0); // pin 1 dangling
        let o = FlowOptions::default();
        let (r1, hit1) = cache.get_or_build(&invalid, &o);
        let (r2, hit2) = cache.get_or_build(&invalid, &o);
        assert!(r1.is_err() && r2.is_err());
        assert!(!hit1 && hit2);
    }
}
