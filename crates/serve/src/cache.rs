//! The checkpoint cache: an LRU map from `(netlist fingerprint,
//! options fingerprint)` to a shared [`FlowSession`].
//!
//! A session holds the expensive flow prefixes — the validated,
//! buffered base design and (lazily) the pseudo-3-D checkpoint — so a
//! cache hit answers a repeated design-space query by forking those
//! snapshots in O(1) instead of recomputing them. The cache guarantees:
//!
//! * **one build per key**: racing requests for the same key share one
//!   slot whose `OnceLock` admits exactly one builder; the losers block
//!   on that build instead of duplicating it. Misses are counted at
//!   slot creation, so `misses == distinct keys seen` regardless of
//!   scheduling — the invariant `bench_gate` enforces.
//! * **bounded residency**: beyond `capacity` entries the
//!   least-recently-used slot is dropped from the map. In-flight
//!   holders keep it alive through their `Arc`; it is simply no longer
//!   findable, so a later request for that key rebuilds.
//! * **content-based keys**: the netlist half is
//!   [`m3d_db::netlist_fingerprint`] over the materialized circuit, the
//!   options half is [`FlowOptions::fingerprint`] (thread count and
//!   telemetry excluded) — two requests that would produce bit-identical
//!   results share a key even if they arrived spelled differently.
//! * **an optional disk tier**: with a [`Store`] attached
//!   ([`SessionCache::with_store`]) a miss first tries to rehydrate the
//!   session from the persistent store (so a restarted server answers
//!   its first repeat request without re-running the flow prefix),
//!   completed sessions are written through after execution, and
//!   LRU-evicted sessions are spilled to disk before they become
//!   unreachable. Store traffic lands on the perf section of the
//!   telemetry manifest as `store/{hit,miss,spill,corrupt_evicted}` —
//!   perf, not the deterministic section, because disk state depends on
//!   what earlier processes left behind.

use m3d_flow::{FlowError, FlowOptions, FlowSession};
use m3d_netlist::Netlist;
use m3d_obs::Obs;
use m3d_store::{SessionArtifact, Store, StoreKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The cache key: both halves are fingerprint strings (16 hex digits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Content fingerprint of the netlist.
    pub netlist_fp: String,
    /// Fingerprint of the result-affecting options.
    pub options_fp: String,
}

impl SessionKey {
    /// Computes the key for one (netlist, options) pair.
    #[must_use]
    pub fn of(netlist: &Netlist, options: &FlowOptions) -> SessionKey {
        SessionKey {
            netlist_fp: m3d_db::fingerprint_hex(m3d_db::netlist_fingerprint(netlist)),
            options_fp: options.fingerprint(),
        }
    }
}

/// One cache slot: built at most once, shared by every request that
/// maps to its key while it is resident.
struct Slot {
    cell: OnceLock<Result<Arc<FlowSession>, FlowError>>,
}

struct Entry {
    slot: Arc<Slot>,
    last_used: u64,
}

/// LRU session cache. All methods take `&self`; the cache is shared
/// across the worker pool behind one `Arc`.
pub struct SessionCache {
    capacity: usize,
    obs: Obs,
    store: Option<Arc<Store>>,
    inner: Mutex<Inner>,
    /// What the disk tier already holds, keyed like the cache; the bool
    /// records whether the persisted artifact includes the pseudo-3-D
    /// checkpoint (so a base-only record is upgraded exactly once).
    persisted: Mutex<HashMap<SessionKey, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_spills: AtomicU64,
    store_corrupt: AtomicU64,
}

struct Inner {
    map: HashMap<SessionKey, Entry>,
    tick: u64,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions (floored at 1).
    /// Flow telemetry from sessions built here lands on `obs` under
    /// the flow's native keys — e.g. `flow/pseudo3d_runs` counts
    /// pseudo-3-D stage executions across every session the cache
    /// ever built.
    #[must_use]
    pub fn new(capacity: usize, obs: Obs) -> SessionCache {
        SessionCache::with_store(capacity, obs, None)
    }

    /// Like [`SessionCache::new`], with a persistent disk tier attached
    /// when `store` is `Some`: misses rehydrate from the store before
    /// building cold, and [`SessionCache::persist`] / LRU eviction write
    /// sessions back. The store is an accelerator, never a correctness
    /// dependency — every store failure falls back to the cold path.
    #[must_use]
    pub fn with_store(capacity: usize, obs: Obs, store: Option<Arc<Store>>) -> SessionCache {
        SessionCache {
            capacity: capacity.max(1),
            obs,
            store,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            persisted: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_spills: AtomicU64::new(0),
            store_corrupt: AtomicU64::new(0),
        }
    }

    /// Looks up (or builds) the session for `(netlist, options)`.
    /// Returns the shared session and whether this was a cache hit.
    ///
    /// A hit means the slot already existed — including slots still
    /// being built by another thread, which this call then blocks on
    /// and shares. A failed build is cached too (same query, same
    /// failure) until its slot is evicted.
    ///
    /// # Errors
    ///
    /// Propagates the session build's [`FlowError`] (e.g. an invalid
    /// netlist).
    pub fn get_or_build(
        &self,
        netlist: &Netlist,
        options: &FlowOptions,
    ) -> (Result<Arc<FlowSession>, FlowError>, bool) {
        let key = SessionKey::of(netlist, options);
        let (slot, hit, evicted) = self.lookup_slot(key.clone());
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let built = slot.cell.get_or_init(|| {
            // The session's own telemetry feeds the server's collector
            // under the flow's native key space (`flow/pseudo3d_runs`,
            // `sta/...`): counters accumulate across sessions, so the
            // totals cover the whole service lifetime. The obs handle
            // is excluded from the options fingerprint, so this does
            // not perturb the key (or the results).
            let mut options = options.clone();
            options.obs = self.obs.clone();
            if let Some(session) = self.rehydrate(&key, netlist, &options) {
                return Ok(session);
            }
            FlowSession::builder(netlist)
                .options(options)
                .build()
                .map(Arc::new)
        });
        // Spill the LRU victim only after the map lock is long released:
        // persisting encodes the artifact and touches disk.
        if let Some(victim) = evicted {
            if let Some(Ok(session)) = victim.cell.get() {
                self.persist(session);
            }
        }
        (built.clone(), hit)
    }

    /// Tries the disk tier for `key`. A verified record rehydrates into
    /// a ready session ([`FlowSession::from_parts`] pre-seeds the
    /// pseudo-3-D slot, so the expensive stage never re-runs); a miss or
    /// any store failure returns `None` and the caller builds cold. A
    /// corrupt record was already evicted by the store itself, so the
    /// rebuild below repairs the disk tier too.
    fn rehydrate(
        &self,
        key: &SessionKey,
        netlist: &Netlist,
        options: &FlowOptions,
    ) -> Option<Arc<FlowSession>> {
        let store = self.store.as_deref()?;
        let skey = StoreKey::new(key.netlist_fp.clone(), key.options_fp.clone()).ok()?;
        match store.get_session(&skey) {
            Ok(Some(artifact)) => {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                self.obs.perf_add("store/hit", 1);
                let has_pseudo = artifact.pseudo.is_some();
                let session = Arc::new(FlowSession::from_parts(
                    netlist,
                    options.clone(),
                    artifact.base,
                    artifact.pseudo,
                ));
                self.persisted
                    .lock()
                    .expect("persist ledger poisoned")
                    .insert(key.clone(), has_pseudo);
                Some(session)
            }
            Ok(None) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                self.obs.perf_add("store/miss", 1);
                None
            }
            Err(_) => {
                self.store_corrupt.fetch_add(1, Ordering::Relaxed);
                self.obs.perf_add("store/corrupt_evicted", 1);
                None
            }
        }
    }

    /// Writes `session` through to the disk tier (no-op without one).
    /// Called by the server after each successful execution and by the
    /// LRU eviction path; idempotent per session state — a second call
    /// writes again only when the pseudo-3-D checkpoint has materialized
    /// since a base-only record was persisted. Failures are swallowed:
    /// a full disk costs warm restarts, never answers.
    pub fn persist(&self, session: &FlowSession) {
        let Some(store) = self.store.as_deref() else {
            return;
        };
        let key = SessionKey {
            netlist_fp: session.netlist_fingerprint().to_string(),
            options_fp: session.options_fingerprint().to_string(),
        };
        let pseudo = session.pseudo_checkpoint().cloned();
        let has_pseudo = pseudo.is_some();
        {
            let mut persisted = self.persisted.lock().expect("persist ledger poisoned");
            if persisted.get(&key).is_some_and(|&full| full || !has_pseudo) {
                return;
            }
            // Bound the ledger: it tracks keys, not sessions, so it
            // outlives evictions. Clearing merely re-persists — an
            // idempotent rewrite of identical records.
            if persisted.len() >= self.capacity.saturating_mul(8) {
                persisted.clear();
            }
            persisted.insert(key.clone(), has_pseudo);
        }
        let Ok(skey) = StoreKey::new(key.netlist_fp, key.options_fp) else {
            return;
        };
        let artifact = SessionArtifact {
            base: session.base().clone(),
            pseudo,
        };
        if store.put_session(&skey, &artifact).is_ok() {
            self.store_spills.fetch_add(1, Ordering::Relaxed);
            self.obs.perf_add("store/spill", 1);
        }
    }

    /// Finds or creates the slot for `key`, bumping its recency. The
    /// third return is the slot evicted to make room, if any — handed
    /// back so the caller can spill it to the disk tier outside this
    /// lock.
    fn lookup_slot(&self, key: SessionKey) -> (Arc<Slot>, bool, Option<Arc<Slot>>) {
        let mut inner = self.inner.lock().expect("session cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            return (Arc::clone(&entry.slot), true, None);
        }
        let slot = Arc::new(Slot {
            cell: OnceLock::new(),
        });
        inner.map.insert(
            key,
            Entry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let mut evicted = None;
        if inner.map.len() > self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                evicted = inner.map.remove(&lru).map(|e| e.slot);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        (slot, false, evicted)
    }

    /// How many lookups found a resident slot.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many lookups created a slot (== distinct keys seen, minus
    /// rebuilds of evicted keys).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many slots the LRU policy dropped.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// How many misses rehydrated a session from the disk tier.
    #[must_use]
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// How many misses consulted the disk tier and found nothing.
    #[must_use]
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// How many session artifacts were written to the disk tier
    /// (write-through after execution plus LRU spills).
    #[must_use]
    pub fn store_spills(&self) -> u64 {
        self.store_spills.load(Ordering::Relaxed)
    }

    /// How many disk-tier lookups hit a corrupt (now evicted) record.
    #[must_use]
    pub fn store_corrupt_evicted(&self) -> u64 {
        self.store_corrupt.load(Ordering::Relaxed)
    }

    /// Number of resident sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("session cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netgen::Benchmark;

    fn small() -> Netlist {
        Benchmark::Aes.generate(0.01, 5)
    }

    #[test]
    fn repeated_keys_share_one_session() {
        let cache = SessionCache::new(4, Obs::disabled());
        let n = small();
        let o = FlowOptions::default();
        let (a, hit_a) = cache.get_or_build(&n, &o);
        let (b, hit_b) = cache.get_or_build(&n, &o);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_options_get_distinct_sessions() {
        let cache = SessionCache::new(4, Obs::disabled());
        let n = small();
        let a = FlowOptions::default();
        let mut b = FlowOptions::default();
        b.placer_mut().iterations += 1;
        let (sa, _) = cache.get_or_build(&n, &a);
        let (sb, _) = cache.get_or_build(&n, &b);
        assert!(!Arc::ptr_eq(&sa.unwrap(), &sb.unwrap()));
        assert_eq!(cache.misses(), 2);
        // threads is not result-affecting, so it shares the first slot.
        let mut c = a.clone();
        c.threads = 7;
        let (_, hit) = cache.get_or_build(&n, &c);
        assert!(hit);
    }

    #[test]
    fn lru_evicts_the_coldest_key() {
        let cache = SessionCache::new(2, Obs::disabled());
        let n = small();
        let opts: Vec<FlowOptions> = (0..3)
            .map(|i| {
                let mut o = FlowOptions::default();
                o.placer_mut().iterations = 8 + i;
                o
            })
            .collect();
        let _ = cache.get_or_build(&n, &opts[0]);
        let _ = cache.get_or_build(&n, &opts[1]);
        let _ = cache.get_or_build(&n, &opts[0]); // refresh 0; 1 is now LRU
        let _ = cache.get_or_build(&n, &opts[2]); // evicts 1
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let (_, hit0) = cache.get_or_build(&n, &opts[0]);
        assert!(hit0, "refreshed key must survive");
        let (_, hit1) = cache.get_or_build(&n, &opts[1]);
        assert!(!hit1, "evicted key must rebuild");
    }

    #[test]
    fn disk_tier_rehydrates_across_cache_instances() {
        let dir =
            std::env::temp_dir().join(format!("m3d-serve-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open store"));
        let n = small();
        let o = FlowOptions::default();

        let cold = SessionCache::with_store(4, Obs::disabled(), Some(Arc::clone(&store)));
        let (session, _) = cold.get_or_build(&n, &o);
        let session = session.unwrap();
        assert_eq!(
            (cold.store_hits(), cold.store_misses()),
            (0, 1),
            "an empty store answers the first miss with a store miss"
        );
        cold.persist(&session);
        assert_eq!(cold.store_spills(), 1);
        // Same state again: the ledger makes the write-through a no-op.
        cold.persist(&session);
        assert_eq!(cold.store_spills(), 1);

        // A fresh cache over the same directory — a simulated restart —
        // rehydrates instead of rebuilding.
        let warm = SessionCache::with_store(4, Obs::disabled(), Some(store));
        let (rehydrated, hit) = warm.get_or_build(&n, &o);
        let rehydrated = rehydrated.unwrap();
        assert!(!hit, "a fresh cache still creates the slot");
        assert_eq!((warm.store_hits(), warm.store_misses()), (1, 0));
        assert_eq!(
            rehydrated.netlist_fingerprint(),
            session.netlist_fingerprint()
        );
        assert_eq!(
            rehydrated.options_fingerprint(),
            session.options_fingerprint()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_builds_are_cached_as_failures() {
        let cache = SessionCache::new(2, Obs::disabled());
        let mut invalid = Netlist::new("invalid");
        let pi = invalid.add_input("a");
        let net = invalid.add_net("na", pi, 0);
        let g = invalid.add_gate("g", m3d_tech::CellKind::Nand2, m3d_tech::Drive::X1, 0);
        invalid.connect(net, g, 0); // pin 1 dangling
        let o = FlowOptions::default();
        let (r1, hit1) = cache.get_or_build(&invalid, &o);
        let (r2, hit2) = cache.get_or_build(&invalid, &o);
        assert!(r1.is_err() && r2.is_err());
        assert!(!hit1 && hit2);
    }
}
