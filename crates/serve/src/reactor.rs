//! The readiness reactor: a vendored, zero-dependency poller that the
//! TCP front's shard threads block on.
//!
//! Two backends share one `Poller` surface. On Linux the default is
//! **epoll** — O(ready) wakeups, which is what lets one shard thread
//! hold thousands of mostly-idle connections for the price of the few
//! that are active. Everywhere (including Linux, for testability) there
//! is a **poll(2)** fallback that scans the registered set per wakeup —
//! O(registered), portable to any Unix. The backend is chosen by
//! [`ReactorKind`]: `Auto` picks epoll on Linux unless the
//! `M3D_REACTOR=poll` environment variable forces the fallback, so CI
//! can run the same suite over both.
//!
//! Both backends are level-triggered: an event repeats while the
//! condition holds, so connection handling may read/write *partially*
//! (bounded work per tick, for cross-connection fairness) and rely on
//! the next wakeup to continue. The syscalls are declared directly
//! against the C ABI — no `libc` crate; `std` already links the
//! platform C library.
//!
//! The `Waker` is a self-pipe: worker threads finishing flow jobs write
//! one byte to wake the owning shard out of its `wait`, which then
//! drains its message queue. Writes to a full pipe fail with `EAGAIN`
//! and are ignored — a wakeup is already pending.

use std::io;
use std::net::TcpStream;
use std::os::raw::{c_int, c_ulong, c_void};
use std::os::unix::io::{AsRawFd, RawFd};

/// Which poller backend the reactor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorKind {
    /// epoll on Linux (unless `M3D_REACTOR=poll` is set), poll(2)
    /// elsewhere.
    Auto,
    /// The portable poll(2) backend, everywhere.
    Poll,
}

/// What a socket is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

/// One readiness event, translated out of the backend's encoding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error/hangup: the peer is gone or the socket is dead. Handled as
    /// a hard close — nothing sent on such a socket can arrive.
    pub error: bool,
}

// ---------------------------------------------------------------------
// shared syscalls
// ---------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

#[cfg(target_os = "linux")]
const SOL_SOCKET: c_int = 1;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: c_int = 0xffff;
#[cfg(target_os = "linux")]
const SO_SNDBUF: c_int = 7;
#[cfg(not(target_os = "linux"))]
const SO_SNDBUF: c_int = 0x1001;

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// Raises the process's open-file-descriptor soft limit toward `want`
/// (clamped to the hard limit) and returns the resulting soft limit.
/// The connection-scaling bench calls this before opening 1000+
/// sockets; on failure the current limit is returned unchanged — the
/// caller decides whether that is enough.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let target = want.min(lim.rlim_max);
    let new = RLimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        target
    } else {
        lim.rlim_cur
    }
}

/// Shrinks a socket's kernel send buffer (`SO_SNDBUF`). Test-only in
/// spirit: a small send buffer makes write-backpressure reachable with
/// modest data volumes, so the slow-reader test can prove the server
/// pauses reads instead of buffering without a multi-megabyte exchange.
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    let val = bytes as c_int;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            std::ptr::addr_of!(val).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(last_err())
    }
}

// ---------------------------------------------------------------------
// waker (self-pipe)
// ---------------------------------------------------------------------

/// The write end of a shard's self-pipe. Cloned (behind `Arc`) into
/// every reply handle; `wake` is async-signal-simple: one nonblocking
/// one-byte write, errors ignored (a full pipe already wakes).
#[derive(Debug)]
pub(crate) struct Waker {
    write_fd: RawFd,
}

impl Waker {
    pub fn wake(&self) {
        let byte = [1u8];
        let _ = unsafe { write(self.write_fd, byte.as_ptr().cast(), 1) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = unsafe { close(self.write_fd) };
    }
}

/// The read end of a shard's self-pipe, registered in the shard's
/// poller.
#[derive(Debug)]
pub(crate) struct WakeReader {
    read_fd: RawFd,
}

impl WakeReader {
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Consumes pending wake bytes. Leftovers merely cause a spurious
    /// wakeup, so one pass is enough.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n < buf.len() as isize {
                break;
            }
        }
    }
}

impl Drop for WakeReader {
    fn drop(&mut self) {
        let _ = unsafe { close(self.read_fd) };
    }
}

/// Creates a nonblocking self-pipe pair.
pub(crate) fn wake_pair() -> io::Result<(Waker, WakeReader)> {
    let mut fds: [c_int; 2] = [0; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(last_err());
    }
    for fd in fds {
        let flags = unsafe { fcntl(fd, F_GETFL, 0) };
        if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            let err = last_err();
            let _ = unsafe { close(fds[0]) };
            let _ = unsafe { close(fds[1]) };
            return Err(err);
        }
    }
    Ok((Waker { write_fd: fds[1] }, WakeReader { read_fd: fds[0] }))
}

// ---------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys_epoll {
    use super::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0x80000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;

    /// `struct epoll_event`. Packed on x86 — the kernel ABI really is
    /// unaligned there; naturally aligned everywhere else.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

#[cfg(target_os = "linux")]
pub(crate) struct Epoll {
    epfd: RawFd,
    buf: Vec<sys_epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_err());
        }
        Ok(Epoll {
            epfd,
            buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= sys_epoll::EPOLLIN;
        }
        if interest.write {
            m |= sys_epoll::EPOLLOUT;
        }
        m
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        if unsafe { sys_epoll::epoll_ctl(self.epfd, op, fd, &mut ev) } == 0 {
            Ok(())
        } else {
            Err(last_err())
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<()> {
        loop {
            let n = unsafe {
                sys_epoll::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                for ev in &self.buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let bits = ev.events;
                    let token = ev.data;
                    out.push(Event {
                        token,
                        readable: bits & sys_epoll::EPOLLIN != 0,
                        writable: bits & sys_epoll::EPOLLOUT != 0,
                        error: bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0,
                    });
                }
                return Ok(());
            }
            let err = last_err();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { close(self.epfd) };
    }
}

// ---------------------------------------------------------------------
// poll(2) backend (portable fallback)
// ---------------------------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;
const POLLNVAL: i16 = 0x20;

pub(crate) struct PollSet {
    /// Registered fds with their tokens and interests; order is the
    /// scan order.
    entries: Vec<(RawFd, u64, Interest)>,
    scratch: Vec<PollFd>,
}

impl PollSet {
    fn new() -> PollSet {
        PollSet {
            entries: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.read {
            m |= POLLIN;
        }
        if interest.write {
            m |= POLLOUT;
        }
        m
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) {
        self.entries.push((fd, token, interest));
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        for entry in &mut self.entries {
            if entry.0 == fd && entry.1 == token {
                entry.2 = interest;
                return Ok(());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            "reregister of an unregistered fd",
        ))
    }

    fn deregister(&mut self, fd: RawFd, token: u64) {
        self.entries.retain(|e| !(e.0 == fd && e.1 == token));
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<()> {
        self.scratch.clear();
        self.scratch
            .extend(self.entries.iter().map(|&(fd, _, i)| PollFd {
                fd,
                events: Self::mask(i),
                revents: 0,
            }));
        loop {
            let n = unsafe {
                poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as c_ulong,
                    timeout_ms,
                )
            };
            if n >= 0 {
                for (pfd, &(_, token, _)) in self.scratch.iter().zip(&self.entries) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: bits & POLLIN != 0,
                        writable: bits & POLLOUT != 0,
                        error: bits & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    });
                }
                return Ok(());
            }
            let err = last_err();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

// ---------------------------------------------------------------------
// the unified poller
// ---------------------------------------------------------------------

/// The backend-erased readiness poller a shard owns.
pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollSet),
}

impl Poller {
    /// Opens a poller of the requested kind. `Auto` resolves to epoll
    /// on Linux unless `M3D_REACTOR=poll` is set in the environment.
    pub fn new(kind: ReactorKind) -> io::Result<Poller> {
        let force_poll =
            kind == ReactorKind::Poll || std::env::var("M3D_REACTOR").is_ok_and(|v| v == "poll");
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Poller::Epoll(Epoll::new()?));
            }
        }
        let _ = force_poll;
        Ok(Poller::Poll(PollSet::new()))
    }

    pub fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => {
                p.register(fd, token, interest);
                Ok(())
            }
        }
    }

    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    pub fn deregister(&mut self, fd: RawFd, token: u64) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => {
                let _ = e.ctl(
                    sys_epoll::EPOLL_CTL_DEL,
                    fd,
                    token,
                    Interest {
                        read: false,
                        write: false,
                    },
                );
            }
            Poller::Poll(p) => p.deregister(fd, token),
        }
    }

    /// Blocks until at least one registered fd is ready (or
    /// `timeout_ms` elapses; -1 blocks indefinitely), appending the
    /// translated events to `out`. `EINTR` is retried internally.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(out, timeout_ms),
            Poller::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn backend_smoke(kind: ReactorKind) {
        let mut poller = Poller::new(kind).expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        poller
            .register(
                listener.as_raw_fd(),
                7,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .expect("register");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let mut events = Vec::new();
        poller.wait(&mut events, 5_000).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "listener must report readable on a pending connection ({})",
            poller.backend_name()
        );

        let (mut accepted, _) = listener.accept().expect("accept");
        accepted.set_nonblocking(true).expect("nonblocking");
        poller
            .register(
                accepted.as_raw_fd(),
                9,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .expect("register conn");
        client.write_all(b"ping").expect("write");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        'outer: loop {
            assert!(std::time::Instant::now() < deadline, "no readable event");
            events.clear();
            poller.wait(&mut events, 1_000).expect("wait");
            for e in &events {
                if e.token == 9 && e.readable {
                    break 'outer;
                }
            }
        }
        let mut buf = [0u8; 8];
        let n = accepted.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Interest changes stick: drop read interest, a second send must
        // not surface token 9 as readable.
        poller
            .reregister(
                accepted.as_raw_fd(),
                9,
                Interest {
                    read: false,
                    write: false,
                },
            )
            .expect("reregister");
        client.write_all(b"more").expect("write");
        events.clear();
        poller.wait(&mut events, 200).expect("wait");
        assert!(
            !events.iter().any(|e| e.token == 9 && e.readable),
            "paused fd must not report readable ({})",
            poller.backend_name()
        );
        poller.deregister(accepted.as_raw_fd(), 9);
    }

    #[test]
    fn auto_backend_accepts_and_reads() {
        backend_smoke(ReactorKind::Auto);
    }

    #[test]
    fn poll_fallback_accepts_and_reads() {
        backend_smoke(ReactorKind::Poll);
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new(ReactorKind::Auto).expect("poller");
        let (waker, reader) = wake_pair().expect("pipe");
        poller
            .register(
                reader.fd(),
                1,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .expect("register");
        let waker = std::sync::Arc::new(waker);
        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            remote.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, 5_000).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        reader.drain();
        // Drained pipe: a short wait now times out with no events.
        events.clear();
        poller.wait(&mut events, 100).expect("wait");
        assert!(!events.iter().any(|e| e.token == 1 && e.readable));
        t.join().unwrap();
    }

    #[test]
    fn nofile_limit_is_reported_and_monotone() {
        let now = raise_nofile_limit(64);
        assert!(now >= 64, "soft limit should already exceed the floor");
        let bumped = raise_nofile_limit(now);
        assert!(bumped >= now);
    }
}
