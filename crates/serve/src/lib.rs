//! # m3d-serve — the flow as a long-running service
//!
//! A design-space exploration asks the same flow many questions about
//! the same netlist: sweep frequencies, flip options, compare
//! configurations. Run as one-shot processes those queries redo the
//! expensive shared prefixes — validation, base buffering, the
//! pseudo-3-D implementation — on every call. This crate keeps them
//! resident: a daemon that answers serialized [`FlowRequest`]s over
//! TCP, executing on a bounded worker pool behind an LRU
//! **checkpoint cache** keyed by `(netlist fingerprint, options
//! fingerprint)`, so repeated queries fork a shared
//! [`m3d_flow::FlowSession`] in O(1).
//!
//! The layers, bottom-up:
//!
//! * [`protocol`] — newline-delimited JSON framing: [`FlowRequest`] in,
//!   [`Response`] out, malformed input answered with a typed
//!   [`ProtocolError`]-derived rejection (never a panic or a hang).
//! * [`cache`] — the [`SessionCache`]: one [`m3d_flow::FlowSession`]
//!   per distinct key, built exactly once (racing requests share the
//!   build), evicted least-recently-used — optionally backed by a
//!   persistent [`m3d_store::Store`] tier that survives restarts
//!   (misses rehydrate from disk, completed sessions write through,
//!   evictions spill).
//! * [`reactor`] + per-connection framing — a vendored,
//!   zero-dependency readiness poller (epoll on Linux, poll(2)
//!   fallback) that the TCP front's shard threads multiplex all
//!   connections over: no thread per connection, bounded per-tick work,
//!   write backpressure that pauses reads instead of buffering without
//!   limit. Requests decode on `m3d-json`'s borrowed zero-copy path.
//! * [`server`] — the [`Server`] engine (bounded queue, explicit
//!   `overloaded` backpressure, per-request deadlines, graceful
//!   drain-on-shutdown) and its event-driven [`TcpServer`] front
//!   (tunable via [`TcpTuning`]).
//! * [`client`] — a blocking pipelined [`Client`], also the substrate
//!   of the `serve_client` load generator.
//! * [`router`] — a consistent-hash shard [`Router`] front: N backend
//!   services behind one address, every request placed on the shard
//!   that owns its checkpoint key, so each key is built exactly once
//!   cluster-wide and answers stay byte-identical to a single server.
//!
//! Service responses are **bit-identical to direct library calls** at
//! any worker count: workers execute through the same
//! [`m3d_flow::FlowSession::execute`] path a library caller uses, and
//! every flow result is a pure function of `(netlist, options,
//! command)`.
//!
//! ```no_run
//! use m3d_serve::{Client, ServerConfig, TcpServer};
//! use m3d_flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec, Proto};
//! use m3d_netgen::Benchmark;
//!
//! let server = TcpServer::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let response = client.call(&FlowRequest {
//!     id: 1,
//!     netlist: NetlistSpec { benchmark: Benchmark::Aes, scale: 0.05, seed: 1 },
//!     options: FlowOptions::default(),
//!     command: FlowCommand::RunFlow { config: Config::Hetero3d, frequency_ghz: 1.2 },
//!     deadline_ms: None,
//!     proto: Proto::V1,
//! })?;
//! assert!(response.is_ok());
//! let stats = server.shutdown();
//! assert_eq!(stats.completed_ok, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod client;
mod conn;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;

pub use cache::{SessionCache, SessionKey};
pub use client::{Client, ClientError};
pub use m3d_flow::{FlowCommand, FlowReport, FlowRequest, NetlistSpec};
pub use m3d_store::{Store, StoreError, StoreKey};
pub use protocol::{
    decode_message, decode_request, decode_response, encode_line, ProtocolError, RejectKind,
    Response, ServerMessage, StreamEvent,
};
pub use reactor::{raise_nofile_limit, set_send_buffer, ReactorKind};
pub use router::{route_key, Ring, Router, RouterConfig, RouterStatsSnapshot};
pub use server::{
    Pending, PendingStream, Server, ServerConfig, StatsSnapshot, TcpServer, TcpTuning,
};
