//! Per-connection state for the event-driven TCP front: a nonblocking
//! socket plus explicit read/write buffers and the newline framer.
//!
//! All I/O here is partial by design. [`Conn::fill`] reads at most a
//! fixed budget per tick so one chatty connection cannot starve its
//! shard; [`Conn::flush`] writes until the kernel pushes back. The
//! framer ([`Conn::extract_lines`]) yields complete, trimmed, non-empty
//! lines and leaves any partial tail buffered for the next readiness
//! event. Lines longer than the configured cap, and lines that are not
//! UTF-8, end the connection's read half — the caller decides what (if
//! anything) to answer first.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};

use crate::reactor::Interest;

/// How many bytes one readiness event may pull off a socket before the
/// shard moves on to the next connection. Level-triggered polling
/// re-reports the fd while data remains, so fairness costs nothing.
pub(crate) const READ_BUDGET: usize = 64 * 1024;

/// How the framer left the connection after a read pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameEnd {
    /// All complete lines were yielded; any partial tail stays buffered.
    Clean,
    /// A line exceeded the cap. The buffer was discarded; stop reading.
    TooLong { limit: usize },
    /// A complete line was not UTF-8. Buffer discarded; stop reading.
    BadUtf8,
}

#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    /// Unconsumed inbound bytes; complete lines are carved off the
    /// front, a partial line may remain at the tail.
    read_buf: Vec<u8>,
    /// Where the newline scan resumes (everything before it was already
    /// scanned without finding a delimiter).
    scan_from: usize,
    /// Outbound bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    write_pos: usize,
    /// Requests handed to the engine whose responses have not yet been
    /// queued on this connection.
    pub inflight: usize,
    /// No more reads: peer EOF, framing violation, or server drain.
    pub read_closed: bool,
    /// Reads suspended by write backpressure (write_buf over the high
    /// water mark).
    pub paused: bool,
    /// The interest currently registered with the poller.
    pub registered: Interest,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scan_from: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: 0,
            read_closed: false,
            paused: false,
            registered: Interest {
                read: false,
                write: false,
            },
        }
    }

    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads up to [`READ_BUDGET`] bytes into the read buffer.
    /// Returns `true` on EOF.
    ///
    /// # Errors
    ///
    /// Propagates hard socket errors (connection reset and the like);
    /// `WouldBlock` just ends the pass.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 8 * 1024];
        let mut taken = 0;
        while taken < READ_BUDGET {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// Carves every complete line out of the read buffer, passing each
    /// trimmed non-empty line to `sink`, and compacts the buffer down
    /// to the partial tail. On a framing violation the buffer is
    /// discarded and the violation returned; the caller must stop
    /// reading this connection.
    pub fn extract_lines(&mut self, max_line: usize, sink: &mut dyn FnMut(&str)) -> FrameEnd {
        let mut consumed = 0;
        let end = loop {
            let rel = self.read_buf[self.scan_from..]
                .iter()
                .position(|&b| b == b'\n');
            let Some(rel) = rel else {
                // No delimiter: an over-long partial line is already a
                // violation — without this, a peer that never sends a
                // newline grows the buffer without bound.
                if self.read_buf.len() - consumed > max_line {
                    break FrameEnd::TooLong { limit: max_line };
                }
                self.scan_from = self.read_buf.len();
                break FrameEnd::Clean;
            };
            let nl = self.scan_from + rel;
            if nl - consumed > max_line {
                break FrameEnd::TooLong { limit: max_line };
            }
            let Ok(line) = std::str::from_utf8(&self.read_buf[consumed..nl]) else {
                break FrameEnd::BadUtf8;
            };
            let line = line.trim();
            if !line.is_empty() {
                sink(line);
            }
            consumed = nl + 1;
            self.scan_from = consumed;
        };
        if matches!(end, FrameEnd::Clean) {
            if consumed > 0 {
                self.read_buf.drain(..consumed);
                self.scan_from -= consumed;
            }
        } else {
            self.read_buf.clear();
            self.scan_from = 0;
        }
        end
    }

    /// Queues bytes for writing (no I/O; call [`Conn::flush`] after).
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn write_pending(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Writes until the buffer empties or the kernel pushes back.
    ///
    /// # Errors
    ///
    /// Propagates hard socket errors; `WouldBlock` ends the pass with
    /// the remainder still buffered.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > 32 * 1024 {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        accepted.set_nonblocking(true).expect("nonblocking");
        (client, Conn::new(accepted))
    }

    fn collect_lines(conn: &mut Conn, max_line: usize) -> (Vec<String>, FrameEnd) {
        let mut lines = Vec::new();
        let end = conn.extract_lines(max_line, &mut |l| lines.push(l.to_string()));
        (lines, end)
    }

    #[test]
    fn partial_lines_stay_buffered_until_the_delimiter_lands() {
        let (mut client, mut conn) = pair();
        client.write_all(b"hel").expect("write");
        client.flush().unwrap();
        while !conn.fill().unwrap() && conn.read_buf.is_empty() {}
        let (lines, end) = collect_lines(&mut conn, 1024);
        assert!(lines.is_empty());
        assert_eq!(end, FrameEnd::Clean);

        client.write_all(b"lo\nwor").expect("write");
        loop {
            conn.fill().unwrap();
            if conn.read_buf.len() >= 9 {
                break;
            }
        }
        let (lines, end) = collect_lines(&mut conn, 1024);
        assert_eq!(lines, vec!["hello".to_string()]);
        assert_eq!(end, FrameEnd::Clean);

        client.write_all(b"ld\n").expect("write");
        loop {
            conn.fill().unwrap();
            let (lines, _) = collect_lines(&mut conn, 1024);
            if !lines.is_empty() {
                assert_eq!(lines, vec!["world".to_string()]);
                break;
            }
        }
    }

    #[test]
    fn coalesced_lines_all_come_out_of_one_read() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"one\n\n  \ntwo\r\nthree\n")
            .expect("write");
        loop {
            conn.fill().unwrap();
            if conn.read_buf.len() >= 18 {
                break;
            }
        }
        let (lines, end) = collect_lines(&mut conn, 1024);
        // Blank lines are skipped, CR is trimmed with the rest of the
        // whitespace — same as the old BufReader front.
        assert_eq!(lines, vec!["one", "two", "three"]);
        assert_eq!(end, FrameEnd::Clean);
    }

    #[test]
    fn oversize_lines_kill_the_frame() {
        let (mut client, mut conn) = pair();
        client.write_all(&[b'x'; 64]).expect("write");
        client.write_all(b"\n").expect("write");
        loop {
            conn.fill().unwrap();
            if conn.read_buf.len() >= 65 {
                break;
            }
        }
        let (lines, end) = collect_lines(&mut conn, 16);
        assert!(lines.is_empty());
        assert_eq!(end, FrameEnd::TooLong { limit: 16 });
        assert_eq!(conn.read_buf.len(), 0, "violating buffer is discarded");

        // A headless over-long partial (no newline yet) is also caught.
        let (mut client, mut conn) = pair();
        client.write_all(&[b'y'; 64]).expect("write");
        loop {
            conn.fill().unwrap();
            if conn.read_buf.len() >= 64 {
                break;
            }
        }
        let (lines, end) = collect_lines(&mut conn, 16);
        assert!(lines.is_empty());
        assert_eq!(end, FrameEnd::TooLong { limit: 16 });
    }

    #[test]
    fn non_utf8_lines_kill_the_frame() {
        let (mut client, mut conn) = pair();
        client.write_all(b"ok\n\xff\xfe\n").expect("write");
        loop {
            conn.fill().unwrap();
            if conn.read_buf.len() >= 6 {
                break;
            }
        }
        let (lines, end) = collect_lines(&mut conn, 1024);
        assert_eq!(lines, vec!["ok"]);
        assert_eq!(end, FrameEnd::BadUtf8);
    }

    #[test]
    fn flush_tracks_pending_bytes() {
        let (mut client, mut conn) = pair();
        conn.queue_write(b"abc\n");
        assert_eq!(conn.write_pending(), 4);
        conn.flush().expect("flush");
        assert_eq!(conn.write_pending(), 0);
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"abc\n");
    }
}
