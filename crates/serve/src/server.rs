//! The service engine: a bounded worker pool over a backpressured
//! queue, with graceful drain-on-shutdown — plus the TCP front that
//! feeds it newline-delimited JSON.
//!
//! # Life of a request
//!
//! 1. **Admission** ([`Server::enqueue`]): requests are first held to
//!    the numeric bounds of [`FlowRequest::validate`] — an absurd
//!    netlist scale or grid-sizing knob is rejected
//!    [`RejectKind::Protocol`] before it can reach a worker, even from
//!    in-process callers. Then, under the queue lock, the request is
//!    either queued or rejected — with [`RejectKind::Overloaded`] when
//!    the queue is at `queue_depth` (explicit backpressure, never
//!    silent blocking) or [`RejectKind::Shutdown`] once draining has
//!    begun. Admission is the only place requests are dropped for
//!    capacity.
//! 2. **Dequeue**: a worker pops the oldest job. A job whose deadline
//!    elapsed while it sat in the queue is answered with
//!    [`RejectKind::Deadline`] and never run — queue time is the thing
//!    deadlines bound; execution, once started, always completes.
//! 3. **Execution**: the worker materializes the request's netlist,
//!    obtains the shared session from the [`SessionCache`], and runs
//!    [`m3d_flow::FlowSession::execute`] — the same code path a direct library
//!    caller uses, which is why service responses are bit-identical to
//!    library calls at any worker count. Execution is wrapped in
//!    `catch_unwind`: a panicking flow answers the request with a
//!    [`RejectKind::Flow`] rejection and the worker survives, so one
//!    pathological request can never shrink the pool.
//! 4. **Reply**: the response is sent to the job's reply channel (the
//!    connection's writer, or the in-process [`Pending`] handle).
//!
//! # Shutdown
//!
//! [`Server::begin_drain`] atomically stops admission; workers keep
//! draining until the queue is empty, then exit. Every accepted request
//! is answered — the drain test in `tests/service.rs` holds the server
//! to that.

use crate::cache::SessionCache;
use crate::protocol::{decode_request, encode_line, salvage_id, RejectKind, Response};
use m3d_flow::FlowRequest;
use m3d_obs::Obs;
use m3d_store::Store;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing flows.
    pub workers: usize,
    /// Maximum queued (admitted, not yet started) requests; beyond
    /// this, requests are rejected `overloaded`.
    pub queue_depth: usize,
    /// Maximum resident sessions in the checkpoint cache.
    pub cache_capacity: usize,
    /// Telemetry sink: per-request spans, queue/cache counters, and the
    /// cached sessions' own flow telemetry (under `flow/`).
    pub obs: Obs,
    /// Optional persistent checkpoint store: cache misses rehydrate
    /// from it, completed sessions are written through to it, and a
    /// restarted server pointed at the same directory answers its first
    /// repeat request from disk instead of re-running the flow prefix.
    pub store: Option<Arc<Store>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            obs: Obs::disabled(),
            store: None,
        }
    }
}

/// Monotonic service counters, readable at any time via
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests a worker started executing (deadline checks included).
    pub started: u64,
    /// Requests answered `ok`.
    pub completed_ok: u64,
    /// Requests answered with a `flow` rejection.
    pub failed_flow: u64,
    /// Requests rejected `overloaded` at admission.
    pub rejected_overloaded: u64,
    /// Requests rejected `deadline` at dequeue.
    pub rejected_deadline: u64,
    /// Requests rejected `shutdown` at admission.
    pub rejected_shutdown: u64,
    /// Requests rejected `protocol` — malformed lines on the wire, and
    /// requests whose numbers fall outside [`FlowRequest::validate`]'s
    /// bounds at admission.
    pub rejected_protocol: u64,
    /// Checkpoint-cache hits.
    pub cache_hits: u64,
    /// Checkpoint-cache misses (== distinct keys built).
    pub cache_misses: u64,
    /// Cache misses rehydrated from the persistent store (warm hits).
    pub store_hits: u64,
    /// Cache misses the persistent store could not answer.
    pub store_misses: u64,
    /// Session artifacts written to the persistent store.
    pub store_spills: u64,
    /// Corrupt store records detected (and evicted) during lookups.
    pub store_corrupt_evicted: u64,
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    started: AtomicU64,
    completed_ok: AtomicU64,
    failed_flow: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    rejected_protocol: AtomicU64,
}

struct Job {
    request: FlowRequest,
    enqueued: Instant,
    reply: Sender<Response>,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
}

struct Inner {
    config: ServerConfig,
    cache: SessionCache,
    state: Mutex<QueueState>,
    available: Condvar,
    stats: Stats,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// An in-process handle to one submitted request's eventual response.
pub struct Pending {
    rx: Receiver<Response>,
}

impl Pending {
    /// Blocks until the response arrives. An accepted request always
    /// gets one (drain-on-shutdown completes the queue), so a closed
    /// channel means a worker died — reported as a rejection rather
    /// than a panic.
    #[must_use]
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::reject(None, RejectKind::Shutdown, "worker dropped the request")
        })
    }
}

/// The service engine. Cheap to clone; all clones share one pool.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts the worker pool (at least one worker).
    #[must_use]
    pub fn start(config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let cache = SessionCache::with_store(
            config.cache_capacity,
            config.obs.clone(),
            config.store.clone(),
        );
        let inner = Arc::new(Inner {
            config,
            cache,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
            }),
            available: Condvar::new(),
            stats: Stats::default(),
            workers: Mutex::new(Vec::new()),
        });
        let server = Server { inner };
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let worker = server.clone();
            handles.push(std::thread::spawn(move || worker.run_worker()));
        }
        *server.inner.workers.lock().expect("workers poisoned") = handles;
        server
    }

    /// Submits a request from in-process callers; the response arrives
    /// on the returned [`Pending`] handle (including rejections).
    #[must_use]
    pub fn submit(&self, request: FlowRequest) -> Pending {
        let (tx, rx) = channel();
        self.enqueue(request, &tx);
        Pending { rx }
    }

    /// Admits `request` or rejects it, answering through `reply`.
    /// Requests outside [`FlowRequest::validate`]'s numeric bounds are
    /// rejected `protocol` before touching the queue — workers only
    /// ever see inputs the flow can safely size buffers for. Capacity
    /// control runs under the queue lock, so the depth bound is exact.
    pub fn enqueue(&self, request: FlowRequest, reply: &Sender<Response>) {
        let obs = &self.inner.config.obs;
        let id = request.id;
        if let Err(e) = request.validate() {
            self.inner
                .stats
                .rejected_protocol
                .fetch_add(1, Ordering::Relaxed);
            obs.perf_add("serve/rejected_protocol", 1);
            let _ = reply.send(Response::reject(
                Some(id),
                RejectKind::Protocol,
                format!("request out of bounds: {e}"),
            ));
            return;
        }
        let verdict = {
            let mut state = self.inner.state.lock().expect("server queue poisoned");
            if !state.accepting {
                Err(RejectKind::Shutdown)
            } else if state.queue.len() >= self.inner.config.queue_depth {
                Err(RejectKind::Overloaded)
            } else {
                state.queue.push_back(Job {
                    request,
                    enqueued: Instant::now(),
                    reply: reply.clone(),
                });
                obs.gauge_max("serve/queue_depth_peak", state.queue.len() as f64);
                Ok(())
            }
        };
        match verdict {
            Ok(()) => {
                self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/accepted", 1);
                self.inner.available.notify_one();
            }
            Err(kind) => {
                let (stat, message) = match kind {
                    RejectKind::Overloaded => (
                        &self.inner.stats.rejected_overloaded,
                        format!(
                            "queue is at capacity ({}); retry later",
                            self.inner.config.queue_depth
                        ),
                    ),
                    _ => (
                        &self.inner.stats.rejected_shutdown,
                        "server is draining; no new work accepted".to_string(),
                    ),
                };
                stat.fetch_add(1, Ordering::Relaxed);
                obs.perf_add(&format!("serve/rejected_{kind}"), 1);
                let _ = reply.send(Response::reject(Some(id), kind, message));
            }
        }
    }

    /// One worker's loop: drain jobs until shutdown empties the queue.
    fn run_worker(&self) {
        loop {
            let job = {
                let mut state = self.inner.state.lock().expect("server queue poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if !state.accepting {
                        return;
                    }
                    state = self
                        .inner
                        .available
                        .wait(state)
                        .expect("server queue poisoned");
                }
            };
            self.process(job);
        }
    }

    fn process(&self, job: Job) {
        let obs = &self.inner.config.obs;
        self.inner.stats.started.fetch_add(1, Ordering::Relaxed);
        let _span = obs.span("serve/request");
        let id = job.request.id;
        if let Some(deadline_ms) = job.request.deadline_ms {
            if job.enqueued.elapsed() > Duration::from_millis(deadline_ms) {
                self.inner
                    .stats
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/rejected_deadline", 1);
                let _ = job.reply.send(Response::reject(
                    Some(id),
                    RejectKind::Deadline,
                    format!("deadline of {deadline_ms} ms elapsed while queued"),
                ));
                return;
            }
        }
        // A panicking flow must cost the client one rejection, not the
        // pool one worker: admission bounds make panics unlikely, the
        // unwind barrier makes them survivable. The cache's lock is
        // released before any flow code runs, so no lock is poisoned.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let netlist = job.request.netlist.materialize();
            let (session, cache_hit) = self
                .inner
                .cache
                .get_or_build(&netlist, &job.request.options);
            obs.perf_add(
                if cache_hit {
                    "serve/cache_hit"
                } else {
                    "serve/cache_miss"
                },
                1,
            );
            let outcome = session.and_then(|s| {
                let outcome = s.execute(&job.request.command);
                if outcome.is_ok() {
                    // Write-through: the session (now warm, possibly
                    // with a freshly computed pseudo-3-D checkpoint)
                    // reaches the disk tier before the client hears
                    // back, so a restart after this response can always
                    // answer the same key from the store.
                    self.inner.cache.persist(&s);
                }
                outcome
            });
            (outcome, cache_hit)
        }));
        let (outcome, cache_hit) = match executed {
            Ok(pair) => pair,
            Err(payload) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                obs.perf_add("serve/panicked", 1);
                let _ = job.reply.send(Response::reject(
                    Some(id),
                    RejectKind::Flow,
                    format!("flow execution panicked: {}", panic_text(&payload)),
                ));
                return;
            }
        };
        let response = match outcome {
            Ok(report) => {
                self.inner
                    .stats
                    .completed_ok
                    .fetch_add(1, Ordering::Relaxed);
                Response::Ok {
                    id,
                    cache_hit,
                    report: Box::new(report),
                }
            }
            Err(e) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                Response::reject(Some(id), RejectKind::Flow, e.to_string())
            }
        };
        let _ = job.reply.send(response);
    }

    /// Stops admission. Already-queued requests still run to
    /// completion; new ones are rejected `shutdown`.
    pub fn begin_drain(&self) {
        let mut state = self.inner.state.lock().expect("server queue poisoned");
        state.accepting = false;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Drains and joins the pool: stops admission, waits for every
    /// queued request to finish, and returns the final counters.
    #[must_use]
    pub fn shutdown(&self) -> StatsSnapshot {
        self.begin_drain();
        let handles = std::mem::take(&mut *self.inner.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            started: s.started.load(Ordering::Relaxed),
            completed_ok: s.completed_ok.load(Ordering::Relaxed),
            failed_flow: s.failed_flow.load(Ordering::Relaxed),
            rejected_overloaded: s.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: s.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
            rejected_protocol: s.rejected_protocol.load(Ordering::Relaxed),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            store_hits: self.inner.cache.store_hits(),
            store_misses: self.inner.cache.store_misses(),
            store_spills: self.inner.cache.store_spills(),
            store_corrupt_evicted: self.inner.cache.store_corrupt_evicted(),
        }
    }

    /// The checkpoint cache (stats and residency introspection).
    #[must_use]
    pub fn cache(&self) -> &SessionCache {
        &self.inner.cache
    }
}

// ---------------------------------------------------------------------
// TCP front
// ---------------------------------------------------------------------

/// The TCP face of a [`Server`]: an acceptor thread plus one
/// reader/writer thread pair per connection, all feeding the shared
/// worker pool.
pub struct TcpServer {
    server: Server,
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = Server::start(config);
        let stopping = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let server = server.clone();
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || {
                // Live connections' read halves, so shutdown can unblock
                // readers parked in `read_line` on idle clients. Handlers
                // deregister themselves on exit to keep the map (and its
                // fds) bounded by *live* connections, not total served.
                let live: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::default();
                let mut connections: Vec<JoinHandle<()>> = Vec::new();
                let mut next_id: u64 = 0;
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        live.lock()
                            .expect("connection registry poisoned")
                            .insert(conn_id, clone);
                    }
                    let server = server.clone();
                    let live = Arc::clone(&live);
                    connections.push(std::thread::spawn(move || {
                        handle_connection(&server, stream);
                        live.lock()
                            .expect("connection registry poisoned")
                            .remove(&conn_id);
                    }));
                }
                // Close the read half of every still-open connection:
                // idle readers see EOF and exit, while write halves stay
                // up so in-flight responses still drain to clients.
                for conn in live.lock().expect("connection registry poisoned").values() {
                    let _ = conn.shutdown(Shutdown::Read);
                }
                for c in connections {
                    let _ = c.join();
                }
            })
        };
        Ok(TcpServer {
            server,
            local_addr,
            stopping,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the socket.
    #[must_use]
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Graceful shutdown: stop accepting connections, close the read
    /// half of every open connection (so idle clients cannot stall the
    /// drain — their readers see EOF while in-flight responses still
    /// reach them), drain the queue, answer everything admitted, and
    /// return the final counters.
    #[must_use]
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.server.shutdown()
    }

    /// Blocks forever serving requests (the `serve` binary's main
    /// loop).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// One connection: the reader decodes lines and feeds the pool; a
/// dedicated writer serializes responses back (workers finish out of
/// order — ids correlate). Malformed lines are answered in-line with a
/// `protocol` rejection and the connection stays usable.
fn handle_connection(server: &Server, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for response in rx {
            if out.write_all(encode_line(&response).as_bytes()).is_err() {
                break;
            }
            if out.flush().is_err() {
                break;
            }
        }
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match decode_request(text) {
            Ok(request) => server.enqueue(request, &tx),
            Err(e) => {
                server
                    .inner
                    .stats
                    .rejected_protocol
                    .fetch_add(1, Ordering::Relaxed);
                server
                    .inner
                    .config
                    .obs
                    .perf_add("serve/rejected_protocol", 1);
                let _ = tx.send(Response::reject(
                    salvage_id(text),
                    RejectKind::Protocol,
                    e.to_string(),
                ));
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Best-effort text of a panic payload (`panic!` carries a `&str` or
/// `String`; anything else is opaque).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
