//! The service engine: a bounded worker pool over a backpressured
//! queue, with graceful drain-on-shutdown — plus the event-driven TCP
//! front that feeds it newline-delimited JSON.
//!
//! # Life of a request
//!
//! 1. **Admission** ([`Server::enqueue`]): requests are first held to
//!    the numeric bounds of [`FlowRequest::validate`] — an absurd
//!    netlist scale or grid-sizing knob is rejected
//!    [`RejectKind::Protocol`] before it can reach a worker, even from
//!    in-process callers. Then, under the queue lock, the request is
//!    either queued or rejected — with [`RejectKind::Overloaded`] when
//!    the queue is at `queue_depth` (explicit backpressure, never
//!    silent blocking) or [`RejectKind::Shutdown`] once draining has
//!    begun. Admission is the only place requests are dropped for
//!    capacity.
//! 2. **Dequeue**: a worker pops the oldest job. A job whose deadline
//!    elapsed while it sat in the queue is answered with
//!    [`RejectKind::Deadline`] and never run — queue time is the thing
//!    deadlines bound; execution, once started, always completes.
//! 3. **Execution**: the worker materializes the request's netlist,
//!    obtains the shared session from the [`SessionCache`], and runs
//!    [`m3d_flow::FlowSession::execute`] — the same code path a direct library
//!    caller uses, which is why service responses are bit-identical to
//!    library calls at any worker count. Execution is wrapped in
//!    `catch_unwind`: a panicking flow answers the request with a
//!    [`RejectKind::Flow`] rejection and the worker survives, so one
//!    pathological request can never shrink the pool.
//! 4. **Reply**: the response goes back through the job's reply route —
//!    an in-process [`Pending`] channel, or a message to the reactor
//!    shard that owns the connection. Responses bound for a socket are
//!    rendered to their wire line *on the worker thread*, so a shard's
//!    event loop never serializes a large report.
//!
//! # The TCP front
//!
//! [`TcpServer`] runs a small fixed number of **shard** threads, each
//! owning a readiness poller (see [`crate::reactor`]), a clone of the
//! nonblocking listener, and the full state of the connections it
//! accepted. Nothing in a shard blocks on a socket: reads, writes and
//! accepts are all readiness-driven and partial, so thousands of idle
//! connections cost a shard nothing but registered fds, and one slow
//! peer cannot stall the others. Flow execution stays on the worker
//! pool — a shard only frames lines, decodes requests (on `m3d-json`'s
//! borrowed zero-copy path) and shuttles rendered response lines.
//! Per-connection write buffers are bounded: past
//! [`TcpTuning::write_high_water`] the shard stops *reading* from that
//! connection (natural TCP backpressure) instead of buffering without
//! limit, resuming below half the mark.
//!
//! # Shutdown
//!
//! [`Server::begin_drain`] atomically stops admission; workers keep
//! draining until the queue is empty, then exit. Every accepted request
//! is answered — the drain test in `tests/service.rs` holds the server
//! to that. [`TcpServer::shutdown`] first tells every shard to drain:
//! the shard stops accepting, stops reading (idle clients see EOF when
//! their connection closes), answers and flushes everything in flight,
//! and only then does the engine itself drain — the same
//! everything-admitted-is-answered guarantee as the old
//! thread-per-connection front, at thousands of connections.

use crate::cache::SessionCache;
use crate::conn::{Conn, FrameEnd};
use crate::protocol::{
    decode_request, encode_line, salvage_id, RejectKind, Response, ServerMessage, StreamEvent,
};
use crate::reactor::{wake_pair, Event, Interest, Poller, ReactorKind, WakeReader, Waker};
use m3d_flow::{FlowCommand, FlowRequest};
use m3d_obs::Obs;
use m3d_store::Store;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing flows.
    pub workers: usize,
    /// Maximum queued (admitted, not yet started) requests; beyond
    /// this, requests are rejected `overloaded`.
    pub queue_depth: usize,
    /// Maximum resident sessions in the checkpoint cache.
    pub cache_capacity: usize,
    /// Telemetry sink: per-request spans, queue/cache counters, and the
    /// cached sessions' own flow telemetry (under `flow/`).
    pub obs: Obs,
    /// Optional persistent checkpoint store: cache misses rehydrate
    /// from it, completed sessions are written through to it, and a
    /// restarted server pointed at the same directory answers its first
    /// repeat request from disk instead of re-running the flow prefix.
    pub store: Option<Arc<Store>>,
    /// Fairness cap: at most this many of one client's sweep points may
    /// be queued or executing at once. Points past the cap are deferred
    /// (counted in [`StatsSnapshot::quota_deferred`]) and promoted one
    /// at a time as the client's earlier points finish, so a large sweep
    /// shares the pool instead of monopolizing it. Floored at 1.
    pub sweep_inflight_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            obs: Obs::disabled(),
            store: None,
            sweep_inflight_cap: 4,
        }
    }
}

/// Tuning for the TCP front's reactor shards. Separate from
/// [`ServerConfig`] so the engine's knobs stay orthogonal to the
/// socket-facing ones (and existing `ServerConfig` literals keep
/// compiling).
#[derive(Debug, Clone)]
pub struct TcpTuning {
    /// Reactor shard threads. Each owns a poller and its accepted
    /// connections; connections are distributed by whichever shard's
    /// accept wins.
    pub shards: usize,
    /// Hard cap on one request line; a longer line is answered with a
    /// `protocol` rejection and the connection's read half ends.
    pub max_line_bytes: usize,
    /// Per-connection outbound buffer level above which the shard stops
    /// reading from that connection until the peer drains (resumes at
    /// half this mark).
    pub write_high_water: usize,
    /// Shrink each accepted socket's kernel send buffer (`SO_SNDBUF`).
    /// Tests use this to make write backpressure reachable with small
    /// data volumes; production leaves it `None`.
    pub send_buffer_bytes: Option<usize>,
    /// Which poller backend to use (`Auto`: epoll on Linux unless
    /// `M3D_REACTOR=poll`).
    pub reactor: ReactorKind,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning {
            shards: 2,
            max_line_bytes: 1 << 20,
            write_high_water: 256 << 10,
            send_buffer_bytes: None,
            reactor: ReactorKind::Auto,
        }
    }
}

/// Monotonic service counters, readable at any time via
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests a worker started executing (deadline checks included).
    pub started: u64,
    /// Requests answered `ok`.
    pub completed_ok: u64,
    /// Requests answered with a `flow` rejection.
    pub failed_flow: u64,
    /// Requests rejected `overloaded` at admission.
    pub rejected_overloaded: u64,
    /// Requests rejected `deadline` at dequeue.
    pub rejected_deadline: u64,
    /// Requests rejected `shutdown` at admission.
    pub rejected_shutdown: u64,
    /// Requests rejected `protocol` — malformed lines on the wire, and
    /// requests whose numbers fall outside [`FlowRequest::validate`]'s
    /// bounds at admission.
    pub rejected_protocol: u64,
    /// Checkpoint-cache hits.
    pub cache_hits: u64,
    /// Checkpoint-cache misses (== distinct keys built).
    pub cache_misses: u64,
    /// Cache misses rehydrated from the persistent store (warm hits).
    pub store_hits: u64,
    /// Cache misses the persistent store could not answer.
    pub store_misses: u64,
    /// Session artifacts written to the persistent store.
    pub store_spills: u64,
    /// Corrupt store records detected (and evicted) during lookups.
    pub store_corrupt_evicted: u64,
    /// Protocol-v2 sweep requests admitted. Sweeps and their points are
    /// counted here and in the `sweep_*` fields only — never in the v1
    /// counters above, whose values stay comparable across protocol
    /// versions.
    pub sweeps: u64,
    /// Sweep points that completed and streamed a `point` event.
    pub sweep_points: u64,
    /// Sweep points that failed and streamed an `error` event.
    pub sweep_point_errors: u64,
    /// Sweep points deferred at admission or promotion because their
    /// client was at [`ServerConfig::sweep_inflight_cap`]. Deterministic
    /// for a lone sweep: `total points - cap` when the sweep is larger
    /// than the cap.
    pub quota_deferred: u64,
    /// Sweep points dropped without running because their client
    /// disconnected (or its sweep was otherwise cancelled) mid-stream.
    pub sweep_cancelled_points: u64,
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    started: AtomicU64,
    completed_ok: AtomicU64,
    failed_flow: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    rejected_protocol: AtomicU64,
    sweeps: AtomicU64,
    sweep_points: AtomicU64,
    sweep_point_errors: AtomicU64,
    quota_deferred: AtomicU64,
    sweep_cancelled_points: AtomicU64,
}

/// Where a job's response goes: back to an in-process caller (single
/// response or message stream), or to the reactor shard owning the
/// connection it arrived on.
enum ReplyTo {
    Channel(Sender<Response>),
    Stream(Sender<ServerMessage>),
    Conn { shard: ShardHandle, conn: u64 },
}

impl ReplyTo {
    fn send(&self, response: Response) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(response);
            }
            ReplyTo::Stream(tx) => {
                let _ = tx.send(ServerMessage::Response(response));
            }
            ReplyTo::Conn { shard, conn } => {
                // Render on this (worker or rejecting caller) thread:
                // shard event loops never serialize reports. A single
                // response is always its request's terminal line.
                shard.reply(*conn, encode_line(&response), true);
            }
        }
    }
}

/// Where a sweep's event stream goes. Split from [`ReplyTo`] because a
/// plain response channel cannot carry a stream.
enum EventRoute {
    Stream(Sender<ServerMessage>),
    Conn { shard: ShardHandle, conn: u64 },
}

impl EventRoute {
    /// Ships one event. `last` marks the stream's terminal line so the
    /// owning shard can balance its in-flight accounting exactly once
    /// per request, however many event lines precede it.
    fn send(&self, event: StreamEvent, last: bool) {
        match self {
            EventRoute::Stream(tx) => {
                let _ = tx.send(ServerMessage::Event(event));
            }
            EventRoute::Conn { shard, conn } => {
                shard.reply(*conn, encode_line(&event), last);
            }
        }
    }

    /// Answers a sweep that never started (admission rejection) with a
    /// plain v1 rejection as its terminal line.
    fn reject(&self, response: Response) {
        match self {
            EventRoute::Stream(tx) => {
                let _ = tx.send(ServerMessage::Response(response));
            }
            EventRoute::Conn { shard, conn } => {
                shard.reply(*conn, encode_line(&response), true);
            }
        }
    }
}

/// Shared state of one in-flight sweep: the event route plus the
/// counters that decide when `done` fires. Workers touch it from many
/// threads; the terminal event is emitted by whichever worker (or
/// cancellation path) brings `remaining` to zero.
struct SweepShared {
    id: u64,
    client: u64,
    route: EventRoute,
    remaining: AtomicU64,
    delivered: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicBool,
}

impl SweepShared {
    /// Accounts one finished (delivered, failed, or dropped) point and
    /// emits `done` when it was the last. Returns whether it was.
    fn finish_point(&self) -> bool {
        let remaining = self.remaining.fetch_sub(1, Ordering::AcqRel) - 1;
        if remaining == 0 {
            self.route.send(
                StreamEvent::Done {
                    id: self.id,
                    points: self.delivered.load(Ordering::Acquire),
                    errors: self.errors.load(Ordering::Acquire),
                },
                true,
            );
            return true;
        }
        false
    }
}

/// A shard's mailbox address: messages plus the waker that pops its
/// poller out of `wait`.
#[derive(Clone)]
struct ShardHandle {
    tx: Sender<ShardMsg>,
    waker: Arc<Waker>,
}

impl ShardHandle {
    fn reply(&self, conn: u64, line: String, last: bool) {
        if self.tx.send(ShardMsg::Reply { conn, line, last }).is_ok() {
            self.waker.wake();
        }
    }

    fn drain(&self) {
        if self.tx.send(ShardMsg::Drain).is_ok() {
            self.waker.wake();
        }
    }
}

enum ShardMsg {
    /// A rendered server line for one of the shard's connections.
    /// `last` is set on the terminal line of a request (the single
    /// response, or a sweep's `done`), which is what balances the
    /// shard's and connection's in-flight counters.
    Reply { conn: u64, line: String, last: bool },
    /// Stop accepting and reading; answer and flush what's in flight,
    /// then exit.
    Drain,
}

/// How a job answers: a whole request, or one point of a sweep.
enum JobReply {
    Single(ReplyTo),
    SweepPoint {
        shared: Arc<SweepShared>,
        index: u64,
    },
}

struct Job {
    request: FlowRequest,
    enqueued: Instant,
    reply: JobReply,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    /// Per-client count of sweep points currently queued or executing.
    sweep_inflight: HashMap<u64, u64>,
    /// Per-client sweep points held back by the fairness cap, promoted
    /// one at a time as that client's in-flight points finish.
    deferred: HashMap<u64, VecDeque<Job>>,
    /// Live sweeps by client, so a disconnect can cancel them.
    sweeps: HashMap<u64, Vec<Arc<SweepShared>>>,
}

struct Inner {
    config: ServerConfig,
    cache: SessionCache,
    state: Mutex<QueueState>,
    available: Condvar,
    stats: Stats,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Fairness client ids for in-process streaming submitters. TCP
    /// clients get ids derived from their shard and connection token
    /// instead (disjoint: those have the shard index in the high bits).
    next_client: AtomicU64,
}

/// An in-process handle to one submitted request's eventual response.
pub struct Pending {
    rx: Receiver<Response>,
}

impl Pending {
    /// Blocks until the response arrives. An accepted request always
    /// gets one (drain-on-shutdown completes the queue), so a closed
    /// channel means a worker died — reported as a rejection rather
    /// than a panic.
    #[must_use]
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::reject(None, RejectKind::Shutdown, "worker dropped the request")
        })
    }
}

/// An in-process handle to one streaming submission: every
/// [`ServerMessage`] the request produces, in emission order. A v1
/// request yields exactly one `Response` message; a v2 sweep yields
/// `progress`, one `point`/`error` per grid point, and a terminal
/// `done`.
pub struct PendingStream {
    rx: Receiver<ServerMessage>,
}

impl PendingStream {
    /// Blocks for the next message; `None` once the stream is finished.
    #[must_use]
    pub fn next(&self) -> Option<ServerMessage> {
        self.rx.recv().ok()
    }

    /// Blocks until the stream finishes and returns every message.
    #[must_use]
    pub fn wait(self) -> Vec<ServerMessage> {
        self.rx.iter().collect()
    }
}

/// The service engine. Cheap to clone; all clones share one pool.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts the worker pool (at least one worker).
    #[must_use]
    pub fn start(config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let cache = SessionCache::with_store(
            config.cache_capacity,
            config.obs.clone(),
            config.store.clone(),
        );
        let inner = Arc::new(Inner {
            config,
            cache,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                sweep_inflight: HashMap::new(),
                deferred: HashMap::new(),
                sweeps: HashMap::new(),
            }),
            available: Condvar::new(),
            stats: Stats::default(),
            workers: Mutex::new(Vec::new()),
            next_client: AtomicU64::new(1),
        });
        let server = Server { inner };
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let worker = server.clone();
            handles.push(std::thread::spawn(move || worker.run_worker()));
        }
        *server.inner.workers.lock().expect("workers poisoned") = handles;
        server
    }

    /// Submits a request from in-process callers; the response arrives
    /// on the returned [`Pending`] handle (including rejections).
    /// Streaming (`sweep`) requests are rejected here — a single
    /// response cannot carry a stream; use [`Server::submit_stream`].
    #[must_use]
    pub fn submit(&self, request: FlowRequest) -> Pending {
        let (tx, rx) = channel();
        self.enqueue(request, &tx);
        Pending { rx }
    }

    /// Submits a request and streams back everything it produces: one
    /// `Response` message for a single-shot request, or the full
    /// `progress`/`point`/`done` event stream for a v2 sweep. Each call
    /// is its own fairness client for the sweep in-flight cap.
    #[must_use]
    pub fn submit_stream(&self, request: FlowRequest) -> PendingStream {
        let (tx, rx) = channel();
        let client = self.inner.next_client.fetch_add(1, Ordering::Relaxed);
        self.enqueue_as(request, ReplyTo::Stream(tx), client);
        PendingStream { rx }
    }

    /// Admits `request` or rejects it, answering through `reply`.
    /// Requests outside [`FlowRequest::validate`]'s numeric bounds are
    /// rejected `protocol` before touching the queue — workers only
    /// ever see inputs the flow can safely size buffers for. Capacity
    /// control runs under the queue lock, so the depth bound is exact.
    pub fn enqueue(&self, request: FlowRequest, reply: &Sender<Response>) {
        self.enqueue_as(request, ReplyTo::Channel(reply.clone()), 0);
    }

    fn enqueue_as(&self, request: FlowRequest, reply: ReplyTo, client: u64) {
        let obs = &self.inner.config.obs;
        let id = request.id;
        if let Err(e) = request.validate() {
            self.note_rejected_protocol();
            reply.send(Response::reject(
                Some(id),
                RejectKind::Protocol,
                format!("request out of bounds: {e}"),
            ));
            return;
        }
        if matches!(request.command, FlowCommand::Sweep { .. }) {
            self.enqueue_sweep(request, reply, client);
            return;
        }
        let verdict = {
            let mut state = self.inner.state.lock().expect("server queue poisoned");
            if !state.accepting {
                Err((RejectKind::Shutdown, reply))
            } else if state.queue.len() >= self.inner.config.queue_depth {
                Err((RejectKind::Overloaded, reply))
            } else {
                state.queue.push_back(Job {
                    request,
                    enqueued: Instant::now(),
                    reply: JobReply::Single(reply),
                });
                obs.gauge_max("serve/queue_depth_peak", state.queue.len() as f64);
                Ok(())
            }
        };
        match verdict {
            Ok(()) => {
                self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/accepted", 1);
                self.inner.available.notify_one();
            }
            Err((kind, reply)) => {
                let (stat, message) = match kind {
                    RejectKind::Overloaded => (
                        &self.inner.stats.rejected_overloaded,
                        format!(
                            "queue is at capacity ({}); retry later",
                            self.inner.config.queue_depth
                        ),
                    ),
                    _ => (
                        &self.inner.stats.rejected_shutdown,
                        "server is draining; no new work accepted".to_string(),
                    ),
                };
                stat.fetch_add(1, Ordering::Relaxed);
                obs.perf_add(&format!("serve/rejected_{kind}"), 1);
                reply.send(Response::reject(Some(id), kind, message));
            }
        }
    }

    /// Admits a validated v2 sweep: decomposes it into per-point v1
    /// requests that run through the exact single-shot path (same
    /// cache, same execute), emits `progress` up front, and queues at
    /// most [`ServerConfig::sweep_inflight_cap`] points for this client
    /// — the rest wait in a per-client deferred list and are promoted
    /// one at a time as earlier points finish.
    fn enqueue_sweep(&self, request: FlowRequest, reply: ReplyTo, client: u64) {
        let obs = &self.inner.config.obs;
        let id = request.id;
        if matches!(reply, ReplyTo::Channel(_)) {
            // A single-response channel cannot carry a stream; this is
            // a caller error, not a capacity condition.
            self.note_rejected_protocol();
            reply.send(Response::reject(
                Some(id),
                RejectKind::Protocol,
                "sweep responses are a stream; use submit_stream or a streaming TCP client",
            ));
            return;
        }
        // The request passed `validate`, so the (sweep) command's grid
        // is in bounds and decomposes.
        let points = request
            .decompose_sweep()
            .expect("a validated sweep decomposes");
        let route = match reply {
            ReplyTo::Stream(tx) => EventRoute::Stream(tx),
            ReplyTo::Conn { shard, conn } => EventRoute::Conn { shard, conn },
            ReplyTo::Channel(_) => unreachable!("rejected above"),
        };
        let total = points.len() as u64;
        let cap = self.inner.config.sweep_inflight_cap.max(1) as u64;
        let deferred_count = {
            let mut guard = self.inner.state.lock().expect("server queue poisoned");
            if !guard.accepting {
                drop(guard);
                self.inner
                    .stats
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/rejected_shutdown", 1);
                route.reject(Response::reject(
                    Some(id),
                    RejectKind::Shutdown,
                    "server is draining; no new work accepted",
                ));
                return;
            }
            // Sweep points deliberately bypass `queue_depth`: the
            // per-client cap is their backpressure, and a grid larger
            // than the queue must not be unschedulable by construction.
            let state = &mut *guard;
            let shared = Arc::new(SweepShared {
                id,
                client,
                route,
                remaining: AtomicU64::new(total),
                delivered: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            });
            self.inner.stats.sweeps.fetch_add(1, Ordering::Relaxed);
            obs.perf_add("serve/sweeps", 1);
            state
                .sweeps
                .entry(client)
                .or_default()
                .push(Arc::clone(&shared));
            // Emitted under the lock, before any point job is visible
            // to a worker: `progress` is always the stream's first line.
            shared
                .route
                .send(StreamEvent::Progress { id, total }, false);
            let now = Instant::now();
            let mut deferred = 0u64;
            for (index, point) in points.into_iter().enumerate() {
                let job = Job {
                    request: point,
                    enqueued: now,
                    reply: JobReply::SweepPoint {
                        shared: Arc::clone(&shared),
                        index: index as u64,
                    },
                };
                let inflight = state.sweep_inflight.entry(client).or_insert(0);
                if *inflight < cap {
                    *inflight += 1;
                    state.queue.push_back(job);
                } else {
                    state.deferred.entry(client).or_default().push_back(job);
                    deferred += 1;
                }
            }
            obs.gauge_max("serve/queue_depth_peak", state.queue.len() as f64);
            deferred
        };
        if deferred_count > 0 {
            self.inner
                .stats
                .quota_deferred
                .fetch_add(deferred_count, Ordering::Relaxed);
            obs.perf_add("serve/quota_deferred", deferred_count);
        }
        self.inner.available.notify_all();
    }

    /// Cancels everything a disconnected client had in flight: live
    /// sweeps are flagged (queued points retire unrun at dequeue) and
    /// deferred points are dropped here, each balancing its sweep's
    /// `remaining` so `done` accounting still closes.
    fn cancel_client(&self, client: u64) {
        let (sweeps, dropped) = {
            let mut state = self.inner.state.lock().expect("server queue poisoned");
            let sweeps = state.sweeps.remove(&client).unwrap_or_default();
            let dropped = state.deferred.remove(&client).unwrap_or_default();
            (sweeps, dropped)
        };
        for shared in &sweeps {
            shared.cancelled.store(true, Ordering::Release);
        }
        if dropped.is_empty() {
            return;
        }
        self.inner
            .stats
            .sweep_cancelled_points
            .fetch_add(dropped.len() as u64, Ordering::Relaxed);
        self.inner
            .config
            .obs
            .perf_add("serve/sweep_cancelled_points", dropped.len() as u64);
        for job in dropped {
            if let JobReply::SweepPoint { shared, .. } = job.reply {
                // May emit `done` to a dead route — discarded there,
                // but it keeps the shard's in-flight books balanced.
                let _ = shared.finish_point();
            }
        }
    }

    /// Counts one `protocol` rejection that never became a request
    /// (malformed wire lines — the shards answer those in-line).
    fn note_rejected_protocol(&self) {
        self.inner
            .stats
            .rejected_protocol
            .fetch_add(1, Ordering::Relaxed);
        self.inner.config.obs.perf_add("serve/rejected_protocol", 1);
    }

    fn obs(&self) -> &Obs {
        &self.inner.config.obs
    }

    /// One worker's loop: drain jobs until shutdown empties the queue.
    fn run_worker(&self) {
        loop {
            let job = {
                let mut state = self.inner.state.lock().expect("server queue poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if !state.accepting {
                        return;
                    }
                    state = self
                        .inner
                        .available
                        .wait(state)
                        .expect("server queue poisoned");
                }
            };
            self.process(job);
        }
    }

    fn process(&self, job: Job) {
        let Job {
            request,
            enqueued,
            reply,
        } = job;
        match reply {
            JobReply::Single(reply) => self.process_single(request, enqueued, &reply),
            JobReply::SweepPoint { shared, index } => {
                self.process_sweep_point(&shared, index, &request, enqueued);
                self.retire_sweep_point(&shared);
            }
        }
    }

    fn process_single(&self, request: FlowRequest, enqueued: Instant, reply: &ReplyTo) {
        let obs = &self.inner.config.obs;
        self.inner.stats.started.fetch_add(1, Ordering::Relaxed);
        let _span = obs.span("serve/request");
        let id = request.id;
        if let Some(deadline_ms) = request.deadline_ms {
            if enqueued.elapsed() > Duration::from_millis(deadline_ms) {
                self.inner
                    .stats
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/rejected_deadline", 1);
                reply.send(Response::reject(
                    Some(id),
                    RejectKind::Deadline,
                    format!("deadline of {deadline_ms} ms elapsed while queued"),
                ));
                return;
            }
        }
        // A panicking flow must cost the client one rejection, not the
        // pool one worker: admission bounds make panics unlikely, the
        // unwind barrier makes them survivable. The cache's lock is
        // released before any flow code runs, so no lock is poisoned.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let netlist = request.netlist.materialize();
            let (session, cache_hit) = self.inner.cache.get_or_build(&netlist, &request.options);
            obs.perf_add(
                if cache_hit {
                    "serve/cache_hit"
                } else {
                    "serve/cache_miss"
                },
                1,
            );
            let outcome = session.and_then(|s| {
                let outcome = s.execute(&request.command);
                if outcome.is_ok() {
                    // Write-through: the session (now warm, possibly
                    // with a freshly computed pseudo-3-D checkpoint)
                    // reaches the disk tier before the client hears
                    // back, so a restart after this response can always
                    // answer the same key from the store.
                    self.inner.cache.persist(&s);
                }
                outcome
            });
            (outcome, cache_hit)
        }));
        let (outcome, cache_hit) = match executed {
            Ok(pair) => pair,
            Err(payload) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                obs.perf_add("serve/panicked", 1);
                reply.send(Response::reject(
                    Some(id),
                    RejectKind::Flow,
                    format!("flow execution panicked: {}", panic_text(&payload)),
                ));
                return;
            }
        };
        let response = match outcome {
            Ok(report) => {
                self.inner
                    .stats
                    .completed_ok
                    .fetch_add(1, Ordering::Relaxed);
                Response::Ok {
                    id,
                    cache_hit,
                    report: Box::new(report),
                }
            }
            Err(e) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                Response::reject(Some(id), RejectKind::Flow, e.to_string())
            }
        };
        reply.send(response);
    }

    /// Runs one sweep point through the exact v1 execution path (same
    /// cache lookup, same [`m3d_flow::FlowSession::execute`]) and
    /// streams its `point` or `error` event. Counted only in the
    /// `sweep_*` stats — never in the v1 request counters.
    fn process_sweep_point(
        &self,
        shared: &Arc<SweepShared>,
        index: u64,
        request: &FlowRequest,
        enqueued: Instant,
    ) {
        let obs = &self.inner.config.obs;
        let stats = &self.inner.stats;
        if shared.cancelled.load(Ordering::Acquire) {
            // Individually preemptible: a cancelled sweep's queued
            // points retire here without running.
            stats.sweep_cancelled_points.fetch_add(1, Ordering::Relaxed);
            obs.perf_add("serve/sweep_cancelled_points", 1);
            return;
        }
        let _span = obs.span("serve/sweep_point");
        if let Some(deadline_ms) = request.deadline_ms {
            if enqueued.elapsed() > Duration::from_millis(deadline_ms) {
                stats.sweep_point_errors.fetch_add(1, Ordering::Relaxed);
                shared.errors.fetch_add(1, Ordering::Release);
                shared.route.send(
                    StreamEvent::Error {
                        id: shared.id,
                        index,
                        kind: RejectKind::Deadline,
                        message: format!("deadline of {deadline_ms} ms elapsed while queued"),
                    },
                    false,
                );
                return;
            }
        }
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let netlist = request.netlist.materialize();
            let (session, cache_hit) = self.inner.cache.get_or_build(&netlist, &request.options);
            obs.perf_add(
                if cache_hit {
                    "serve/cache_hit"
                } else {
                    "serve/cache_miss"
                },
                1,
            );
            let outcome = session.and_then(|s| {
                let outcome = s.execute(&request.command);
                if outcome.is_ok() {
                    self.inner.cache.persist(&s);
                }
                outcome
            });
            (outcome, cache_hit)
        }));
        match executed {
            Ok((Ok(report), cache_hit)) => {
                stats.sweep_points.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/sweep_points", 1);
                shared.delivered.fetch_add(1, Ordering::Release);
                shared.route.send(
                    StreamEvent::Point {
                        id: shared.id,
                        index,
                        cache_hit,
                        report: Box::new(report),
                    },
                    false,
                );
            }
            Ok((Err(e), _)) => {
                stats.sweep_point_errors.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/sweep_point_errors", 1);
                shared.errors.fetch_add(1, Ordering::Release);
                shared.route.send(
                    StreamEvent::Error {
                        id: shared.id,
                        index,
                        kind: RejectKind::Flow,
                        message: e.to_string(),
                    },
                    false,
                );
            }
            Err(payload) => {
                stats.sweep_point_errors.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/sweep_point_errors", 1);
                obs.perf_add("serve/panicked", 1);
                shared.errors.fetch_add(1, Ordering::Release);
                shared.route.send(
                    StreamEvent::Error {
                        id: shared.id,
                        index,
                        kind: RejectKind::Flow,
                        message: format!("flow execution panicked: {}", panic_text(&payload)),
                    },
                    false,
                );
            }
        }
    }

    /// Books one finished point: emits `done` (and unregisters the
    /// sweep) when it was the last, then frees the client's fairness
    /// slot and promotes its next deferred point, if any.
    fn retire_sweep_point(&self, shared: &Arc<SweepShared>) {
        let finished = shared.finish_point();
        let mut guard = self.inner.state.lock().expect("server queue poisoned");
        let state = &mut *guard;
        if finished {
            if let Some(list) = state.sweeps.get_mut(&shared.client) {
                list.retain(|s| !Arc::ptr_eq(s, shared));
                if list.is_empty() {
                    state.sweeps.remove(&shared.client);
                }
            }
        }
        let mut promoted = false;
        if let Some(inflight) = state.sweep_inflight.get_mut(&shared.client) {
            *inflight = inflight.saturating_sub(1);
            if let Some(waiting) = state.deferred.get_mut(&shared.client) {
                if let Some(job) = waiting.pop_front() {
                    *inflight += 1;
                    if waiting.is_empty() {
                        state.deferred.remove(&shared.client);
                    }
                    state.queue.push_back(job);
                    promoted = true;
                }
            }
            if !promoted && *inflight == 0 {
                state.sweep_inflight.remove(&shared.client);
            }
        }
        drop(guard);
        if promoted {
            self.inner.available.notify_one();
        }
    }

    /// Stops admission. Already-queued requests still run to
    /// completion; new ones are rejected `shutdown`. Deferred sweep
    /// points are promoted wholesale — admitted work is never stranded
    /// behind a fairness cap at shutdown.
    pub fn begin_drain(&self) {
        let mut guard = self.inner.state.lock().expect("server queue poisoned");
        let state = &mut *guard;
        state.accepting = false;
        for (client, waiting) in state.deferred.drain() {
            *state.sweep_inflight.entry(client).or_insert(0) += waiting.len() as u64;
            state.queue.extend(waiting);
        }
        drop(guard);
        self.inner.available.notify_all();
    }

    /// Drains and joins the pool: stops admission, waits for every
    /// queued request to finish, and returns the final counters.
    #[must_use]
    pub fn shutdown(&self) -> StatsSnapshot {
        self.begin_drain();
        let handles = std::mem::take(&mut *self.inner.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            started: s.started.load(Ordering::Relaxed),
            completed_ok: s.completed_ok.load(Ordering::Relaxed),
            failed_flow: s.failed_flow.load(Ordering::Relaxed),
            rejected_overloaded: s.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: s.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
            rejected_protocol: s.rejected_protocol.load(Ordering::Relaxed),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            store_hits: self.inner.cache.store_hits(),
            store_misses: self.inner.cache.store_misses(),
            store_spills: self.inner.cache.store_spills(),
            store_corrupt_evicted: self.inner.cache.store_corrupt_evicted(),
            sweeps: s.sweeps.load(Ordering::Relaxed),
            sweep_points: s.sweep_points.load(Ordering::Relaxed),
            sweep_point_errors: s.sweep_point_errors.load(Ordering::Relaxed),
            quota_deferred: s.quota_deferred.load(Ordering::Relaxed),
            sweep_cancelled_points: s.sweep_cancelled_points.load(Ordering::Relaxed),
        }
    }

    /// The checkpoint cache (stats and residency introspection).
    #[must_use]
    pub fn cache(&self) -> &SessionCache {
        &self.inner.cache
    }
}

// ---------------------------------------------------------------------
// TCP front: reactor shards
// ---------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// The TCP face of a [`Server`]: a fixed set of reactor shard threads
/// multiplexing all connections over readiness polling, feeding the
/// shared worker pool.
pub struct TcpServer {
    server: Server,
    local_addr: SocketAddr,
    shards: Vec<ShardHandle>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving with default [`TcpTuning`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<TcpServer> {
        Self::bind_with(addr, config, TcpTuning::default())
    }

    /// [`TcpServer::bind`] with explicit reactor tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and poller setup failures.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        tuning: TcpTuning,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let server = Server::start(config);
        let shard_count = tuning.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count);
        for shard_id in 0..shard_count {
            let poller = Poller::new(tuning.reactor)?;
            if shards.is_empty() {
                server
                    .obs()
                    .label_set("serve/reactor", poller.backend_name());
            }
            let (waker, wake_reader) = wake_pair()?;
            let (tx, rx) = channel();
            let handle = ShardHandle {
                tx,
                waker: Arc::new(waker),
            };
            shards.push(handle.clone());
            let shard = Shard {
                shard_id: shard_id as u64,
                server: server.clone(),
                tuning: tuning.clone(),
                listener: listener.try_clone()?,
                poller,
                wake_reader,
                rx,
                handle,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                inflight: 0,
                draining: false,
            };
            threads.push(std::thread::spawn(move || shard.run()));
        }
        Ok(TcpServer {
            server,
            local_addr,
            shards,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the socket.
    #[must_use]
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Graceful shutdown: every shard stops accepting and reading,
    /// answers and flushes everything in flight (idle clients see EOF —
    /// they cannot stall the drain), then the engine drains its queue.
    /// Returns the final counters.
    #[must_use]
    pub fn shutdown(mut self) -> StatsSnapshot {
        for shard in &self.shards {
            shard.drain();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.server.shutdown()
    }

    /// Blocks forever serving requests (the `serve` binary's main
    /// loop).
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One reactor shard: a poller, a listener clone, the connections this
/// shard accepted, and the mailbox workers answer through.
struct Shard {
    /// This shard's index, folded into its connections' fairness client
    /// ids (high bits) so they can never collide across shards or with
    /// in-process `submit_stream` clients (whose high bits are zero).
    shard_id: u64,
    server: Server,
    tuning: TcpTuning,
    listener: TcpListener,
    poller: Poller,
    wake_reader: WakeReader,
    rx: Receiver<ShardMsg>,
    handle: ShardHandle,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Requests handed to the engine from this shard's connections
    /// whose replies have not yet come back. Counted per-shard (not
    /// per-connection) so replies to connections that died early still
    /// balance the books.
    inflight: u64,
    draining: bool,
}

impl Shard {
    fn run(mut self) {
        let listener_ok = self
            .poller
            .register(
                self.listener.as_raw_fd(),
                TOKEN_LISTENER,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_ok();
        let waker_ok = self
            .poller
            .register(
                self.wake_reader.fd(),
                TOKEN_WAKER,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_ok();
        if !listener_ok || !waker_ok {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, -1).is_err() {
                return;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.wake_reader.drain(),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_messages();
            if self.draining && self.inflight == 0 && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Accepts until the listener would block. All shards poll the same
    /// listener; whoever wins the `accept` race owns the connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // dropped: no new connections while draining
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.tuning.send_buffer_bytes {
                        let _ = crate::reactor::set_send_buffer(&stream, bytes);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    let want = Interest {
                        read: true,
                        write: false,
                    };
                    if self.poller.register(conn.fd(), token, want).is_ok() {
                        conn.registered = want;
                        self.conns.insert(token, conn);
                        self.server.obs().perf_add("serve/conns_accepted", 1);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if ev.error {
            // Peer is gone (reset/hangup): nothing written here can
            // arrive, and any in-flight replies will be discarded when
            // they come back.
            self.close_conn(token);
            return;
        }
        if ev.writable {
            let flushed = self.conns.get_mut(&token).map_or(Ok(()), Conn::flush);
            if flushed.is_err() {
                self.close_conn(token);
                return;
            }
        }
        if ev.readable {
            let wants_read = self
                .conns
                .get(&token)
                .is_some_and(|c| !c.read_closed && !c.paused);
            if wants_read && !self.read_conn(token) {
                return;
            }
        }
        self.refresh(token);
    }

    /// One bounded read pass: fill the buffer, frame complete lines,
    /// decode each on the borrowed zero-copy path, and either enqueue
    /// the request or answer the malformed line in-line. Returns
    /// `false` when the connection died during the pass.
    fn read_conn(&mut self, token: u64) -> bool {
        let conn = self.conns.get_mut(&token).expect("conn lookup");
        let eof = match conn.fill() {
            Ok(eof) => eof,
            Err(_) => {
                self.close_conn(token);
                return false;
            }
        };
        let mut parsed: Vec<Result<FlowRequest, Response>> = Vec::new();
        let end = conn.extract_lines(self.tuning.max_line_bytes, &mut |line| {
            parsed.push(match decode_request(line) {
                Ok(request) => Ok(request),
                Err(e) => Err(Response::reject(
                    salvage_id(line),
                    RejectKind::Protocol,
                    e.to_string(),
                )),
            });
        });
        if eof {
            conn.read_closed = true;
        }
        match end {
            FrameEnd::Clean => {}
            // Matches the old front: a non-UTF-8 stream ended the
            // reader without a response.
            FrameEnd::BadUtf8 => conn.read_closed = true,
            FrameEnd::TooLong { limit } => {
                conn.read_closed = true;
                parsed.push(Err(Response::reject(
                    None,
                    RejectKind::Protocol,
                    format!("request line exceeds {limit} bytes"),
                )));
            }
        }
        for item in parsed {
            match item {
                Ok(request) => {
                    self.inflight += 1;
                    self.conns.get_mut(&token).expect("conn lookup").inflight += 1;
                    self.server.enqueue_as(
                        request,
                        ReplyTo::Conn {
                            shard: self.handle.clone(),
                            conn: token,
                        },
                        self.client_of(token),
                    );
                }
                Err(response) => {
                    self.server.note_rejected_protocol();
                    let line = encode_line(&response);
                    let conn = self.conns.get_mut(&token).expect("conn lookup");
                    conn.queue_write(line.as_bytes());
                    if conn.flush().is_err() {
                        self.close_conn(token);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The fairness client id of one of this shard's connections.
    fn client_of(&self, token: u64) -> u64 {
        ((self.shard_id + 1) << 32) | token
    }

    fn drain_messages(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                ShardMsg::Reply { conn, line, last } => {
                    // Only a request's terminal line balances the
                    // in-flight books; a sweep's event lines don't.
                    if last {
                        self.inflight = self.inflight.saturating_sub(1);
                    }
                    if let Some(c) = self.conns.get_mut(&conn) {
                        if last {
                            c.inflight = c.inflight.saturating_sub(1);
                        }
                        c.queue_write(line.as_bytes());
                        if c.flush().is_err() {
                            self.close_conn(conn);
                            continue;
                        }
                        self.refresh(conn);
                    }
                    // else: the connection died before its reply —
                    // discarded, exactly as the old writer thread did.
                }
                ShardMsg::Drain => self.begin_shard_drain(),
            }
        }
    }

    fn begin_shard_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.poller
            .deregister(self.listener.as_raw_fd(), TOKEN_LISTENER);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
            }
            self.refresh(token);
        }
    }

    /// Re-derives a connection's lifecycle state after any change:
    /// write backpressure (pause reads over the high-water mark, resume
    /// below half), close-when-finished, and the poller interest set.
    fn refresh(&mut self, token: u64) {
        let high = self.tuning.write_high_water;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.paused && conn.write_pending() > high {
            conn.paused = true;
            self.server.obs().perf_add("serve/read_paused", 1);
        } else if conn.paused && conn.write_pending() <= high / 2 {
            conn.paused = false;
        }
        self.server
            .obs()
            .gauge_max("serve/write_buffer_peak", conn.write_pending() as f64);
        if conn.read_closed && conn.inflight == 0 && conn.write_pending() == 0 {
            self.close_conn(token);
            return;
        }
        let want = Interest {
            read: !conn.read_closed && !conn.paused,
            write: conn.write_pending() > 0,
        };
        if want != conn.registered {
            conn.registered = want;
            let fd = conn.fd();
            let _ = self.poller.reregister(fd, token, want);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.fd(), token);
            self.server.obs().perf_add("serve/conns_closed", 1);
            // A mid-stream disconnect cancels the connection's sweeps:
            // its queued points retire unrun, its deferred points drop.
            self.server.cancel_client(self.client_of(token));
        }
    }
}

/// Best-effort text of a panic payload (`panic!` carries a `&str` or
/// `String`; anything else is opaque).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
