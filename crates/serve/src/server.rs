//! The service engine: a bounded worker pool over a backpressured
//! queue, with graceful drain-on-shutdown — plus the event-driven TCP
//! front that feeds it newline-delimited JSON.
//!
//! # Life of a request
//!
//! 1. **Admission** ([`Server::enqueue`]): requests are first held to
//!    the numeric bounds of [`FlowRequest::validate`] — an absurd
//!    netlist scale or grid-sizing knob is rejected
//!    [`RejectKind::Protocol`] before it can reach a worker, even from
//!    in-process callers. Then, under the queue lock, the request is
//!    either queued or rejected — with [`RejectKind::Overloaded`] when
//!    the queue is at `queue_depth` (explicit backpressure, never
//!    silent blocking) or [`RejectKind::Shutdown`] once draining has
//!    begun. Admission is the only place requests are dropped for
//!    capacity.
//! 2. **Dequeue**: a worker pops the oldest job. A job whose deadline
//!    elapsed while it sat in the queue is answered with
//!    [`RejectKind::Deadline`] and never run — queue time is the thing
//!    deadlines bound; execution, once started, always completes.
//! 3. **Execution**: the worker materializes the request's netlist,
//!    obtains the shared session from the [`SessionCache`], and runs
//!    [`m3d_flow::FlowSession::execute`] — the same code path a direct library
//!    caller uses, which is why service responses are bit-identical to
//!    library calls at any worker count. Execution is wrapped in
//!    `catch_unwind`: a panicking flow answers the request with a
//!    [`RejectKind::Flow`] rejection and the worker survives, so one
//!    pathological request can never shrink the pool.
//! 4. **Reply**: the response goes back through the job's reply route —
//!    an in-process [`Pending`] channel, or a message to the reactor
//!    shard that owns the connection. Responses bound for a socket are
//!    rendered to their wire line *on the worker thread*, so a shard's
//!    event loop never serializes a large report.
//!
//! # The TCP front
//!
//! [`TcpServer`] runs a small fixed number of **shard** threads, each
//! owning a readiness poller (see [`crate::reactor`]), a clone of the
//! nonblocking listener, and the full state of the connections it
//! accepted. Nothing in a shard blocks on a socket: reads, writes and
//! accepts are all readiness-driven and partial, so thousands of idle
//! connections cost a shard nothing but registered fds, and one slow
//! peer cannot stall the others. Flow execution stays on the worker
//! pool — a shard only frames lines, decodes requests (on `m3d-json`'s
//! borrowed zero-copy path) and shuttles rendered response lines.
//! Per-connection write buffers are bounded: past
//! [`TcpTuning::write_high_water`] the shard stops *reading* from that
//! connection (natural TCP backpressure) instead of buffering without
//! limit, resuming below half the mark.
//!
//! # Shutdown
//!
//! [`Server::begin_drain`] atomically stops admission; workers keep
//! draining until the queue is empty, then exit. Every accepted request
//! is answered — the drain test in `tests/service.rs` holds the server
//! to that. [`TcpServer::shutdown`] first tells every shard to drain:
//! the shard stops accepting, stops reading (idle clients see EOF when
//! their connection closes), answers and flushes everything in flight,
//! and only then does the engine itself drain — the same
//! everything-admitted-is-answered guarantee as the old
//! thread-per-connection front, at thousands of connections.

use crate::cache::SessionCache;
use crate::conn::{Conn, FrameEnd};
use crate::protocol::{decode_request, encode_line, salvage_id, RejectKind, Response};
use crate::reactor::{wake_pair, Event, Interest, Poller, ReactorKind, WakeReader, Waker};
use m3d_flow::FlowRequest;
use m3d_obs::Obs;
use m3d_store::Store;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing flows.
    pub workers: usize,
    /// Maximum queued (admitted, not yet started) requests; beyond
    /// this, requests are rejected `overloaded`.
    pub queue_depth: usize,
    /// Maximum resident sessions in the checkpoint cache.
    pub cache_capacity: usize,
    /// Telemetry sink: per-request spans, queue/cache counters, and the
    /// cached sessions' own flow telemetry (under `flow/`).
    pub obs: Obs,
    /// Optional persistent checkpoint store: cache misses rehydrate
    /// from it, completed sessions are written through to it, and a
    /// restarted server pointed at the same directory answers its first
    /// repeat request from disk instead of re-running the flow prefix.
    pub store: Option<Arc<Store>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            obs: Obs::disabled(),
            store: None,
        }
    }
}

/// Tuning for the TCP front's reactor shards. Separate from
/// [`ServerConfig`] so the engine's knobs stay orthogonal to the
/// socket-facing ones (and existing `ServerConfig` literals keep
/// compiling).
#[derive(Debug, Clone)]
pub struct TcpTuning {
    /// Reactor shard threads. Each owns a poller and its accepted
    /// connections; connections are distributed by whichever shard's
    /// accept wins.
    pub shards: usize,
    /// Hard cap on one request line; a longer line is answered with a
    /// `protocol` rejection and the connection's read half ends.
    pub max_line_bytes: usize,
    /// Per-connection outbound buffer level above which the shard stops
    /// reading from that connection until the peer drains (resumes at
    /// half this mark).
    pub write_high_water: usize,
    /// Shrink each accepted socket's kernel send buffer (`SO_SNDBUF`).
    /// Tests use this to make write backpressure reachable with small
    /// data volumes; production leaves it `None`.
    pub send_buffer_bytes: Option<usize>,
    /// Which poller backend to use (`Auto`: epoll on Linux unless
    /// `M3D_REACTOR=poll`).
    pub reactor: ReactorKind,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning {
            shards: 2,
            max_line_bytes: 1 << 20,
            write_high_water: 256 << 10,
            send_buffer_bytes: None,
            reactor: ReactorKind::Auto,
        }
    }
}

/// Monotonic service counters, readable at any time via
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests a worker started executing (deadline checks included).
    pub started: u64,
    /// Requests answered `ok`.
    pub completed_ok: u64,
    /// Requests answered with a `flow` rejection.
    pub failed_flow: u64,
    /// Requests rejected `overloaded` at admission.
    pub rejected_overloaded: u64,
    /// Requests rejected `deadline` at dequeue.
    pub rejected_deadline: u64,
    /// Requests rejected `shutdown` at admission.
    pub rejected_shutdown: u64,
    /// Requests rejected `protocol` — malformed lines on the wire, and
    /// requests whose numbers fall outside [`FlowRequest::validate`]'s
    /// bounds at admission.
    pub rejected_protocol: u64,
    /// Checkpoint-cache hits.
    pub cache_hits: u64,
    /// Checkpoint-cache misses (== distinct keys built).
    pub cache_misses: u64,
    /// Cache misses rehydrated from the persistent store (warm hits).
    pub store_hits: u64,
    /// Cache misses the persistent store could not answer.
    pub store_misses: u64,
    /// Session artifacts written to the persistent store.
    pub store_spills: u64,
    /// Corrupt store records detected (and evicted) during lookups.
    pub store_corrupt_evicted: u64,
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    started: AtomicU64,
    completed_ok: AtomicU64,
    failed_flow: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    rejected_protocol: AtomicU64,
}

/// Where a job's response goes: back to an in-process caller, or to the
/// reactor shard owning the connection it arrived on.
enum ReplyTo {
    Channel(Sender<Response>),
    Conn { shard: ShardHandle, conn: u64 },
}

impl ReplyTo {
    fn send(&self, response: Response) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(response);
            }
            ReplyTo::Conn { shard, conn } => {
                // Render on this (worker or rejecting caller) thread:
                // shard event loops never serialize reports.
                shard.reply(*conn, encode_line(&response));
            }
        }
    }
}

/// A shard's mailbox address: messages plus the waker that pops its
/// poller out of `wait`.
#[derive(Clone)]
struct ShardHandle {
    tx: Sender<ShardMsg>,
    waker: Arc<Waker>,
}

impl ShardHandle {
    fn reply(&self, conn: u64, line: String) {
        if self.tx.send(ShardMsg::Reply { conn, line }).is_ok() {
            self.waker.wake();
        }
    }

    fn drain(&self) {
        if self.tx.send(ShardMsg::Drain).is_ok() {
            self.waker.wake();
        }
    }
}

enum ShardMsg {
    /// A rendered response line for one of the shard's connections.
    Reply { conn: u64, line: String },
    /// Stop accepting and reading; answer and flush what's in flight,
    /// then exit.
    Drain,
}

struct Job {
    request: FlowRequest,
    enqueued: Instant,
    reply: ReplyTo,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
}

struct Inner {
    config: ServerConfig,
    cache: SessionCache,
    state: Mutex<QueueState>,
    available: Condvar,
    stats: Stats,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// An in-process handle to one submitted request's eventual response.
pub struct Pending {
    rx: Receiver<Response>,
}

impl Pending {
    /// Blocks until the response arrives. An accepted request always
    /// gets one (drain-on-shutdown completes the queue), so a closed
    /// channel means a worker died — reported as a rejection rather
    /// than a panic.
    #[must_use]
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::reject(None, RejectKind::Shutdown, "worker dropped the request")
        })
    }
}

/// The service engine. Cheap to clone; all clones share one pool.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts the worker pool (at least one worker).
    #[must_use]
    pub fn start(config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let cache = SessionCache::with_store(
            config.cache_capacity,
            config.obs.clone(),
            config.store.clone(),
        );
        let inner = Arc::new(Inner {
            config,
            cache,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
            }),
            available: Condvar::new(),
            stats: Stats::default(),
            workers: Mutex::new(Vec::new()),
        });
        let server = Server { inner };
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let worker = server.clone();
            handles.push(std::thread::spawn(move || worker.run_worker()));
        }
        *server.inner.workers.lock().expect("workers poisoned") = handles;
        server
    }

    /// Submits a request from in-process callers; the response arrives
    /// on the returned [`Pending`] handle (including rejections).
    #[must_use]
    pub fn submit(&self, request: FlowRequest) -> Pending {
        let (tx, rx) = channel();
        self.enqueue(request, &tx);
        Pending { rx }
    }

    /// Admits `request` or rejects it, answering through `reply`.
    /// Requests outside [`FlowRequest::validate`]'s numeric bounds are
    /// rejected `protocol` before touching the queue — workers only
    /// ever see inputs the flow can safely size buffers for. Capacity
    /// control runs under the queue lock, so the depth bound is exact.
    pub fn enqueue(&self, request: FlowRequest, reply: &Sender<Response>) {
        self.enqueue_to(request, ReplyTo::Channel(reply.clone()));
    }

    fn enqueue_to(&self, request: FlowRequest, reply: ReplyTo) {
        let obs = &self.inner.config.obs;
        let id = request.id;
        if let Err(e) = request.validate() {
            self.note_rejected_protocol();
            reply.send(Response::reject(
                Some(id),
                RejectKind::Protocol,
                format!("request out of bounds: {e}"),
            ));
            return;
        }
        let verdict = {
            let mut state = self.inner.state.lock().expect("server queue poisoned");
            if !state.accepting {
                Err((RejectKind::Shutdown, reply))
            } else if state.queue.len() >= self.inner.config.queue_depth {
                Err((RejectKind::Overloaded, reply))
            } else {
                state.queue.push_back(Job {
                    request,
                    enqueued: Instant::now(),
                    reply,
                });
                obs.gauge_max("serve/queue_depth_peak", state.queue.len() as f64);
                Ok(())
            }
        };
        match verdict {
            Ok(()) => {
                self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/accepted", 1);
                self.inner.available.notify_one();
            }
            Err((kind, reply)) => {
                let (stat, message) = match kind {
                    RejectKind::Overloaded => (
                        &self.inner.stats.rejected_overloaded,
                        format!(
                            "queue is at capacity ({}); retry later",
                            self.inner.config.queue_depth
                        ),
                    ),
                    _ => (
                        &self.inner.stats.rejected_shutdown,
                        "server is draining; no new work accepted".to_string(),
                    ),
                };
                stat.fetch_add(1, Ordering::Relaxed);
                obs.perf_add(&format!("serve/rejected_{kind}"), 1);
                reply.send(Response::reject(Some(id), kind, message));
            }
        }
    }

    /// Counts one `protocol` rejection that never became a request
    /// (malformed wire lines — the shards answer those in-line).
    fn note_rejected_protocol(&self) {
        self.inner
            .stats
            .rejected_protocol
            .fetch_add(1, Ordering::Relaxed);
        self.inner.config.obs.perf_add("serve/rejected_protocol", 1);
    }

    fn obs(&self) -> &Obs {
        &self.inner.config.obs
    }

    /// One worker's loop: drain jobs until shutdown empties the queue.
    fn run_worker(&self) {
        loop {
            let job = {
                let mut state = self.inner.state.lock().expect("server queue poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if !state.accepting {
                        return;
                    }
                    state = self
                        .inner
                        .available
                        .wait(state)
                        .expect("server queue poisoned");
                }
            };
            self.process(job);
        }
    }

    fn process(&self, job: Job) {
        let obs = &self.inner.config.obs;
        self.inner.stats.started.fetch_add(1, Ordering::Relaxed);
        let _span = obs.span("serve/request");
        let id = job.request.id;
        if let Some(deadline_ms) = job.request.deadline_ms {
            if job.enqueued.elapsed() > Duration::from_millis(deadline_ms) {
                self.inner
                    .stats
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/rejected_deadline", 1);
                job.reply.send(Response::reject(
                    Some(id),
                    RejectKind::Deadline,
                    format!("deadline of {deadline_ms} ms elapsed while queued"),
                ));
                return;
            }
        }
        // A panicking flow must cost the client one rejection, not the
        // pool one worker: admission bounds make panics unlikely, the
        // unwind barrier makes them survivable. The cache's lock is
        // released before any flow code runs, so no lock is poisoned.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let netlist = job.request.netlist.materialize();
            let (session, cache_hit) = self
                .inner
                .cache
                .get_or_build(&netlist, &job.request.options);
            obs.perf_add(
                if cache_hit {
                    "serve/cache_hit"
                } else {
                    "serve/cache_miss"
                },
                1,
            );
            let outcome = session.and_then(|s| {
                let outcome = s.execute(&job.request.command);
                if outcome.is_ok() {
                    // Write-through: the session (now warm, possibly
                    // with a freshly computed pseudo-3-D checkpoint)
                    // reaches the disk tier before the client hears
                    // back, so a restart after this response can always
                    // answer the same key from the store.
                    self.inner.cache.persist(&s);
                }
                outcome
            });
            (outcome, cache_hit)
        }));
        let (outcome, cache_hit) = match executed {
            Ok(pair) => pair,
            Err(payload) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                obs.perf_add("serve/panicked", 1);
                job.reply.send(Response::reject(
                    Some(id),
                    RejectKind::Flow,
                    format!("flow execution panicked: {}", panic_text(&payload)),
                ));
                return;
            }
        };
        let response = match outcome {
            Ok(report) => {
                self.inner
                    .stats
                    .completed_ok
                    .fetch_add(1, Ordering::Relaxed);
                Response::Ok {
                    id,
                    cache_hit,
                    report: Box::new(report),
                }
            }
            Err(e) => {
                self.inner.stats.failed_flow.fetch_add(1, Ordering::Relaxed);
                obs.perf_add("serve/failed_flow", 1);
                Response::reject(Some(id), RejectKind::Flow, e.to_string())
            }
        };
        job.reply.send(response);
    }

    /// Stops admission. Already-queued requests still run to
    /// completion; new ones are rejected `shutdown`.
    pub fn begin_drain(&self) {
        let mut state = self.inner.state.lock().expect("server queue poisoned");
        state.accepting = false;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Drains and joins the pool: stops admission, waits for every
    /// queued request to finish, and returns the final counters.
    #[must_use]
    pub fn shutdown(&self) -> StatsSnapshot {
        self.begin_drain();
        let handles = std::mem::take(&mut *self.inner.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            started: s.started.load(Ordering::Relaxed),
            completed_ok: s.completed_ok.load(Ordering::Relaxed),
            failed_flow: s.failed_flow.load(Ordering::Relaxed),
            rejected_overloaded: s.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: s.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
            rejected_protocol: s.rejected_protocol.load(Ordering::Relaxed),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            store_hits: self.inner.cache.store_hits(),
            store_misses: self.inner.cache.store_misses(),
            store_spills: self.inner.cache.store_spills(),
            store_corrupt_evicted: self.inner.cache.store_corrupt_evicted(),
        }
    }

    /// The checkpoint cache (stats and residency introspection).
    #[must_use]
    pub fn cache(&self) -> &SessionCache {
        &self.inner.cache
    }
}

// ---------------------------------------------------------------------
// TCP front: reactor shards
// ---------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// The TCP face of a [`Server`]: a fixed set of reactor shard threads
/// multiplexing all connections over readiness polling, feeding the
/// shared worker pool.
pub struct TcpServer {
    server: Server,
    local_addr: SocketAddr,
    shards: Vec<ShardHandle>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving with default [`TcpTuning`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<TcpServer> {
        Self::bind_with(addr, config, TcpTuning::default())
    }

    /// [`TcpServer::bind`] with explicit reactor tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and poller setup failures.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        tuning: TcpTuning,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let server = Server::start(config);
        let shard_count = tuning.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let poller = Poller::new(tuning.reactor)?;
            if shards.is_empty() {
                server
                    .obs()
                    .label_set("serve/reactor", poller.backend_name());
            }
            let (waker, wake_reader) = wake_pair()?;
            let (tx, rx) = channel();
            let handle = ShardHandle {
                tx,
                waker: Arc::new(waker),
            };
            shards.push(handle.clone());
            let shard = Shard {
                server: server.clone(),
                tuning: tuning.clone(),
                listener: listener.try_clone()?,
                poller,
                wake_reader,
                rx,
                handle,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                inflight: 0,
                draining: false,
            };
            threads.push(std::thread::spawn(move || shard.run()));
        }
        Ok(TcpServer {
            server,
            local_addr,
            shards,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the socket.
    #[must_use]
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Graceful shutdown: every shard stops accepting and reading,
    /// answers and flushes everything in flight (idle clients see EOF —
    /// they cannot stall the drain), then the engine drains its queue.
    /// Returns the final counters.
    #[must_use]
    pub fn shutdown(mut self) -> StatsSnapshot {
        for shard in &self.shards {
            shard.drain();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.server.shutdown()
    }

    /// Blocks forever serving requests (the `serve` binary's main
    /// loop).
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One reactor shard: a poller, a listener clone, the connections this
/// shard accepted, and the mailbox workers answer through.
struct Shard {
    server: Server,
    tuning: TcpTuning,
    listener: TcpListener,
    poller: Poller,
    wake_reader: WakeReader,
    rx: Receiver<ShardMsg>,
    handle: ShardHandle,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Requests handed to the engine from this shard's connections
    /// whose replies have not yet come back. Counted per-shard (not
    /// per-connection) so replies to connections that died early still
    /// balance the books.
    inflight: u64,
    draining: bool,
}

impl Shard {
    fn run(mut self) {
        let listener_ok = self
            .poller
            .register(
                self.listener.as_raw_fd(),
                TOKEN_LISTENER,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_ok();
        let waker_ok = self
            .poller
            .register(
                self.wake_reader.fd(),
                TOKEN_WAKER,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_ok();
        if !listener_ok || !waker_ok {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, -1).is_err() {
                return;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.wake_reader.drain(),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_messages();
            if self.draining && self.inflight == 0 && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Accepts until the listener would block. All shards poll the same
    /// listener; whoever wins the `accept` race owns the connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // dropped: no new connections while draining
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.tuning.send_buffer_bytes {
                        let _ = crate::reactor::set_send_buffer(&stream, bytes);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    let want = Interest {
                        read: true,
                        write: false,
                    };
                    if self.poller.register(conn.fd(), token, want).is_ok() {
                        conn.registered = want;
                        self.conns.insert(token, conn);
                        self.server.obs().perf_add("serve/conns_accepted", 1);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if ev.error {
            // Peer is gone (reset/hangup): nothing written here can
            // arrive, and any in-flight replies will be discarded when
            // they come back.
            self.close_conn(token);
            return;
        }
        if ev.writable {
            let flushed = self.conns.get_mut(&token).map_or(Ok(()), Conn::flush);
            if flushed.is_err() {
                self.close_conn(token);
                return;
            }
        }
        if ev.readable {
            let wants_read = self
                .conns
                .get(&token)
                .is_some_and(|c| !c.read_closed && !c.paused);
            if wants_read && !self.read_conn(token) {
                return;
            }
        }
        self.refresh(token);
    }

    /// One bounded read pass: fill the buffer, frame complete lines,
    /// decode each on the borrowed zero-copy path, and either enqueue
    /// the request or answer the malformed line in-line. Returns
    /// `false` when the connection died during the pass.
    fn read_conn(&mut self, token: u64) -> bool {
        let conn = self.conns.get_mut(&token).expect("conn lookup");
        let eof = match conn.fill() {
            Ok(eof) => eof,
            Err(_) => {
                self.close_conn(token);
                return false;
            }
        };
        let mut parsed: Vec<Result<FlowRequest, Response>> = Vec::new();
        let end = conn.extract_lines(self.tuning.max_line_bytes, &mut |line| {
            parsed.push(match decode_request(line) {
                Ok(request) => Ok(request),
                Err(e) => Err(Response::reject(
                    salvage_id(line),
                    RejectKind::Protocol,
                    e.to_string(),
                )),
            });
        });
        if eof {
            conn.read_closed = true;
        }
        match end {
            FrameEnd::Clean => {}
            // Matches the old front: a non-UTF-8 stream ended the
            // reader without a response.
            FrameEnd::BadUtf8 => conn.read_closed = true,
            FrameEnd::TooLong { limit } => {
                conn.read_closed = true;
                parsed.push(Err(Response::reject(
                    None,
                    RejectKind::Protocol,
                    format!("request line exceeds {limit} bytes"),
                )));
            }
        }
        for item in parsed {
            match item {
                Ok(request) => {
                    self.inflight += 1;
                    self.conns.get_mut(&token).expect("conn lookup").inflight += 1;
                    self.server.enqueue_to(
                        request,
                        ReplyTo::Conn {
                            shard: self.handle.clone(),
                            conn: token,
                        },
                    );
                }
                Err(response) => {
                    self.server.note_rejected_protocol();
                    let line = encode_line(&response);
                    let conn = self.conns.get_mut(&token).expect("conn lookup");
                    conn.queue_write(line.as_bytes());
                    if conn.flush().is_err() {
                        self.close_conn(token);
                        return false;
                    }
                }
            }
        }
        true
    }

    fn drain_messages(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                ShardMsg::Reply { conn, line } => {
                    self.inflight = self.inflight.saturating_sub(1);
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.inflight = c.inflight.saturating_sub(1);
                        c.queue_write(line.as_bytes());
                        if c.flush().is_err() {
                            self.close_conn(conn);
                            continue;
                        }
                        self.refresh(conn);
                    }
                    // else: the connection died before its reply —
                    // discarded, exactly as the old writer thread did.
                }
                ShardMsg::Drain => self.begin_shard_drain(),
            }
        }
    }

    fn begin_shard_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.poller
            .deregister(self.listener.as_raw_fd(), TOKEN_LISTENER);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
            }
            self.refresh(token);
        }
    }

    /// Re-derives a connection's lifecycle state after any change:
    /// write backpressure (pause reads over the high-water mark, resume
    /// below half), close-when-finished, and the poller interest set.
    fn refresh(&mut self, token: u64) {
        let high = self.tuning.write_high_water;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.paused && conn.write_pending() > high {
            conn.paused = true;
            self.server.obs().perf_add("serve/read_paused", 1);
        } else if conn.paused && conn.write_pending() <= high / 2 {
            conn.paused = false;
        }
        self.server
            .obs()
            .gauge_max("serve/write_buffer_peak", conn.write_pending() as f64);
        if conn.read_closed && conn.inflight == 0 && conn.write_pending() == 0 {
            self.close_conn(token);
            return;
        }
        let want = Interest {
            read: !conn.read_closed && !conn.paused,
            write: conn.write_pending() > 0,
        };
        if want != conn.registered {
            conn.registered = want;
            let fd = conn.fd();
            let _ = self.poller.reregister(fd, token, want);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.fd(), token);
            self.server.obs().perf_add("serve/conns_closed", 1);
        }
    }
}

/// Best-effort text of a panic payload (`panic!` carries a `&str` or
/// `String`; anything else is opaque).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
