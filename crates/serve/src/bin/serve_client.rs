//! The `serve_client` load generator: pipelines a mixed stream of flow
//! requests at a running `serve` daemon and reports what came back.
//!
//! ```text
//! serve_client --addr HOST:PORT [--requests N] [--scale F] [--seed N]
//!              [--keys K] [--deadline-ms MS]
//! serve_client pareto --addr HOST:PORT [--config C] [--freq-min F]
//!              [--freq-max F] [--steps N] [--scale F] [--seed N]
//!              [--deadline-ms MS]
//! ```
//!
//! The default mode cycles requests through the five configurations plus
//! an fmax sweep, spread across `K` distinct option variants (so a run
//! exercises both cache hits and misses). Responses are matched by id;
//! the summary counts outcomes and the service's reported cache hits.
//!
//! The `pareto` mode sends one [`FlowCommand::Pareto`] sweep and prints
//! the returned stacking × corner × frequency point table with the
//! power–performance–cost frontier marked.

use m3d_flow::{Config, FlowCommand, FlowOptions, FlowReport, FlowRequest, NetlistSpec};
use m3d_netgen::Benchmark;
use m3d_serve::{Client, Response};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: serve_client --addr HOST:PORT [--requests N] [--scale F] [--seed N]\n\
         \x20                 [--keys K] [--deadline-ms MS]\n\
         \x20      serve_client pareto --addr HOST:PORT [--config C] [--freq-min F]\n\
         \x20                 [--freq-max F] [--steps N] [--scale F] [--seed N]\n\
         \x20                 [--deadline-ms MS]\n\
         defaults: --requests 12 --scale 0.02 --seed 1 --keys 2\n\
         pareto defaults: --config hetero3d --freq-min 0.8 --freq-max 1.2 --steps 3"
    );
    std::process::exit(2);
}

fn config_arg(name: &str) -> Config {
    match name {
        "2d9t" => Config::TwoD9T,
        "2d12t" => Config::TwoD12T,
        "3d9t" => Config::ThreeD9T,
        "3d12t" => Config::ThreeD12T,
        "hetero3d" => Config::Hetero3d,
        _ => usage(),
    }
}

/// The `pareto` subcommand: one sweep request, pretty-printed frontier.
fn run_pareto(mut args: std::env::Args) -> ! {
    let mut addr = None;
    let mut config = Config::Hetero3d;
    let mut freq_min = 0.8f64;
    let mut freq_max = 1.2f64;
    let mut steps = 3usize;
    let mut scale = 0.02f64;
    let mut seed = 1u64;
    let mut deadline_ms = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--config" => config = config_arg(&value()),
            "--freq-min" => freq_min = value().parse().unwrap_or_else(|_| usage()),
            "--freq-max" => freq_max = value().parse().unwrap_or_else(|_| usage()),
            "--steps" => steps = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let mut client = Client::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("serve_client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let request = FlowRequest {
        id: 0,
        netlist: NetlistSpec {
            benchmark: Benchmark::Aes,
            scale,
            seed,
        },
        options: FlowOptions::default(),
        command: FlowCommand::Pareto {
            config,
            freq_min_ghz: freq_min,
            freq_max_ghz: freq_max,
            freq_steps: steps,
        },
        deadline_ms,
    };
    let started = Instant::now();
    if let Err(e) = client.send(&request) {
        eprintln!("serve_client: send failed: {e}");
        std::process::exit(1);
    }
    match client.recv() {
        Ok(Response::Ok {
            cache_hit, report, ..
        }) => {
            let FlowReport::Pareto { summary } = *report else {
                eprintln!("serve_client: unexpected report kind");
                std::process::exit(1);
            };
            println!(
                "{} pareto sweep ({} points, cache {}):",
                summary.config,
                summary.points.len(),
                if cache_hit { "hit" } else { "miss" }
            );
            println!(
                "  {:<10} {:>7} {:>8} {:>9} {:>10} {:>9} {:>4} {:>8}",
                "stacking", "corner", "f_GHz", "power_mW", "delay_ns", "cost_uc", "met", "frontier"
            );
            for p in &summary.points {
                println!(
                    "  {:<10} {:>7} {:>8.3} {:>9.3} {:>10.4} {:>9.4} {:>4} {:>8}",
                    p.stacking.to_string(),
                    p.corner.to_string(),
                    p.frequency_ghz,
                    p.total_power_mw,
                    p.effective_delay_ns,
                    p.die_cost_uc,
                    if p.timing_met { "yes" } else { "no" },
                    if p.on_frontier { "*" } else { "" }
                );
            }
            println!(
                "{} frontier points in {:.2} s",
                summary.frontier().count(),
                started.elapsed().as_secs_f64()
            );
            std::process::exit(0);
        }
        Ok(Response::Rejected { kind, message, .. }) => {
            eprintln!("serve_client: rejected [{kind}] {message}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("serve_client: receive failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The request mix: one command per request, round-robin.
fn command(i: usize) -> FlowCommand {
    const CONFIGS: [Config; 5] = [
        Config::Hetero3d,
        Config::TwoD12T,
        Config::ThreeD9T,
        Config::TwoD9T,
        Config::ThreeD12T,
    ];
    match i % 6 {
        5 => FlowCommand::FindFmax {
            config: Config::Hetero3d,
            start_ghz: 1.0,
        },
        r => FlowCommand::RunFlow {
            config: CONFIGS[r],
            frequency_ghz: 1.0,
        },
    }
}

/// `K` option variants (distinct cache keys) differing in placer effort.
fn options_variant(k: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 12 + k;
    o
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let mut first = args.next();
    if first.as_deref() == Some("pareto") {
        run_pareto(args);
    }
    let mut addr = None;
    let mut requests = 12usize;
    let mut scale = 0.02f64;
    let mut seed = 1u64;
    let mut keys = 2usize;
    let mut deadline_ms = None;
    while let Some(flag) = first.take().or_else(|| args.next()) {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--keys" => keys = value().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let mut client = Client::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("serve_client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let started = Instant::now();
    for i in 0..requests {
        let request = FlowRequest {
            id: i as u64,
            netlist: NetlistSpec {
                benchmark: Benchmark::Aes,
                scale,
                seed,
            },
            options: options_variant(i % keys),
            command: command(i),
            deadline_ms,
        };
        if let Err(e) = client.send(&request) {
            eprintln!("serve_client: send failed: {e}");
            std::process::exit(1);
        }
    }
    let (mut ok, mut hits, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..requests {
        match client.recv() {
            Ok(Response::Ok { id, cache_hit, .. }) => {
                ok += 1;
                hits += u64::from(cache_hit);
                println!(
                    "#{id}: ok (cache {})",
                    if cache_hit { "hit" } else { "miss" }
                );
            }
            Ok(Response::Rejected { id, kind, message }) => {
                rejected += 1;
                let id = id.map_or_else(|| "?".to_string(), |i| i.to_string());
                println!("#{id}: rejected [{kind}] {message}");
            }
            Err(e) => {
                eprintln!("serve_client: receive failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{requests} requests in {:.2} s: {ok} ok ({hits} cache hits), {rejected} rejected",
        elapsed.as_secs_f64()
    );
}
