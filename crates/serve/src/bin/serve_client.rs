//! The `serve_client` CLI: one connection, five subcommands, one shared
//! request builder and one shared printer.
//!
//! ```text
//! serve_client run     --addr HOST:PORT [--config C] [--freq F] [common]
//! serve_client fmax    --addr HOST:PORT [--config C] [--start F] [common]
//! serve_client compare --addr HOST:PORT [common]
//! serve_client pareto  --addr HOST:PORT [--config C] [--freq-min F]
//!                      [--freq-max F] [--steps N] [common]
//! serve_client sweep   --addr HOST:PORT [--configs C,C,..] [--stacking S,S]
//!                      [--corners X,X,..] [--freq-min F] [--freq-max F]
//!                      [--steps N] [common]
//! serve_client load    --addr HOST:PORT [--requests N] [--keys K] [common]
//!
//! common: [--scale F] [--seed N] [--deadline-ms MS] [--json]
//! ```
//!
//! Every subcommand builds its [`FlowRequest`] through the same
//! builder (same netlist recipe, options, deadline handling) and prints
//! through the same printer: human headlines by default, raw wire JSON
//! lines with `--json`. The `sweep` subcommand speaks protocol v2 and
//! streams `progress`/`point`/`done` events as they arrive; everything
//! else is v1 and byte-compatible with older servers.
//!
//! `load` is the pipelined mixed-workload generator the earlier
//! flag-only CLI exposed (that spelling, with no subcommand, still
//! works).

use m3d_flow::{
    Config, FlowCommand, FlowOptions, FlowReport, FlowRequest, NetlistSpec, Proto, SweepSpec,
};
use m3d_netgen::Benchmark;
use m3d_serve::protocol::{encode_line, ServerMessage, StreamEvent};
use m3d_serve::{Client, Response};
use m3d_tech::{Corner, StackingStyle};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: serve_client <run|fmax|compare|pareto|sweep|load> --addr HOST:PORT [options]\n\
         \x20 run:     [--config C] [--freq F]\n\
         \x20 fmax:    [--config C] [--start F]\n\
         \x20 compare: (no extra options)\n\
         \x20 pareto:  [--config C] [--freq-min F] [--freq-max F] [--steps N]\n\
         \x20 sweep:   [--configs C,C,..] [--stacking monolithic,f2f] [--corners slow,typical,fast]\n\
         \x20          [--freq-min F] [--freq-max F] [--steps N]\n\
         \x20 load:    [--requests N] [--keys K]\n\
         \x20 common:  [--scale F] [--seed N] [--deadline-ms MS] [--json]\n\
         configs: 2d9t 2d12t 3d9t 3d12t hetero3d\n\
         defaults: --scale 0.02 --seed 1 --config hetero3d --freq 1.0 --start 1.0\n\
         \x20         --freq-min 0.8 --freq-max 1.2 --steps 3 --requests 12 --keys 2"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("serve_client: {message}");
    std::process::exit(1);
}

fn config_arg(name: &str) -> Config {
    match name {
        "2d9t" => Config::TwoD9T,
        "2d12t" => Config::TwoD12T,
        "3d9t" => Config::ThreeD9T,
        "3d12t" => Config::ThreeD12T,
        "hetero3d" => Config::Hetero3d,
        _ => usage(),
    }
}

fn stacking_arg(name: &str) -> StackingStyle {
    match name {
        "monolithic" => StackingStyle::Monolithic,
        "f2f" => StackingStyle::F2fHybridBond,
        _ => usage(),
    }
}

fn corner_arg(name: &str) -> Corner {
    match name {
        "slow" => Corner::Slow,
        "typical" => Corner::Typical,
        "fast" => Corner::Fast,
        _ => usage(),
    }
}

fn list_arg<T>(csv: &str, one: impl Fn(&str) -> T) -> Vec<T> {
    csv.split(',').filter(|s| !s.is_empty()).map(one).collect()
}

/// Everything the subcommands share: the connection target, the netlist
/// recipe, the deadline, and the output mode.
struct Common {
    addr: Option<String>,
    scale: f64,
    seed: u64,
    deadline_ms: Option<u64>,
    json: bool,
}

impl Common {
    fn new() -> Common {
        Common {
            addr: None,
            scale: 0.02,
            seed: 1,
            deadline_ms: None,
            json: false,
        }
    }

    /// Tries one shared flag; returns whether it was consumed.
    fn take_flag(&mut self, flag: &str, value: &mut dyn FnMut() -> String) -> bool {
        match flag {
            "--addr" => self.addr = Some(value()),
            "--scale" => self.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => self.seed = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => self.deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--json" => self.json = true,
            _ => return false,
        }
        true
    }

    /// The shared request builder: every subcommand's wire request goes
    /// through here, so recipe, deadline and protocol-version handling
    /// exist exactly once. Sweeps are stamped v2; everything else stays
    /// v1 (and its line stays byte-identical to the pre-v2 client's).
    fn build_request(&self, id: u64, options: FlowOptions, command: FlowCommand) -> FlowRequest {
        let proto = if matches!(command, FlowCommand::Sweep { .. }) {
            Proto::V2
        } else {
            Proto::V1
        };
        FlowRequest {
            id,
            netlist: NetlistSpec {
                benchmark: Benchmark::Aes,
                scale: self.scale,
                seed: self.seed,
            },
            options,
            proto,
            command,
            deadline_ms: self.deadline_ms,
        }
    }

    fn connect(&self) -> Client {
        let Some(addr) = self.addr.as_deref() else {
            usage()
        };
        Client::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")))
    }
}

/// The shared printer for single responses. Returns whether the
/// response was `ok`.
fn print_response(response: &Response, json: bool) -> bool {
    if json {
        print!("{}", encode_line(response));
        return response.is_ok();
    }
    match response {
        Response::Ok {
            id,
            cache_hit,
            report,
        } => {
            println!(
                "#{id}: {} (cache {})",
                report.headline(),
                if *cache_hit { "hit" } else { "miss" }
            );
            true
        }
        Response::Rejected { id, kind, message } => {
            let id = id.map_or_else(|| "?".to_string(), |i| i.to_string());
            println!("#{id}: rejected [{kind}] {message}");
            false
        }
    }
}

/// The shared printer for stream events (the `sweep` subcommand).
fn print_event(event: &StreamEvent, json: bool) {
    if json {
        print!("{}", encode_line(event));
        return;
    }
    match event {
        StreamEvent::Progress { id, total } => println!("#{id}: sweep of {total} points"),
        StreamEvent::Point {
            id,
            index,
            cache_hit,
            report,
        } => println!(
            "#{id}[{index}]: {} (cache {})",
            report.headline(),
            if *cache_hit { "hit" } else { "miss" }
        ),
        StreamEvent::Error {
            id,
            index,
            kind,
            message,
        } => println!("#{id}[{index}]: error [{kind}] {message}"),
        StreamEvent::Done { id, points, errors } => {
            println!("#{id}: done ({points} points, {errors} errors)");
        }
    }
}

/// One-shot subcommands (`run`, `fmax`, `compare`, `pareto`): build,
/// send, print, exit.
fn run_single(common: &Common, command: FlowCommand) -> ! {
    let mut client = common.connect();
    let request = common.build_request(0, FlowOptions::default(), command);
    let started = Instant::now();
    let response = client
        .call(&request)
        .unwrap_or_else(|e| fail(&format!("call failed: {e}")));
    let ok = print_response(&response, common.json);
    // The pareto table is the one report worth more than a headline.
    if let (
        false,
        Response::Ok {
            cache_hit, report, ..
        },
    ) = (common.json, &response)
    {
        if let FlowReport::Pareto { summary } = report.as_ref() {
            print_pareto_table(summary, *cache_hit, started);
        }
    }
    std::process::exit(i32::from(!ok));
}

fn print_pareto_table(summary: &m3d_flow::ParetoSummary, cache_hit: bool, started: Instant) {
    println!(
        "{} pareto sweep ({} points, cache {}):",
        summary.config,
        summary.points.len(),
        if cache_hit { "hit" } else { "miss" }
    );
    println!(
        "  {:<10} {:>7} {:>8} {:>9} {:>10} {:>9} {:>4} {:>8}",
        "stacking", "corner", "f_GHz", "power_mW", "delay_ns", "cost_uc", "met", "frontier"
    );
    for p in &summary.points {
        println!(
            "  {:<10} {:>7} {:>8.3} {:>9.3} {:>10.4} {:>9.4} {:>4} {:>8}",
            p.stacking.to_string(),
            p.corner.to_string(),
            p.frequency_ghz,
            p.total_power_mw,
            p.effective_delay_ns,
            p.die_cost_uc,
            if p.timing_met { "yes" } else { "no" },
            if p.on_frontier { "*" } else { "" }
        );
    }
    println!(
        "{} frontier points in {:.2} s",
        summary.frontier().count(),
        started.elapsed().as_secs_f64()
    );
}

/// The `sweep` subcommand: one v2 request, events printed as streamed.
fn run_sweep(common: &Common, spec: SweepSpec) -> ! {
    let mut client = common.connect();
    let request = common.build_request(0, FlowOptions::default(), FlowCommand::Sweep { spec });
    let started = Instant::now();
    let messages = client
        .call_stream(&request)
        .unwrap_or_else(|e| fail(&format!("stream failed: {e}")));
    let mut failed = false;
    for message in &messages {
        match message {
            ServerMessage::Response(response) => {
                failed |= !print_response(response, common.json);
            }
            ServerMessage::Event(event) => {
                if let StreamEvent::Done { errors, .. } = event {
                    failed |= *errors > 0;
                }
                print_event(event, common.json);
            }
        }
    }
    if !common.json {
        println!("sweep finished in {:.2} s", started.elapsed().as_secs_f64());
    }
    std::process::exit(i32::from(failed));
}

/// The `load` subcommand: the pipelined mixed workload (five configs
/// plus an fmax search, spread over `keys` option variants).
fn run_load(common: &Common, requests: usize, keys: usize) -> ! {
    fn command(i: usize) -> FlowCommand {
        const CONFIGS: [Config; 5] = [
            Config::Hetero3d,
            Config::TwoD12T,
            Config::ThreeD9T,
            Config::TwoD9T,
            Config::ThreeD12T,
        ];
        match i % 6 {
            5 => FlowCommand::FindFmax {
                config: Config::Hetero3d,
                start_ghz: 1.0,
            },
            r => FlowCommand::RunFlow {
                config: CONFIGS[r],
                frequency_ghz: 1.0,
            },
        }
    }
    fn options_variant(k: usize) -> FlowOptions {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 12 + k;
        o
    }
    let mut client = common.connect();
    let started = Instant::now();
    for i in 0..requests {
        let request = common.build_request(i as u64, options_variant(i % keys), command(i));
        if let Err(e) = client.send(&request) {
            fail(&format!("send failed: {e}"));
        }
    }
    let (mut ok, mut hits, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..requests {
        let response = client
            .recv()
            .unwrap_or_else(|e| fail(&format!("receive failed: {e}")));
        if print_response(&response, common.json) {
            ok += 1;
            if let Response::Ok { cache_hit, .. } = &response {
                hits += u64::from(*cache_hit);
            }
        } else {
            rejected += 1;
        }
    }
    if !common.json {
        println!(
            "{requests} requests in {:.2} s: {ok} ok ({hits} cache hits), {rejected} rejected",
            started.elapsed().as_secs_f64()
        );
    }
    std::process::exit(i32::from(rejected > 0));
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let first = args.next().unwrap_or_else(|| usage());
    // Flag-only invocations (the old CLI shape) mean `load`.
    let (subcommand, mut pending) = if first.starts_with("--") {
        ("load".to_string(), Some(first))
    } else {
        (first, None)
    };

    let mut common = Common::new();
    // Subcommand-specific knobs, all optional.
    let mut config = Config::Hetero3d;
    let mut freq = 1.0f64;
    let mut start = 1.0f64;
    let mut freq_min = 0.8f64;
    let mut freq_max = 1.2f64;
    let mut steps = 3usize;
    let mut configs = vec![Config::Hetero3d];
    let mut stacking = StackingStyle::ALL.to_vec();
    let mut corners = vec![Corner::Typical];
    let mut requests = 12usize;
    let mut keys = 2usize;

    while let Some(flag) = pending.take().or_else(|| args.next()) {
        let mut value = || args.next().unwrap_or_else(|| usage());
        if common.take_flag(&flag, &mut value) {
            continue;
        }
        match flag.as_str() {
            "--config" => config = config_arg(&value()),
            "--freq" => freq = value().parse().unwrap_or_else(|_| usage()),
            "--start" => start = value().parse().unwrap_or_else(|_| usage()),
            "--freq-min" => freq_min = value().parse().unwrap_or_else(|_| usage()),
            "--freq-max" => freq_max = value().parse().unwrap_or_else(|_| usage()),
            "--steps" => steps = value().parse().unwrap_or_else(|_| usage()),
            "--configs" => configs = list_arg(&value(), config_arg),
            "--stacking" => stacking = list_arg(&value(), stacking_arg),
            "--corners" => corners = list_arg(&value(), corner_arg),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--keys" => keys = value().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            _ => usage(),
        }
    }

    match subcommand.as_str() {
        "run" => run_single(
            &common,
            FlowCommand::RunFlow {
                config,
                frequency_ghz: freq,
            },
        ),
        "fmax" => run_single(
            &common,
            FlowCommand::FindFmax {
                config,
                start_ghz: start,
            },
        ),
        "compare" => run_single(&common, FlowCommand::CompareConfigs),
        "pareto" => run_single(
            &common,
            FlowCommand::Pareto {
                config,
                freq_min_ghz: freq_min,
                freq_max_ghz: freq_max,
                freq_steps: steps,
            },
        ),
        "sweep" => run_sweep(
            &common,
            SweepSpec {
                configs,
                stacking,
                corners,
                freq_min_ghz: freq_min,
                freq_max_ghz: freq_max,
                freq_steps: steps,
            },
        ),
        "load" => run_load(&common, requests, keys),
        _ => usage(),
    }
}
