//! The `serve_client` load generator: pipelines a mixed stream of flow
//! requests at a running `serve` daemon and reports what came back.
//!
//! ```text
//! serve_client --addr HOST:PORT [--requests N] [--scale F] [--seed N]
//!              [--keys K] [--deadline-ms MS]
//! ```
//!
//! Requests cycle through the five configurations plus an fmax sweep,
//! spread across `K` distinct option variants (so a run exercises both
//! cache hits and misses). Responses are matched by id; the summary
//! counts outcomes and the service's reported cache hits.

use m3d_flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec};
use m3d_netgen::Benchmark;
use m3d_serve::{Client, Response};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: serve_client --addr HOST:PORT [--requests N] [--scale F] [--seed N]\n\
         \x20                 [--keys K] [--deadline-ms MS]\n\
         defaults: --requests 12 --scale 0.02 --seed 1 --keys 2"
    );
    std::process::exit(2);
}

/// The request mix: one command per request, round-robin.
fn command(i: usize) -> FlowCommand {
    const CONFIGS: [Config; 5] = [
        Config::Hetero3d,
        Config::TwoD12T,
        Config::ThreeD9T,
        Config::TwoD9T,
        Config::ThreeD12T,
    ];
    match i % 6 {
        5 => FlowCommand::FindFmax {
            config: Config::Hetero3d,
            start_ghz: 1.0,
        },
        r => FlowCommand::RunFlow {
            config: CONFIGS[r],
            frequency_ghz: 1.0,
        },
    }
}

/// `K` option variants (distinct cache keys) differing in placer effort.
fn options_variant(k: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 12 + k;
    o
}

fn main() {
    let mut addr = None;
    let mut requests = 12usize;
    let mut scale = 0.02f64;
    let mut seed = 1u64;
    let mut keys = 2usize;
    let mut deadline_ms = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--keys" => keys = value().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let mut client = Client::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("serve_client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let started = Instant::now();
    for i in 0..requests {
        let request = FlowRequest {
            id: i as u64,
            netlist: NetlistSpec {
                benchmark: Benchmark::Aes,
                scale,
                seed,
            },
            options: options_variant(i % keys),
            command: command(i),
            deadline_ms,
        };
        if let Err(e) = client.send(&request) {
            eprintln!("serve_client: send failed: {e}");
            std::process::exit(1);
        }
    }
    let (mut ok, mut hits, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..requests {
        match client.recv() {
            Ok(Response::Ok { id, cache_hit, .. }) => {
                ok += 1;
                hits += u64::from(cache_hit);
                println!(
                    "#{id}: ok (cache {})",
                    if cache_hit { "hit" } else { "miss" }
                );
            }
            Ok(Response::Rejected { id, kind, message }) => {
                rejected += 1;
                let id = id.map_or_else(|| "?".to_string(), |i| i.to_string());
                println!("#{id}: rejected [{kind}] {message}");
            }
            Err(e) => {
                eprintln!("serve_client: receive failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{requests} requests in {:.2} s: {ok} ok ({hits} cache hits), {rejected} rejected",
        elapsed.as_secs_f64()
    );
}
