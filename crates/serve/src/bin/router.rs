//! The `m3d-router` front: one TCP address consistent-hashing flow
//! requests across N backend `serve` daemons, so every checkpoint key
//! is built on exactly one shard cluster-wide.
//!
//! ```text
//! m3d-router --backend HOST:PORT [--backend HOST:PORT ...] [--addr 127.0.0.1:7332] [--vnodes 64]
//! ```
//!
//! Backend order matters: it is the shard's identity on the hash ring,
//! so every router instance pointed at the same ordered list places
//! keys identically.

use m3d_serve::{Router, RouterConfig};
use std::net::ToSocketAddrs;

fn usage() -> ! {
    eprintln!(
        "usage: m3d-router --backend HOST:PORT [--backend HOST:PORT ...] [--addr HOST:PORT] [--vnodes N]\n\
         defaults: --addr 127.0.0.1:7332 --vnodes 64"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7332".to_string();
    let mut backends = Vec::new();
    let mut vnodes = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = take("HOST:PORT"),
            "--backend" => {
                let spec = take("HOST:PORT");
                let resolved = spec
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut addrs| addrs.next())
                    .unwrap_or_else(|| {
                        eprintln!("m3d-router: cannot resolve backend {spec}");
                        std::process::exit(1);
                    });
                backends.push(resolved);
            }
            "--vnodes" => {
                vnodes = take("a count").parse().unwrap_or_else(|_| {
                    eprintln!("not a count");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    if backends.is_empty() {
        eprintln!("m3d-router: at least one --backend is required");
        usage();
    }
    let shards = backends.len();
    let config = RouterConfig { backends, vnodes };
    let router = Router::bind(addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("m3d-router: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "m3d-router listening on {} ({shards} backend shards, {vnodes} vnodes each)",
        router.local_addr()
    );
    router.join();
}
