//! The `serve` daemon: binds a TCP address and answers
//! newline-delimited JSON [`m3d_serve::FlowRequest`]s until killed.
//!
//! ```text
//! serve [--addr 127.0.0.1:7333] [--workers 2] [--queue-depth 16] [--cache 8] [--store DIR]
//! ```
//!
//! With `--store DIR` the checkpoint cache gains a persistent tier:
//! completed sessions are written to `DIR` and a restarted daemon
//! pointed at the same directory answers repeat requests from disk.

use m3d_serve::{ServerConfig, Store, TcpServer};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--cache N] [--store DIR]\n\
         defaults: --addr 127.0.0.1:7333 --workers 2 --queue-depth 16 --cache 8 (no store)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7333".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = take("HOST:PORT"),
            "--workers" => config.workers = parse_count(&take("a count")),
            "--queue-depth" => config.queue_depth = parse_count(&take("a count")),
            "--cache" => config.cache_capacity = parse_count(&take("a count")),
            "--store" => {
                let dir = take("a directory");
                let store = Store::open(&dir).unwrap_or_else(|e| {
                    eprintln!("serve: cannot open store {dir}: {e}");
                    std::process::exit(1);
                });
                config.store = Some(Arc::new(store));
            }
            _ => usage(),
        }
    }
    let workers = config.workers;
    let queue_depth = config.queue_depth;
    let cache = config.cache_capacity;
    let store_note = config
        .store
        .as_ref()
        .map(|s| format!(", store {}", s.root().display()))
        .unwrap_or_default();
    let server = TcpServer::bind(addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "m3d-serve listening on {} ({workers} workers, queue depth {queue_depth}, cache {cache}{store_note})",
        server.local_addr()
    );
    server.join();
}

fn parse_count(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("not a count: {text}");
        usage()
    })
}
