//! A consistent-hash shard router: one TCP front over N backend flow
//! services, placing every request on the shard that owns its
//! checkpoint key.
//!
//! # Why a router
//!
//! The checkpoint cache is the expensive thing a service holds: one
//! pseudo-3-D build per `(netlist fingerprint, options fingerprint)`
//! key. Behind a naive load balancer, K shards each build every hot key
//! — K builds cluster-wide. This router hashes the *key* instead of the
//! connection: a request for a given `(netlist recipe, result-affecting
//! options)` pair always lands on the same shard, so each key is built
//! exactly once across the whole cluster, and byte-identical answers
//! come back no matter how many shards stand behind the front (the
//! flow is a pure function of the key plus the command — placement
//! cannot change bytes, only *where* the cache lives).
//!
//! # Routing
//!
//! The ring is classic consistent hashing: [`RouterConfig::vnodes`]
//! virtual nodes per backend, FNV-1a hashed, sorted; a request's
//! [`route_key`] — benchmark, scale bits, seed, and
//! [`m3d_flow::FlowOptions::fingerprint`] — walks clockwise to the
//! first vnode. Adding a shard moves only the keys that now belong to
//! it. Routing never materializes a netlist: the key is built from the
//! request's recipe fields alone.
//!
//! # Protocol handling
//!
//! * **v1 single-shot requests relay verbatim**: the router forwards
//!   the client's original line bytes and returns the backend's
//!   response line bytes untouched. Byte identity with a direct
//!   connection holds by construction.
//! * **v2 sweeps decompose at the router**: each grid point is its own
//!   v1 request routed by its own key (points of one technology
//!   scenario share a key and therefore a shard). The router
//!   synthesizes the stream — `progress` up front, one `point`/`error`
//!   per grid point with the index remapped into scenario-major order,
//!   and an aggregate `done` — so a streaming client cannot tell a
//!   routed sweep from a single-server one.
//!
//! # Health
//!
//! Backend connections are lazy and per-client-connection (pipelined
//! requests stay ordered per backend). A failed call reconnects and
//! retries once; a backend that stays down answers that request
//! `overloaded` (or an `error` event for a sweep point) instead of
//! hanging the client.

use crate::protocol::{
    decode_request, decode_response, encode_line, salvage_id, RejectKind, Response, StreamEvent,
};
use m3d_flow::{FlowCommand, FlowRequest};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The backend flow services, in ring order. Position in this list
    /// is the backend's identity on the ring, so a stable list gives a
    /// stable placement.
    pub backends: Vec<SocketAddr>,
    /// Virtual nodes per backend on the hash ring. More vnodes smooth
    /// the key distribution; 64 keeps the largest shard within a few
    /// percent of fair at any realistic backend count.
    pub vnodes: usize,
}

impl RouterConfig {
    /// A config for `backends` with default tuning.
    #[must_use]
    pub fn new(backends: Vec<SocketAddr>) -> RouterConfig {
        RouterConfig {
            backends,
            vnodes: 64,
        }
    }
}

/// 64-bit FNV-1a with an avalanche finalizer: tiny and
/// dependency-free. Raw FNV-1a clusters badly in the *upper* bits for
/// short, similar strings (vnode labels, sequential fingerprints) —
/// enough to hand one backend most of the ring — so the FNV state is
/// run through a murmur3-style fmix64 before it is used as a ring
/// position.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// The request property the ring hashes: everything that determines
/// the checkpoint key, readable off the request without materializing
/// the netlist. Two requests with equal route keys have equal cache
/// keys, so key-affinity routing is build-affinity routing.
#[must_use]
pub fn route_key(request: &FlowRequest) -> String {
    format!(
        "{:?}|{:016x}|{}|{}",
        request.netlist.benchmark,
        request.netlist.scale.to_bits(),
        request.netlist.seed,
        request.options.fingerprint()
    )
}

/// The consistent-hash ring: sorted `(hash, backend)` vnodes.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring for `backends` backends with `vnodes` virtual
    /// nodes each (both floored at 1).
    #[must_use]
    pub fn new(backends: usize, vnodes: usize) -> Ring {
        let backends = backends.max(1);
        let per = vnodes.max(1);
        let mut ring = Vec::with_capacity(backends * per);
        for backend in 0..backends {
            for vnode in 0..per {
                ring.push((
                    fnv1a(format!("shard-{backend}/vnode-{vnode}").as_bytes()),
                    backend,
                ));
            }
        }
        // The backend index tiebreaks hash collisions so the ring is a
        // pure function of (backends, vnodes) — every router instance
        // agrees on placement.
        ring.sort_unstable();
        Ring { vnodes: ring }
    }

    /// The backend owning `key`: the first vnode clockwise of its hash.
    #[must_use]
    pub fn route(&self, key: &str) -> usize {
        let hash = fnv1a(key.as_bytes());
        let at = self.vnodes.partition_point(|&(h, _)| h < hash);
        self.vnodes[at % self.vnodes.len()].1
    }
}

/// Monotonic router counters, readable via [`Router::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    /// v1 requests relayed verbatim to a backend.
    pub relayed: u64,
    /// v2 sweeps decomposed and streamed.
    pub sweeps: u64,
    /// Sweep points fanned out to backends.
    pub sweep_points: u64,
    /// Backend calls that failed once and were retried on a fresh
    /// connection.
    pub backend_retries: u64,
    /// Requests (or sweep points) answered `overloaded` because their
    /// backend stayed unreachable through the retry.
    pub backend_unavailable: u64,
    /// Malformed client lines answered `protocol` at the router.
    pub rejected_protocol: u64,
}

#[derive(Default)]
struct RouterStats {
    relayed: AtomicU64,
    sweeps: AtomicU64,
    sweep_points: AtomicU64,
    backend_retries: AtomicU64,
    backend_unavailable: AtomicU64,
    rejected_protocol: AtomicU64,
}

/// One lazily-opened, order-preserving connection to a backend.
struct BackendConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BackendConn {
    fn connect(addr: SocketAddr) -> io::Result<BackendConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(BackendConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request line out, one response line back (both with their
    /// newline). A clean backend EOF is an error: the call is retried
    /// or answered unavailable by the caller.
    fn call_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        Ok(response)
    }
}

/// The per-client-connection relay state: the ring plus this
/// connection's private backend connections.
struct Relay {
    ring: Ring,
    backends: Vec<SocketAddr>,
    conns: HashMap<usize, BackendConn>,
    stats: Arc<RouterStats>,
}

impl Relay {
    /// Calls `line` on backend `idx`: lazy connect, one reconnect-and-
    /// retry on failure, `Err` once the backend stayed down.
    fn backend_call(&mut self, idx: usize, line: &str) -> Result<String, ()> {
        for attempt in 0..2 {
            if attempt > 0 {
                self.stats.backend_retries.fetch_add(1, Ordering::Relaxed);
            }
            if !self.conns.contains_key(&idx) {
                match BackendConn::connect(self.backends[idx]) {
                    Ok(conn) => {
                        self.conns.insert(idx, conn);
                    }
                    Err(_) => continue,
                }
            }
            if let Some(conn) = self.conns.get_mut(&idx) {
                match conn.call_line(line) {
                    Ok(response) => return Ok(response),
                    Err(_) => {
                        // Stale or broken pipe: drop it; the retry
                        // reconnects from scratch.
                        self.conns.remove(&idx);
                    }
                }
            }
        }
        self.stats
            .backend_unavailable
            .fetch_add(1, Ordering::Relaxed);
        Err(())
    }

    /// Relays one v1 request verbatim: the client's exact line goes to
    /// the owning backend, the backend's exact response line comes
    /// back. Returns the line to write to the client.
    fn relay_single(&mut self, line: &str, request: &FlowRequest) -> String {
        self.stats.relayed.fetch_add(1, Ordering::Relaxed);
        let backend = self.ring.route(&route_key(request));
        match self.backend_call(backend, line) {
            Ok(response) => response,
            Err(()) => encode_line(&Response::reject(
                Some(request.id),
                RejectKind::Overloaded,
                format!("backend shard {backend} is unavailable; retry later"),
            )),
        }
    }

    /// Decomposes a sweep, routes every point by its own key, and
    /// synthesizes the client-facing stream. Writes events to `out` as
    /// points come back so the client streams instead of waiting.
    fn relay_sweep(&mut self, request: &FlowRequest, out: &mut TcpStream) -> io::Result<()> {
        self.stats.sweeps.fetch_add(1, Ordering::Relaxed);
        let id = request.id;
        let points = request
            .decompose_sweep()
            .expect("a validated sweep decomposes");
        let total = points.len() as u64;
        out.write_all(encode_line(&StreamEvent::Progress { id, total }).as_bytes())?;
        out.flush()?;
        let mut delivered = 0u64;
        let mut errors = 0u64;
        for (index, mut point) in points.into_iter().enumerate() {
            let index = index as u64;
            // The point's wire id is its scenario-major index: unique
            // per in-flight sweep on each backend connection, and the
            // natural correlation token for the event we synthesize.
            point.id = index;
            self.stats.sweep_points.fetch_add(1, Ordering::Relaxed);
            let backend = self.ring.route(&route_key(&point));
            let event = match self.backend_call(backend, &encode_line(&point)) {
                Ok(response_line) => match decode_response(&response_line) {
                    Ok(Response::Ok {
                        cache_hit, report, ..
                    }) => {
                        delivered += 1;
                        StreamEvent::Point {
                            id,
                            index,
                            cache_hit,
                            report,
                        }
                    }
                    Ok(Response::Rejected { kind, message, .. }) => {
                        errors += 1;
                        StreamEvent::Error {
                            id,
                            index,
                            kind,
                            message,
                        }
                    }
                    Err(e) => {
                        errors += 1;
                        StreamEvent::Error {
                            id,
                            index,
                            kind: RejectKind::Protocol,
                            message: format!("undecodable backend response: {e}"),
                        }
                    }
                },
                Err(()) => {
                    errors += 1;
                    StreamEvent::Error {
                        id,
                        index,
                        kind: RejectKind::Overloaded,
                        message: format!("backend shard {backend} is unavailable; retry later"),
                    }
                }
            };
            out.write_all(encode_line(&event).as_bytes())?;
            out.flush()?;
        }
        out.write_all(
            encode_line(&StreamEvent::Done {
                id,
                points: delivered,
                errors,
            })
            .as_bytes(),
        )?;
        out.flush()
    }
}

/// The router front: a listener plus one relay thread per client
/// connection (the router does no flow work — a thread here only
/// shuttles lines, so thread-per-connection is cheap at the client
/// counts a front sees).
pub struct Router {
    local_addr: SocketAddr,
    stats: Arc<RouterStats>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` and starts routing to `config.backends`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures; an empty backend list is
    /// `InvalidInput`.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let ring = Ring::new(config.backends.len(), config.vnodes);
        let stats = Arc::new(RouterStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let backends = config.backends.clone();
            std::thread::spawn(move || {
                let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> =
                    Arc::new(Mutex::new(Vec::new()));
                for accepted in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = accepted else { continue };
                    let relay = Relay {
                        ring: ring.clone(),
                        backends: backends.clone(),
                        conns: HashMap::new(),
                        stats: Arc::clone(&stats),
                    };
                    let handle = std::thread::spawn(move || serve_conn(stream, relay));
                    conn_threads.lock().expect("router threads").push(handle);
                }
                for handle in conn_threads.lock().expect("router threads").drain(..) {
                    let _ = handle.join();
                }
            })
        };
        Ok(Router {
            local_addr,
            stats,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> RouterStatsSnapshot {
        let s = &self.stats;
        RouterStatsSnapshot {
            relayed: s.relayed.load(Ordering::Relaxed),
            sweeps: s.sweeps.load(Ordering::Relaxed),
            sweep_points: s.sweep_points.load(Ordering::Relaxed),
            backend_retries: s.backend_retries.load(Ordering::Relaxed),
            backend_unavailable: s.backend_unavailable.load(Ordering::Relaxed),
            rejected_protocol: s.rejected_protocol.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and waits for the accept thread (which waits for
    /// the relay threads of connections that have already hung up;
    /// clients should disconnect first). Returns the final counters.
    pub fn shutdown(mut self) -> RouterStatsSnapshot {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Blocks forever routing requests (the `m3d-router` binary's main
    /// loop).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// One client connection's loop: frame lines, decode, relay.
fn serve_conn(stream: TcpStream, mut relay: Relay) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let written = match decode_request(&line) {
            Ok(request) => {
                // Only a *valid* sweep streams. An invalid one (bad
                // grid, wrong protocol version) relays verbatim so the
                // backend answers the exact single-line rejection a
                // direct connection would see.
                if matches!(request.command, FlowCommand::Sweep { .. })
                    && request.validate().is_ok()
                {
                    relay.relay_sweep(&request, &mut out)
                } else {
                    let response = relay.relay_single(&line, &request);
                    out.write_all(response.as_bytes())
                        .and_then(|()| out.flush())
                }
            }
            Err(e) => {
                relay
                    .stats
                    .rejected_protocol
                    .fetch_add(1, Ordering::Relaxed);
                let rejection = encode_line(&Response::reject(
                    salvage_id(&line),
                    RejectKind::Protocol,
                    e.to_string(),
                ));
                out.write_all(rejection.as_bytes())
                    .and_then(|()| out.flush())
            }
        };
        if written.is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ring_is_deterministic_and_covers_every_backend() {
        let ring = Ring::new(4, 64);
        let again = Ring::new(4, 64);
        let mut seen = [false; 4];
        for key in 0..1000 {
            let k = format!("key-{key}");
            let backend = ring.route(&k);
            assert_eq!(backend, again.route(&k), "placement must be stable");
            seen[backend] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 vnodes reach all 4 backends");
    }

    #[test]
    fn one_backend_owns_everything() {
        let ring = Ring::new(1, 64);
        for key in 0..100 {
            assert_eq!(ring.route(&format!("key-{key}")), 0);
        }
    }

    #[test]
    fn vnode_distribution_is_roughly_fair() {
        let ring = Ring::new(4, 64);
        let mut counts = [0usize; 4];
        for key in 0..4000 {
            counts[ring.route(&format!("fingerprint-{key:016x}"))] += 1;
        }
        for &count in &counts {
            // 4000 keys over 4 backends: each within [400, 2200] is
            // ample slack for hash variance while catching gross skew.
            assert!((400..2200).contains(&count), "skewed ring: {counts:?}");
        }
    }
}
