//! A blocking line-protocol client for the flow service.

use crate::protocol::{decode_message, decode_response, encode_line, Response, ServerMessage};
use m3d_flow::FlowRequest;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server closed the connection before responding.
    Closed,
    /// The server sent a line this client could not decode.
    BadResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::BadResponse(msg) => write!(f, "undecodable response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a flow service. Requests may be pipelined with
/// [`Client::send`] and collected with [`Client::recv`] (responses
/// carry the request `id` for correlation), or issued one at a time
/// with [`Client::call`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a service.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request without waiting for its response.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, request: &FlowRequest) -> std::io::Result<()> {
        self.writer.write_all(encode_line(request).as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw line verbatim (plus the newline). Exists so tests
    /// and tools can probe the server's handling of malformed input.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on a clean EOF, [`ClientError::Io`] /
    /// [`ClientError::BadResponse`] otherwise.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Closed);
        }
        decode_response(&line).map_err(ClientError::BadResponse)
    }

    /// Reads the next server line as a [`ServerMessage`] — either a v1
    /// `Response` or a v2 stream event. This is the receive path for
    /// sweep streams.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on a clean EOF, [`ClientError::Io`] /
    /// [`ClientError::BadResponse`] otherwise.
    pub fn recv_message(&mut self) -> Result<ServerMessage, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Closed);
        }
        decode_message(&line).map_err(ClientError::BadResponse)
    }

    /// Sends one request and blocks for one response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] failures.
    pub fn call(&mut self, request: &FlowRequest) -> Result<Response, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Sends one request and collects its full message stream: for a
    /// v1 request, the single `Response`; for a v2 sweep, everything
    /// through the terminal `done` (or a single rejection).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv_message`] failures.
    pub fn call_stream(
        &mut self,
        request: &FlowRequest,
    ) -> Result<Vec<ServerMessage>, ClientError> {
        self.send(request)?;
        let mut messages = Vec::new();
        loop {
            let message = self.recv_message()?;
            let terminal = match &message {
                ServerMessage::Response(_) => true,
                ServerMessage::Event(event) => event.is_terminal(),
            };
            messages.push(message);
            if terminal {
                return Ok(messages);
            }
        }
    }
}
