//! Edge cases of the event-driven TCP front: arbitrary TCP
//! fragmentation and coalescing of request lines, write backpressure
//! against a slow reader (bounded buffering, never unbounded),
//! mid-request disconnects, graceful drain under a thousand idle
//! connections, and the poll(2) fallback backend serving identically
//! to epoll.

use m3d_flow::{
    Config, FlowCommand, FlowOptions, FlowReport, FlowRequest, FlowSession, NetlistSpec, Proto,
};
use m3d_netgen::Benchmark;
use m3d_obs::Obs;
use m3d_serve::{
    encode_line, raise_nofile_limit, Client, ReactorKind, Response, ServerConfig, TcpServer,
    TcpTuning,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn request(id: u64, seed: u64) -> FlowRequest {
    let mut options = FlowOptions::default();
    options.placer_mut().iterations = 8;
    FlowRequest {
        id,
        netlist: NetlistSpec {
            benchmark: Benchmark::Aes,
            scale: 0.012,
            seed,
        },
        options,
        proto: Proto::V1,
        command: FlowCommand::RunFlow {
            config: Config::TwoD9T,
            frequency_ghz: 1.0,
        },
        deadline_ms: None,
    }
}

fn direct_report(req: &FlowRequest) -> FlowReport {
    FlowSession::builder(&req.netlist.materialize())
        .options(req.options.clone())
        .build()
        .expect("valid netlist")
        .execute(&req.command)
        .expect("direct flow")
}

fn await_condition(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn perf(obs: &Obs, name: &str) -> u64 {
    obs.manifest()
        .perf
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn a_request_split_across_many_tcp_segments_still_decodes() {
    let server = TcpServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let req = request(11, 31);
    let expected = direct_report(&req);
    let line = encode_line(&req);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Dribble the line out a few bytes at a time with pauses, so the
    // server's reactor sees the request as dozens of separate readable
    // events, each delivering a fragment of one line.
    for chunk in line.as_bytes().chunks(7) {
        stream.write_all(chunk).expect("write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply).expect("read");
    let got = m3d_serve::protocol::decode_response(&reply).expect("decode");
    match got {
        Response::Ok { id, report, .. } => {
            assert_eq!(id, 11);
            assert_eq!(*report, expected);
        }
        Response::Rejected { kind, message, .. } => panic!("rejected [{kind}]: {message}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(
        stats.rejected_protocol, 0,
        "fragments must never decode early"
    );
}

#[test]
fn requests_coalesced_into_one_segment_are_all_answered() {
    let server = TcpServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let reqs: Vec<FlowRequest> = (0..3).map(|i| request(i, 31 + i)).collect();
    let expected: Vec<FlowReport> = reqs.iter().map(direct_report).collect();

    // Three requests (plus framing noise: blank and whitespace-only
    // lines) delivered to the reactor in a single write — one readable
    // event carrying several complete lines.
    let mut batch = String::new();
    for req in &reqs {
        batch.push_str(&encode_line(req));
        batch.push('\n');
        batch.push_str("   \n");
    }
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    (&stream).write_all(batch.as_bytes()).expect("write");
    let mut reader = BufReader::new(&stream);
    let mut seen = vec![false; reqs.len()];
    for _ in 0..reqs.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        match m3d_serve::protocol::decode_response(&line).expect("decode") {
            Response::Ok { id, report, .. } => {
                assert_eq!(*report, expected[id as usize]);
                seen[id as usize] = true;
            }
            Response::Rejected { kind, message, .. } => panic!("rejected [{kind}]: {message}"),
        }
    }
    assert!(seen.iter().all(|s| *s), "every coalesced request answered");
    drop(reader);
    drop(stream);
    let stats = server.shutdown();
    assert_eq!(stats.completed_ok, 3);
    assert_eq!(stats.accepted, 3, "blank filler lines are not requests");
}

#[test]
fn a_slow_reader_pauses_reads_instead_of_buffering_without_bound() {
    const LINES: usize = 80_000;
    let obs = Obs::enabled();
    let high_water = 1024;
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            obs: obs.clone(),
            ..ServerConfig::default()
        },
        TcpTuning {
            write_high_water: high_water,
            // A small kernel send buffer makes the write path hit
            // backpressure at test-sized volumes.
            send_buffer_bytes: Some(4096),
            ..TcpTuning::default()
        },
    )
    .expect("bind");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        // ~8 MB of malformed lines, each answered in-line with a
        // `protocol` rejection of similar size — far more than the
        // kernel's socket buffers can absorb while this test refuses to
        // read, so an unbounded server-side buffer would grow by
        // megabytes here.
        let mut flood = String::with_capacity(LINES * 101);
        for i in 0..LINES {
            flood.push_str(&format!("not json {i:090}\n"));
        }
        write_half.write_all(flood.as_bytes()).expect("write flood");
    });

    // Refuse to read until the server has demonstrably paused reads on
    // this connection (write buffer above the high-water mark).
    await_condition("the server to pause reads", || {
        perf(&obs, "serve/read_paused") >= 1
    });

    // Now drain everything: all LINES rejections arrive, in order.
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    for i in 0..LINES {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "connection died after {i} responses"
        );
        assert!(
            line.contains("\"kind\": \"protocol\"") || line.contains("\"kind\":\"protocol\""),
            "response {i} was not a protocol rejection: {line}"
        );
    }
    writer.join().expect("writer");
    drop(reader);
    drop(stream);
    let stats = server.shutdown();
    assert_eq!(stats.rejected_protocol, LINES as u64);

    // Boundedness: the outbound buffer never exceeded the high-water
    // mark by more than one read batch's worth of rejections.
    let peak = obs
        .manifest()
        .gauge("serve/write_buffer_peak")
        .expect("peak gauge");
    assert!(
        peak <= (high_water + 256 * 1024) as f64,
        "write buffer peaked at {peak} bytes — backpressure did not engage"
    );
}

#[test]
fn a_mid_request_disconnect_leaves_the_server_healthy() {
    let obs = Obs::enabled();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Send the first half of a request line, then vanish.
    let req = request(3, 31);
    let line = encode_line(&req);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(&line.as_bytes()[..line.len() / 2])
        .expect("write");
    drop(stream);
    await_condition("the dropped connection to be reaped", || {
        perf(&obs, "serve/conns_closed") >= 1
    });

    // The server neither decoded the fragment nor got wedged: a fresh
    // client is served normally.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let response = client.call(&request(4, 31)).expect("call");
    assert!(response.is_ok());
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1, "the half-request must never be admitted");
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.rejected_protocol, 0);
}

#[test]
fn drain_completes_under_a_thousand_idle_connections() {
    const IDLE: usize = 1000;
    raise_nofile_limit(8192);
    let obs = Obs::enabled();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    await_condition("all idle connections to be accepted", || {
        perf(&obs, "serve/conns_accepted") >= (IDLE + 1) as u64
    });
    assert!(client.call(&request(1, 31)).expect("call").is_ok());

    // Shutdown must not wait on connections that will never speak.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("shutdown must complete despite 1000 idle connections");
    assert_eq!(stats.completed_ok, 1);

    // Every idle client sees a clean EOF, not a hang.
    for (i, stream) in idle.iter().enumerate().step_by(97) {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        let n = (&*stream)
            .read(&mut buf)
            .unwrap_or_else(|e| panic!("idle connection {i} errored instead of clean EOF: {e}"));
        assert_eq!(n, 0, "idle connection {i} expected EOF");
    }
}

#[test]
fn the_poll_fallback_backend_serves_identically() {
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        ServerConfig::default(),
        TcpTuning {
            reactor: ReactorKind::Poll,
            ..TcpTuning::default()
        },
    )
    .expect("bind");
    let req = request(21, 31);
    let expected = direct_report(&req);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Malformed line first: in-line rejection, connection stays usable.
    client.send_raw("definitely not json").expect("send");
    let rejection = client.recv().expect("recv");
    assert_eq!(
        rejection.reject_kind(),
        Some(m3d_serve::RejectKind::Protocol)
    );
    match client.call(&req).expect("call") {
        Response::Ok { id, report, .. } => {
            assert_eq!(id, 21);
            assert_eq!(*report, expected, "poll backend diverged from the library");
        }
        Response::Rejected { kind, message, .. } => panic!("rejected [{kind}]: {message}"),
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.rejected_protocol, 1);
}
