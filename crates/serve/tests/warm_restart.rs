//! Warm-restart proof over real TCP: a server backed by a persistent
//! store answers a request, is shut down completely, and a *fresh*
//! server over the same store directory answers the repeated request
//! byte-for-byte identically — from disk, without re-running the
//! pseudo-3-D stage. Also covers the corruption path: a damaged record
//! is evicted, the request is still answered (cold), and the store is
//! repaired by the write-through.

use m3d_flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec, Proto};
use m3d_netgen::Benchmark;
use m3d_obs::Obs;
use m3d_serve::{encode_line, Client, Response, ServerConfig, Store, TcpServer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory, rooted at `M3D_STORE_TEST_ROOT` when set
/// (CI uploads that root as an artifact on failure). Not removed on
/// panic so a failing run leaves the store behind for inspection.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let root = std::env::var_os("M3D_STORE_TEST_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    root.join(format!(
        "m3d-warm-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn request(id: u64) -> FlowRequest {
    let mut options = FlowOptions::default();
    options.placer_mut().iterations = 8;
    FlowRequest {
        id,
        netlist: NetlistSpec {
            benchmark: Benchmark::Aes,
            scale: 0.012,
            seed: 31,
        },
        options,
        proto: Proto::V1,
        command: FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
        },
        deadline_ms: None,
    }
}

fn config(obs: &Obs, store: &Arc<Store>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 16,
        cache_capacity: 8,
        obs: obs.clone(),
        store: Some(Arc::clone(store)),
        sweep_inflight_cap: 4,
    }
}

fn serve_one(dir: &PathBuf, obs: &Obs) -> (Response, m3d_serve::StatsSnapshot) {
    let store = Arc::new(Store::open(dir).expect("open store"));
    let server = TcpServer::bind("127.0.0.1:0", config(obs, &store)).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let response = client.call(&request(1)).expect("call");
    drop(client);
    (response, server.shutdown())
}

#[test]
fn restarted_server_answers_repeat_requests_from_disk() {
    let dir = scratch_dir("restart");

    // Cold: empty store, full flow, write-through after the response.
    let cold_obs = Obs::enabled();
    let (cold, cold_stats) = serve_one(&dir, &cold_obs);
    assert!(cold.is_ok(), "cold request must succeed");
    assert_eq!(cold_stats.store_hits, 0);
    assert_eq!(cold_stats.store_misses, 1);
    assert_eq!(
        cold_stats.store_spills, 1,
        "the completed session must reach the disk tier"
    );
    assert_eq!(
        cold_obs.manifest().counter("flow/pseudo3d_runs"),
        Some(1),
        "cold run pays for the pseudo-3-D stage"
    );

    // Warm: a brand-new server process-equivalent (fresh cache, fresh
    // telemetry) over the same directory. The first repeat request must
    // come back from disk.
    let warm_obs = Obs::enabled();
    let (warm, warm_stats) = serve_one(&dir, &warm_obs);
    assert_eq!(
        encode_line(&warm),
        encode_line(&cold),
        "warm response must be byte-identical to the cold one"
    );
    assert_eq!(warm_stats.store_hits, 1, "answered from the store");
    assert_eq!(warm_stats.store_misses, 0);
    assert_eq!(
        warm_stats.cache_misses, 1,
        "a fresh cache still creates the slot (misses == distinct keys)"
    );
    assert_eq!(
        warm_obs
            .manifest()
            .counter("flow/pseudo3d_runs")
            .unwrap_or(0),
        0,
        "warm restart must never re-run the pseudo-3-D stage"
    );
    // Already fully persisted: the warm pass writes nothing new.
    assert_eq!(warm_stats.store_spills, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_store_records_are_evicted_and_repaired() {
    let dir = scratch_dir("corrupt");

    let (cold, _) = serve_one(&dir, &Obs::disabled());
    assert!(cold.is_ok());
    // Damage every record in the store: flip a payload byte, keeping
    // length intact so only the checksum can catch it.
    let mut damaged = 0;
    for entry in std::fs::read_dir(&dir).expect("read store dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read record");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write damage");
        damaged += 1;
    }
    assert!(damaged > 0, "the cold pass must have persisted something");

    // The restarted server detects the corruption, evicts the record,
    // answers cold, and writes a fresh record back.
    let (after, stats) = serve_one(&dir, &Obs::disabled());
    assert_eq!(
        encode_line(&after),
        encode_line(&cold),
        "a corrupt store must not change answers"
    );
    assert_eq!(stats.store_corrupt_evicted, 1);
    assert_eq!(stats.store_hits, 0);
    assert_eq!(stats.store_spills, 1, "the rebuild repairs the store");

    // And a third restart proves the repair: clean warm hit.
    let (repaired, repaired_stats) = serve_one(&dir, &Obs::disabled());
    assert_eq!(encode_line(&repaired), encode_line(&cold));
    assert_eq!(repaired_stats.store_hits, 1);
    assert_eq!(repaired_stats.store_corrupt_evicted, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}
