//! Property tests on the wire protocol: every generatable
//! [`FlowRequest`] round-trips through its JSON line losslessly, and
//! no truncation or corruption of a request line can make the decoder
//! panic or hang — malformed input always comes back as a typed
//! [`ProtocolError`].

use m3d_flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec, Proto, SweepSpec};
use m3d_json::{parse, Cur, FromJson, ToJson};
use m3d_netgen::Benchmark;
use m3d_serve::protocol::{decode_request, salvage_id, ProtocolError};
use m3d_tech::{Corner, Drive, StackingStyle};
use proptest::prelude::*;

const CONFIGS: [Config; 5] = [
    Config::TwoD9T,
    Config::TwoD12T,
    Config::ThreeD9T,
    Config::ThreeD12T,
    Config::Hetero3d,
];
const BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Aes,
    Benchmark::Ldpc,
    Benchmark::Netcard,
    Benchmark::Cpu,
];
const DRIVES: [Drive; 5] = [Drive::X1, Drive::X2, Drive::X4, Drive::X8, Drive::X16];
const MAX_EXACT_JSON_INT: u64 = 1 << 53;

fn arb_options() -> impl Strategy<Value = FlowOptions> {
    (
        // JSON integers are exact only up to 2^53 (doubles on the
        // wire), so that is the documented — and generated — id/seed range.
        (0.3..0.95f64, 0..MAX_EXACT_JSON_INT, 1..64usize, 0..3usize),
        (0.0..1.0f64, 1..1_000usize, 2..64usize, 1..16usize),
        (0.01..0.9f64, 0..5usize, 0..5usize, 1e-6..0.1f64),
    )
        .prop_map(|(a, b, c)| {
            let (utilization, seed, iterations, flags) = a;
            let (timing_partition_cap, max_fanout, partition_bins, threads) = b;
            let (input_activity, fast, slow, wns_tolerance) = c;
            let mut o = FlowOptions {
                utilization,
                seed,
                timing_partition_cap,
                enable_timing_partition: flags & 1 != 0,
                enable_3d_cts: flags & 2 != 0,
                input_activity,
                max_fanout,
                partition_bins,
                wns_tolerance,
                threads,
                ..FlowOptions::default()
            };
            o.placer_mut().iterations = iterations;
            o.cts_mut().fast_drive = DRIVES[fast];
            o.cts_mut().slow_drive = DRIVES[slow];
            o
        })
}

fn arb_command() -> impl Strategy<Value = FlowCommand> {
    (
        0..4usize,
        0..5usize,
        0.1..4.0f64,
        (1..6usize, 1..3usize, 1..4usize, 1..8usize),
    )
        .prop_map(
            |(op, cfg, ghz, (n_configs, n_styles, n_corners, steps))| match op {
                0 => FlowCommand::RunFlow {
                    config: CONFIGS[cfg],
                    frequency_ghz: ghz,
                },
                1 => FlowCommand::FindFmax {
                    config: CONFIGS[cfg],
                    start_ghz: ghz,
                },
                2 => FlowCommand::CompareConfigs,
                // Duplicate-free axes as prefixes of the canonical orders.
                _ => FlowCommand::Sweep {
                    spec: SweepSpec {
                        configs: CONFIGS[..n_configs].to_vec(),
                        stacking: StackingStyle::ALL[..n_styles].to_vec(),
                        corners: Corner::ALL[..n_corners].to_vec(),
                        freq_min_ghz: ghz,
                        freq_max_ghz: ghz * 1.5,
                        freq_steps: steps,
                    },
                },
            },
        )
}

fn arb_request() -> impl Strategy<Value = FlowRequest> {
    (
        (
            0..MAX_EXACT_JSON_INT,
            0..4usize,
            0.001..0.5f64,
            0..MAX_EXACT_JSON_INT,
        ),
        arb_options(),
        arb_command(),
        0..120_000u64,
        0..2u64,
    )
        .prop_map(
            |((id, bench, scale, seed), options, command, deadline, v2)| FlowRequest {
                id,
                netlist: NetlistSpec {
                    benchmark: BENCHMARKS[bench],
                    scale,
                    seed,
                },
                options,
                // Sweeps only exist on v2; other commands exercise both
                // the omitted-proto (v1) and explicit `"proto":2` paths.
                proto: if v2 == 1 || matches!(command, FlowCommand::Sweep { .. }) {
                    Proto::V2
                } else {
                    Proto::V1
                },
                command,
                // Exercise both the present and absent deadline encodings.
                deadline_ms: (deadline % 2 == 0).then_some(deadline),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The full request — scalars, nested option structs, enums,
    // optional fields — survives render → parse → decode bit for bit.
    #[test]
    fn flow_requests_round_trip_losslessly(request in arb_request()) {
        let line = request.to_json().render();
        let back = decode_request(&line).expect("own encoding must decode");
        prop_assert_eq!(&back, &request, "lossy round-trip: {}", line);
        // Scale and every other float came back bit-identical, so a
        // re-render is byte-identical too.
        prop_assert_eq!(back.to_json().render(), line);
    }

    // Chopping a valid request line at any byte can only produce a
    // typed error or (for prefix-closed truncations) a valid value —
    // never a panic or a hang.
    #[test]
    fn truncated_requests_yield_typed_errors(request in arb_request(), cut in 0.0..1.0f64) {
        let line = request.to_json().render();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut at = (line.len() as f64 * cut) as usize;
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        let truncated = &line[..at];
        match decode_request(truncated) {
            Err(ProtocolError::Parse(msg)) => prop_assert!(!msg.is_empty()),
            Err(ProtocolError::Decode(e)) => prop_assert!(!e.path.is_empty() || !e.expected.is_empty()),
            Ok(_) => prop_assert!(false, "a strict parser cannot accept a strict prefix: {truncated}"),
        }
    }

    // Corrupting one byte leaves the decoder total: it returns either
    // a typed error or a (different or equal) valid request.
    #[test]
    fn corrupted_requests_never_panic(request in arb_request(), pos in 0.0..1.0f64, byte in 0..128u8) {
        let line = request.to_json().render();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut at = (line.len() as f64 * pos) as usize % line.len();
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        let mut corrupted = line.clone();
        corrupted.replace_range(at..at + line[at..].chars().next().map_or(1, char::len_utf8), &char::from(byte % 127).to_string());
        // Must return, one way or the other.
        let _ = decode_request(&corrupted);
        let _ = salvage_id(&corrupted);
    }
}

fn sample_request() -> FlowRequest {
    FlowRequest {
        id: 7,
        netlist: NetlistSpec {
            benchmark: Benchmark::Aes,
            scale: 0.05,
            seed: 31,
        },
        options: FlowOptions::default(),
        command: FlowCommand::CompareConfigs,
        deadline_ms: None,
        proto: Proto::V1,
    }
}

// An id at or above 2^53 cannot survive the f64 wire representation
// exactly, so the decoder refuses it rather than silently correlating
// the response to a different id — and `salvage_id` refuses to echo it
// into a rejection for the same reason.
#[test]
fn ids_at_or_above_2_pow_53_are_rejected_not_rounded() {
    let mut request = sample_request();
    request.id = (1 << 53) + 1; // rounds to exactly 2^53 on the wire
    let line = request.to_json().render();
    match decode_request(&line) {
        Err(ProtocolError::Decode(e)) => assert_eq!(e.path, "id"),
        other => panic!("expected a decode error on `id`, got {other:?}"),
    }
    assert_eq!(salvage_id(&line), None);
}

// A netlist scale outside (0, MAX_SCALE] is refused at decode — before
// it can reach a worker and saturate buffer-sizing arithmetic.
#[test]
fn out_of_range_scales_are_rejected_at_decode() {
    let mut request = sample_request();
    request.netlist.scale = 1e18;
    let line = request.to_json().render();
    match decode_request(&line) {
        Err(ProtocolError::Decode(e)) => assert_eq!(e.path, "netlist/scale"),
        other => panic!("expected a decode error on `netlist/scale`, got {other:?}"),
    }
    // The id itself is fine, so a server can still echo it.
    assert_eq!(salvage_id(&line), Some(7));
}

#[test]
fn responses_round_trip_through_their_lines() {
    use m3d_serve::{RejectKind, Response};
    let rejected = Response::reject(Some(17), RejectKind::Overloaded, "queue full");
    let line = rejected.to_json().render();
    let doc = parse(&line).expect("parse");
    let back = Response::from_json(Cur::root(&doc)).expect("decode");
    assert_eq!(back, rejected);

    let anonymous = Response::reject(None, RejectKind::Protocol, "not json");
    let line = anonymous.to_json().render();
    let doc = parse(&line).expect("parse");
    let back = Response::from_json(Cur::root(&doc)).expect("decode");
    assert_eq!(back, anonymous);
    assert_eq!(back.id(), None);
}
