//! Protocol-v2 streaming sweeps through the service: stream shape
//! (`progress` → `point`* → `done`), field-identity with the
//! equivalent v1 single-shot sequence at multiple worker counts,
//! exactly one pseudo-3-D build per scenario, fairness quota
//! accounting, and mid-stream disconnect cancellation over real TCP.

use m3d_flow::{
    Config, FlowCommand, FlowOptions, FlowReport, FlowRequest, FlowSession, NetlistSpec, Proto,
    SweepSpec,
};
use m3d_json::ToJson;
use m3d_netgen::Benchmark;
use m3d_obs::Obs;
use m3d_serve::{
    Client, RejectKind, Response, Server, ServerConfig, ServerMessage, StreamEvent, TcpServer,
};
use m3d_tech::{Corner, StackingStyle};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::time::{Duration, Instant};

const SCALE: f64 = 0.012;

fn spec(seed: u64) -> NetlistSpec {
    NetlistSpec {
        benchmark: Benchmark::Aes,
        scale: SCALE,
        seed,
    }
}

fn quick_options(iterations: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = iterations;
    o
}

fn sweep_request(id: u64, spec_: SweepSpec) -> FlowRequest {
    FlowRequest {
        id,
        netlist: spec(31),
        options: quick_options(8),
        command: FlowCommand::Sweep { spec: spec_ },
        deadline_ms: None,
        proto: Proto::V2,
    }
}

/// Two scenarios (stacking × corner), two configs, two frequencies:
/// 8 points over 2 distinct cache keys.
fn small_sweep() -> SweepSpec {
    SweepSpec {
        configs: vec![Config::Hetero3d, Config::TwoD12T],
        stacking: vec![StackingStyle::Monolithic, StackingStyle::F2fHybridBond],
        corners: vec![Corner::Typical],
        freq_min_ghz: 0.9,
        freq_max_ghz: 1.1,
        freq_steps: 2,
    }
}

fn config(workers: usize, obs: &Obs) -> ServerConfig {
    ServerConfig {
        workers,
        queue_depth: 64,
        cache_capacity: 8,
        obs: obs.clone(),
        store: None,
        sweep_inflight_cap: 4,
    }
}

/// Ground truth for one decomposed point request: the library session
/// path, sharing one session per scenario exactly as a v1 client
/// exploring the grid by hand would.
fn direct_reports(points: &[FlowRequest]) -> Vec<FlowReport> {
    let mut sessions: HashMap<String, FlowSession> = HashMap::new();
    points
        .iter()
        .map(|p| {
            let session = sessions.entry(p.options.fingerprint()).or_insert_with(|| {
                FlowSession::builder(&p.netlist.materialize())
                    .options(p.options.clone())
                    .build()
                    .expect("valid netlist")
            });
            session.execute(&p.command).expect("direct flow")
        })
        .collect()
}

/// Splits a finished stream into (progress, indexed points, done),
/// asserting the shape: progress first, done last, no errors.
fn dissect(
    messages: &[ServerMessage],
    expect_total: u64,
) -> (Vec<(u64, bool, FlowReport)>, u64, u64) {
    assert!(
        matches!(
            messages.first(),
            Some(ServerMessage::Event(StreamEvent::Progress { total, .. })) if *total == expect_total
        ),
        "stream must open with progress for {expect_total}: {:?}",
        messages.first().map(std::mem::discriminant)
    );
    let Some(ServerMessage::Event(StreamEvent::Done { points, errors, .. })) = messages.last()
    else {
        panic!("stream must end with done");
    };
    let mut indexed = Vec::new();
    for message in &messages[1..messages.len() - 1] {
        match message {
            ServerMessage::Event(StreamEvent::Point {
                index,
                cache_hit,
                report,
                ..
            }) => indexed.push((*index, *cache_hit, report.as_ref().clone())),
            other => panic!("unexpected mid-stream message: {other:?}"),
        }
    }
    indexed.sort_by_key(|(index, ..)| *index);
    (indexed, *points, *errors)
}

#[test]
fn streamed_sweeps_match_v1_singles_at_any_worker_count() {
    let request = sweep_request(7, small_sweep());
    let points = request.decompose_sweep().expect("sweep decomposes");
    let expected = direct_reports(&points);
    let scenarios = 2u64;
    for workers in [1, 4] {
        let obs = Obs::enabled();
        let server = Server::start(config(workers, &obs));
        let messages = server.submit_stream(request.clone()).wait();
        let (indexed, delivered, errors) = dissect(&messages, points.len() as u64);
        assert_eq!(errors, 0, "no point may fail at {workers} workers");
        assert_eq!(delivered, points.len() as u64);
        assert_eq!(indexed.len(), points.len());
        for ((index, _, report), expected) in indexed.iter().zip(&expected) {
            assert_eq!(
                report, expected,
                "point {index} at {workers} workers diverged from the v1 single-shot"
            );
            assert_eq!(
                report.to_json().render(),
                expected.to_json().render(),
                "point {index} serialization diverged"
            );
        }
        let stats = server.shutdown();
        // v1 counters untouched; all accounting in the sweep_* family.
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.completed_ok, 0);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.sweep_points, points.len() as u64);
        assert_eq!(stats.sweep_point_errors, 0);
        // One checkpoint per scenario, built exactly once each.
        assert_eq!(stats.cache_misses, scenarios, "at {workers} workers");
        assert_eq!(
            obs.manifest().counter("flow/pseudo3d_runs"),
            Some(scenarios),
            "pseudo-3-D must run once per scenario at {workers} workers"
        );
    }
}

#[test]
fn fairness_cap_defers_points_past_the_cap() {
    let obs = Obs::enabled();
    let server = Server::start(ServerConfig {
        sweep_inflight_cap: 2,
        ..config(1, &obs)
    });
    let request = sweep_request(3, small_sweep());
    let total = request.decompose_sweep().expect("sweep decomposes").len() as u64;
    let messages = server.submit_stream(request).wait();
    let (_, delivered, errors) = dissect(&messages, total);
    assert_eq!((delivered, errors), (total, 0));
    let stats = server.shutdown();
    // A lone sweep defers deterministically: everything past the cap
    // waits, whatever the worker scheduling.
    assert_eq!(stats.quota_deferred, total - 2);
    assert_eq!(stats.sweep_points, total);
    assert_eq!(stats.sweep_cancelled_points, 0);
}

#[test]
fn submit_rejects_sweeps_toward_single_response_channels() {
    let server = Server::start(config(1, &Obs::disabled()));
    let response = server.submit(sweep_request(9, small_sweep())).wait();
    match response {
        Response::Rejected { id, kind, .. } => {
            assert_eq!(id, Some(9));
            assert_eq!(kind, RejectKind::Protocol);
        }
        Response::Ok { .. } => panic!("a sweep cannot fit in a single response"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected_protocol, 1);
    assert_eq!(stats.sweeps, 0);
}

#[test]
fn v1_requests_stream_as_single_responses() {
    let server = Server::start(config(1, &Obs::disabled()));
    let request = FlowRequest {
        id: 5,
        netlist: spec(31),
        options: quick_options(8),
        command: FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
        },
        deadline_ms: None,
        proto: Proto::V1,
    };
    let messages = server.submit_stream(request).wait();
    assert_eq!(messages.len(), 1);
    assert!(matches!(
        &messages[0],
        ServerMessage::Response(Response::Ok { id: 5, .. })
    ));
    let _ = server.shutdown();
}

#[test]
fn tcp_sweeps_stream_alongside_v1_requests_on_one_connection() {
    let server = TcpServer::bind("127.0.0.1:0", config(2, &Obs::disabled())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // A v1 request first: the connection is a plain v1 connection
    // until a sweep shows up.
    let single = FlowRequest {
        id: 1,
        netlist: spec(31),
        options: quick_options(8),
        command: FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
        },
        deadline_ms: None,
        proto: Proto::V1,
    };
    let response = client.call(&single).expect("v1 call");
    assert!(response.is_ok());
    let request = sweep_request(2, small_sweep());
    let total = request.decompose_sweep().expect("sweep decomposes").len() as u64;
    let messages = client.call_stream(&request).expect("sweep stream");
    let events: Vec<&StreamEvent> = messages
        .iter()
        .map(|m| match m {
            ServerMessage::Event(e) => e,
            ServerMessage::Response(r) => panic!("unexpected response mid-stream: {r:?}"),
        })
        .collect();
    let (_, delivered, errors) = dissect(&messages, total);
    assert_eq!((delivered, errors), (total, 0));
    assert_eq!(events.len() as u64, total + 2);
    // And the connection still answers v1 afterwards.
    let mut after = single;
    after.id = 3;
    let response = client.call(&after).expect("v1 call after sweep");
    assert!(response.is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.sweeps, 1);
    assert_eq!(stats.completed_ok, 2);
}

#[test]
fn mid_stream_disconnect_cancels_remaining_points_and_pool_survives() {
    let obs = Obs::enabled();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            sweep_inflight_cap: 1,
            ..config(1, &obs)
        },
    )
    .expect("bind");
    let request = sweep_request(11, small_sweep());
    let total = request.decompose_sweep().expect("sweep decomposes").len() as u64;
    {
        // A raw connection we can abandon mid-stream: send the sweep,
        // read nothing, hang up.
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(m3d_serve::encode_line(&request).as_bytes())
            .expect("send sweep");
        stream.flush().expect("flush");
        // Give the shard a moment to admit the sweep before vanishing.
        let engine = server.server().clone();
        let deadline = Instant::now() + Duration::from_secs(120);
        while engine.stats().sweeps == 0 {
            assert!(Instant::now() < deadline, "sweep was never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
    } // <- disconnect
    let engine = server.server().clone();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = engine.stats();
        if stats.sweep_points + stats.sweep_point_errors + stats.sweep_cancelled_points == total {
            assert!(
                stats.sweep_cancelled_points > 0,
                "the disconnect must cancel at least the deferred tail: {stats:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweep accounting never settled: {:?}",
            engine.stats()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // The pool survived: a fresh client gets a real answer.
    let mut client = Client::connect(server.local_addr()).expect("connect after disconnect");
    let response = client
        .call(&FlowRequest {
            id: 99,
            netlist: spec(31),
            options: quick_options(8),
            command: FlowCommand::RunFlow {
                config: Config::Hetero3d,
                frequency_ghz: 1.0,
            },
            deadline_ms: None,
            proto: Proto::V1,
        })
        .expect("post-disconnect call");
    assert!(response.is_ok(), "pool must stay healthy: {response:?}");
    // Shutdown completes: every point was accounted for, nothing hangs.
    let stats = server.shutdown();
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(
        stats.sweep_points + stats.sweep_point_errors + stats.sweep_cancelled_points,
        total
    );
}

const PROP_CONFIGS: [Config; 3] = [Config::Hetero3d, Config::TwoD12T, Config::ThreeD9T];

fn arb_sweep() -> impl Strategy<Value = SweepSpec> {
    (1..3usize, 1..3usize, 1..3usize, 1..3usize, 0..2usize).prop_map(
        |(n_configs, n_styles, n_corners, steps, first_config)| SweepSpec {
            configs: PROP_CONFIGS[first_config..first_config + n_configs].to_vec(),
            stacking: StackingStyle::ALL[..n_styles].to_vec(),
            corners: Corner::ALL[..n_corners].to_vec(),
            freq_min_ghz: 0.9,
            freq_max_ghz: 1.2,
            freq_steps: steps,
        },
    )
}

proptest! {
    // Real flows run in here, so the case count is deliberately small;
    // the space of stream shapes is tiny (grid-axis combinations), so
    // six cases already cover single/multi values on every axis.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // THE v2 semantic contract: any sweep's streamed points are
    // field-identical to the concatenated reports of its decomposed v1
    // single-shots.
    #[test]
    fn any_sweep_streams_its_v1_decomposition(spec_ in arb_sweep()) {
        let request = sweep_request(1, spec_);
        let points = request.decompose_sweep().expect("sweep decomposes");
        let expected = direct_reports(&points);
        let server = Server::start(config(2, &Obs::disabled()));
        let messages = server.submit_stream(request).wait();
        let (indexed, delivered, errors) = dissect(&messages, points.len() as u64);
        prop_assert_eq!(errors, 0);
        prop_assert_eq!(delivered, points.len() as u64);
        prop_assert_eq!(indexed.len(), points.len());
        for ((index, _, report), expected) in indexed.iter().zip(&expected) {
            prop_assert_eq!(report, expected, "point {} diverged", index);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.sweep_points, points.len() as u64);
    }
}
