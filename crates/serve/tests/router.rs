//! Shard-router integration: responses through the router are
//! byte-identical to a direct connection at 1 and at 4 shards, every
//! checkpoint key is built on exactly one shard cluster-wide, routed
//! sweeps stream the same bytes a single server would, and a dead
//! backend answers `overloaded` instead of hanging the client.

use m3d_flow::{Config, FlowCommand, FlowOptions, FlowRequest, NetlistSpec, Proto, SweepSpec};
use m3d_netgen::Benchmark;
use m3d_obs::Obs;
use m3d_serve::{
    decode_message, encode_line, route_key, Client, RejectKind, Response, Ring, Router,
    RouterConfig, ServerConfig, ServerMessage, StatsSnapshot, StreamEvent, TcpServer,
};
use m3d_tech::{Corner, StackingStyle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

const SCALE: f64 = 0.012;
const VNODES: usize = 64;

fn spec(seed: u64) -> NetlistSpec {
    NetlistSpec {
        benchmark: Benchmark::Aes,
        scale: SCALE,
        seed,
    }
}

fn quick_options(iterations: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = iterations;
    o
}

fn request(
    id: u64,
    netlist: NetlistSpec,
    options: FlowOptions,
    command: FlowCommand,
) -> FlowRequest {
    FlowRequest {
        id,
        netlist,
        options,
        command,
        deadline_ms: None,
        proto: Proto::V1,
    }
}

fn server_config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_depth: 64,
        cache_capacity: 8,
        obs: Obs::disabled(),
        store: None,
        sweep_inflight_cap: 4,
    }
}

/// The identity workload as raw protocol lines: six flow requests over
/// three distinct checkpoint keys (with a duplicate), one malformed
/// line, and one *invalid* sweep (v1 protocol) that must reject as a
/// single line everywhere.
fn workload_lines() -> Vec<String> {
    let key_a = (spec(31), quick_options(8));
    let key_b = (spec(31), quick_options(9));
    let key_c = (spec(32), quick_options(8));
    let run = |config, frequency_ghz| FlowCommand::RunFlow {
        config,
        frequency_ghz,
    };
    let requests = [
        request(0, key_a.0, key_a.1.clone(), run(Config::Hetero3d, 1.0)),
        request(1, key_b.0, key_b.1, run(Config::Hetero3d, 1.0)),
        request(2, key_c.0, key_c.1, run(Config::TwoD12T, 1.1)),
        // Exact duplicate of id 0: a cache hit on whichever shard owns
        // key A.
        request(3, key_a.0, key_a.1.clone(), run(Config::Hetero3d, 1.0)),
        request(4, key_a.0, key_a.1.clone(), run(Config::ThreeD9T, 0.9)),
        request(
            5,
            key_a.0,
            key_a.1,
            FlowCommand::FindFmax {
                config: Config::Hetero3d,
                start_ghz: 1.0,
            },
        ),
    ];
    let mut lines: Vec<String> = requests.iter().map(encode_line).collect();
    lines.push("{\"id\":42,\"benchmark\":\"nope\"}\n".to_string());
    // A sweep on protocol v1 is invalid: the backend (not the router)
    // must answer it, with the same typed rejection a direct server
    // sends.
    let mut bad_sweep = request(
        6,
        spec(31),
        quick_options(8),
        FlowCommand::Sweep {
            spec: small_sweep(),
        },
    );
    bad_sweep.proto = Proto::V1;
    lines.push(encode_line(&bad_sweep));
    lines
}

fn small_sweep() -> SweepSpec {
    SweepSpec {
        configs: vec![Config::Hetero3d, Config::TwoD12T],
        stacking: vec![StackingStyle::Monolithic, StackingStyle::F2fHybridBond],
        corners: vec![Corner::Typical],
        freq_min_ghz: 0.9,
        freq_max_ghz: 1.1,
        freq_steps: 2,
    }
}

/// A raw line-level connection: what the byte-identity proof compares.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        RawConn {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn call(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.flush().expect("flush");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "peer hung up mid-conversation");
        response
    }
}

/// Runs `lines` sequentially against `addr`, one response line each.
fn call_all(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut conn = RawConn::connect(addr);
    lines.iter().map(|line| conn.call(line)).collect()
}

/// Spawns `shards` fresh single-worker backends plus a router in front.
fn cluster(shards: usize) -> (Vec<TcpServer>, Router) {
    let backends: Vec<TcpServer> = (0..shards)
        .map(|_| TcpServer::bind("127.0.0.1:0", server_config(1)).expect("backend bind"))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(TcpServer::local_addr).collect();
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            backends: addrs,
            vnodes: VNODES,
        },
    )
    .expect("router bind");
    (backends, router)
}

fn teardown(backends: Vec<TcpServer>, router: Router) -> Vec<StatsSnapshot> {
    let _ = router.shutdown();
    backends.into_iter().map(TcpServer::shutdown).collect()
}

#[test]
fn routed_responses_are_byte_identical_to_direct_at_1_and_4_shards() {
    let lines = workload_lines();

    let direct_server = TcpServer::bind("127.0.0.1:0", server_config(1)).expect("bind");
    let direct = call_all(direct_server.local_addr(), &lines);
    let direct_stats = direct_server.shutdown();

    let (backends1, router1) = cluster(1);
    let routed1 = call_all(router1.local_addr(), &lines);
    let stats1 = teardown(backends1, router1);

    let (backends4, router4) = cluster(4);
    let routed4 = call_all(router4.local_addr(), &lines);
    let stats4 = teardown(backends4, router4);

    assert_eq!(direct, routed1, "1-shard router must be invisible");
    assert_eq!(direct, routed4, "4-shard router must be invisible");

    // Every checkpoint key is built exactly once, cluster-wide, no
    // matter the shard count — and on exactly the shard the ring says
    // owns it.
    let distinct_keys = 3u64;
    assert_eq!(direct_stats.cache_misses, distinct_keys);
    assert_eq!(
        stats1.iter().map(|s| s.cache_misses).sum::<u64>(),
        distinct_keys
    );
    assert_eq!(
        stats4.iter().map(|s| s.cache_misses).sum::<u64>(),
        distinct_keys
    );
    let ring = Ring::new(4, VNODES);
    let mut expected_misses = vec![0u64; 4];
    for key in [
        route_key(&request(
            0,
            spec(31),
            quick_options(8),
            FlowCommand::CompareConfigs,
        )),
        route_key(&request(
            0,
            spec(31),
            quick_options(9),
            FlowCommand::CompareConfigs,
        )),
        route_key(&request(
            0,
            spec(32),
            quick_options(8),
            FlowCommand::CompareConfigs,
        )),
    ] {
        expected_misses[ring.route(&key)] += 1;
    }
    let actual_misses: Vec<u64> = stats4.iter().map(|s| s.cache_misses).collect();
    assert_eq!(
        actual_misses, expected_misses,
        "each key must be built on the shard that owns it"
    );
}

#[test]
fn routed_sweeps_stream_the_same_bytes_as_a_direct_server() {
    let sweep = FlowRequest {
        id: 17,
        netlist: spec(31),
        options: quick_options(8),
        command: FlowCommand::Sweep {
            spec: small_sweep(),
        },
        deadline_ms: None,
        proto: Proto::V2,
    };
    let line = encode_line(&sweep);
    let total = sweep.decompose_sweep().expect("sweep decomposes").len();

    let stream_of = |addr: SocketAddr| -> Vec<String> {
        let mut conn = RawConn::connect(addr);
        conn.writer.write_all(line.as_bytes()).expect("send");
        conn.writer.flush().expect("flush");
        let mut collected = Vec::new();
        loop {
            let event_line = conn.read_line();
            let message = decode_message(event_line.trim_end()).expect("decodable event");
            collected.push(event_line);
            match message {
                ServerMessage::Event(event) if !event.is_terminal() => {}
                _ => return collected,
            }
        }
    };

    let direct_server = TcpServer::bind("127.0.0.1:0", server_config(1)).expect("bind");
    let direct = stream_of(direct_server.local_addr());
    let _ = direct_server.shutdown();

    let (backends, router) = cluster(4);
    let routed = stream_of(router.local_addr());
    let router_stats = router.stats();
    let backend_stats = teardown(backends, router);

    assert_eq!(direct.len(), total + 2, "progress + points + done");
    assert_eq!(direct, routed, "a routed sweep must stream identical bytes");

    // The router decomposed: backends saw only v1 singles, one
    // checkpoint build per technology scenario across the cluster.
    assert_eq!(router_stats.sweeps, 1);
    assert_eq!(router_stats.sweep_points, total as u64);
    assert_eq!(router_stats.relayed, 0);
    assert_eq!(backend_stats.iter().map(|s| s.sweeps).sum::<u64>(), 0);
    assert_eq!(
        backend_stats.iter().map(|s| s.completed_ok).sum::<u64>(),
        total as u64
    );
    assert_eq!(backend_stats.iter().map(|s| s.cache_misses).sum::<u64>(), 2);
}

#[test]
fn a_dead_backend_answers_overloaded_not_a_hang() {
    // Grab a port that refuses connections: bind, read the addr, drop.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            backends: vec![dead],
            vnodes: 8,
        },
    )
    .expect("router bind");

    let mut client = Client::connect(router.local_addr()).expect("connect");
    let single = request(
        1,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
        },
    );
    match client.call(&single).expect("router answers") {
        Response::Rejected { id, kind, .. } => {
            assert_eq!(id, Some(1));
            assert_eq!(kind, RejectKind::Overloaded);
        }
        Response::Ok { .. } => panic!("a dead backend cannot answer ok"),
    }

    // A sweep toward the dead shard degrades per point: the stream
    // still completes, every point an `error` event.
    let mut sweep = request(
        2,
        spec(31),
        quick_options(8),
        FlowCommand::Sweep {
            spec: small_sweep(),
        },
    );
    sweep.proto = Proto::V2;
    let total = sweep.decompose_sweep().expect("sweep decomposes").len() as u64;
    let messages = client.call_stream(&sweep).expect("sweep stream");
    match messages.last() {
        Some(ServerMessage::Event(StreamEvent::Done { points, errors, .. })) => {
            assert_eq!((*points, *errors), (0, total));
        }
        other => panic!("expected done, got {other:?}"),
    }

    // The relay thread parks in `read_line` until its client hangs up,
    // and shutdown joins relay threads — disconnect first.
    drop(client);
    let stats = router.shutdown();
    assert!(stats.backend_unavailable > total);
    assert!(stats.backend_retries >= 1);
}
