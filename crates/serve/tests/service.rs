//! Integration tests for the flow service: bit-identity with direct
//! library calls at multiple worker counts, checkpoint-cache reuse,
//! explicit `overloaded` backpressure under saturation, queue-time
//! deadlines, graceful drain-on-shutdown, and typed protocol errors
//! for malformed input over real TCP.

use m3d_flow::{
    Config, FlowCommand, FlowOptions, FlowReport, FlowRequest, FlowSession, NetlistSpec, Proto,
};
use m3d_json::ToJson;
use m3d_netgen::Benchmark;
use m3d_obs::Obs;
use m3d_serve::{Client, Pending, RejectKind, Response, Server, ServerConfig, TcpServer};
use std::time::{Duration, Instant};

const SCALE: f64 = 0.012;

fn spec(seed: u64) -> NetlistSpec {
    NetlistSpec {
        benchmark: Benchmark::Aes,
        scale: SCALE,
        seed,
    }
}

fn quick_options(iterations: usize) -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = iterations;
    o
}

fn request(
    id: u64,
    netlist: NetlistSpec,
    options: FlowOptions,
    command: FlowCommand,
) -> FlowRequest {
    FlowRequest {
        id,
        netlist,
        options,
        command,
        deadline_ms: None,
        proto: Proto::V1,
    }
}

/// A mixed workload over three distinct cache keys: two option
/// variants of one netlist plus a second netlist, exercising every
/// command kind and a duplicated query.
fn mixed_requests() -> Vec<FlowRequest> {
    let key_a = (spec(31), quick_options(8));
    let key_b = (spec(31), quick_options(9));
    let key_c = (spec(32), quick_options(8));
    let run = |config, frequency_ghz| FlowCommand::RunFlow {
        config,
        frequency_ghz,
    };
    vec![
        request(0, key_a.0, key_a.1.clone(), run(Config::Hetero3d, 1.0)),
        request(1, key_a.0, key_a.1.clone(), run(Config::TwoD12T, 1.0)),
        request(2, key_a.0, key_a.1.clone(), run(Config::ThreeD9T, 0.9)),
        request(
            3,
            key_a.0,
            key_a.1.clone(),
            FlowCommand::FindFmax {
                config: Config::Hetero3d,
                start_ghz: 1.0,
            },
        ),
        // Exact duplicate of id 0: same key, same command.
        request(4, key_a.0, key_a.1.clone(), run(Config::Hetero3d, 1.0)),
        request(5, key_b.0, key_b.1, run(Config::Hetero3d, 1.0)),
        request(6, key_c.0, key_c.1, run(Config::Hetero3d, 1.0)),
        request(7, key_a.0, key_a.1, run(Config::ThreeD12T, 1.0)),
    ]
}

/// The ground truth: the same command through the library's own
/// session path, no service anywhere.
fn direct_report(req: &FlowRequest) -> FlowReport {
    FlowSession::builder(&req.netlist.materialize())
        .options(req.options.clone())
        .build()
        .expect("valid netlist")
        .execute(&req.command)
        .expect("direct flow")
}

fn wait_all(pending: Vec<Pending>) -> Vec<Response> {
    pending.into_iter().map(Pending::wait).collect()
}

/// Spins until `cond` holds (bounded; the flows involved take far less
/// than the bound).
fn await_condition(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn concurrent_responses_are_bit_identical_to_library_calls() {
    let requests = mixed_requests();
    let expected: Vec<FlowReport> = requests.iter().map(direct_report).collect();
    for workers in [1, 4] {
        let obs = Obs::enabled();
        let server = Server::start(ServerConfig {
            workers,
            queue_depth: 64,
            cache_capacity: 8,
            obs: obs.clone(),
            store: None,
            sweep_inflight_cap: 4,
        });
        let pending: Vec<Pending> = requests.iter().map(|r| server.submit(r.clone())).collect();
        let responses = wait_all(pending);
        for response in &responses {
            let id = response.id().expect("every response carries its id") as usize;
            match response {
                Response::Ok { report, .. } => {
                    assert_eq!(
                        report.as_ref(),
                        &expected[id],
                        "request {id} at {workers} workers diverged from the library"
                    );
                    // Byte-level identity of the serialized report, not
                    // just value equality.
                    assert_eq!(
                        report.to_json().render(),
                        expected[id].to_json().render(),
                        "request {id} serialization diverged"
                    );
                }
                Response::Rejected { kind, message, .. } => {
                    panic!("request {id} rejected [{kind}]: {message}")
                }
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed_ok, requests.len() as u64);
        // Three distinct (netlist fp, options fp) keys — the cache
        // built exactly three sessions no matter how workers raced.
        assert_eq!(stats.cache_misses, 3, "at {workers} workers");
        assert_eq!(stats.cache_hits, requests.len() as u64 - 3);
        // Each of the three sessions saw at least one 3-D command, so
        // the pseudo-3-D stage ran exactly once per key.
        assert_eq!(
            obs.manifest().counter("flow/pseudo3d_runs"),
            Some(3),
            "pseudo-3-D must run once per distinct key at {workers} workers"
        );
    }
}

#[test]
fn saturated_queue_rejects_with_overloaded() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 4,
        obs: Obs::disabled(),
        store: None,
        sweep_inflight_cap: 4,
    });
    // A slow request (the full five-way comparison) occupies the one
    // worker...
    let slow = server.submit(request(
        0,
        spec(31),
        quick_options(8),
        FlowCommand::CompareConfigs,
    ));
    await_condition("worker to start", || server.stats().started >= 1);
    // ...so of the next two, one fills the queue and one must be
    // rejected — explicitly, immediately, not silently blocked.
    let queued = server.submit(request(
        1,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::TwoD9T,
            frequency_ghz: 0.8,
        },
    ));
    let rejected = server.submit(request(
        2,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::TwoD9T,
            frequency_ghz: 0.8,
        },
    ));
    let rejection = rejected.wait();
    assert_eq!(rejection.reject_kind(), Some(RejectKind::Overloaded));
    assert_eq!(rejection.id(), Some(2));
    assert!(slow.wait().is_ok());
    assert!(queued.wait().is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.rejected_overloaded, 1);
    assert_eq!(stats.completed_ok, 2);
}

#[test]
fn queue_time_deadlines_reject_instead_of_running() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        cache_capacity: 4,
        obs: Obs::disabled(),
        store: None,
        sweep_inflight_cap: 4,
    });
    let slow = server.submit(request(
        0,
        spec(31),
        quick_options(8),
        FlowCommand::CompareConfigs,
    ));
    await_condition("worker to start", || server.stats().started >= 1);
    // Queued behind the slow request with a deadline it cannot make.
    let hopeless = server.submit(FlowRequest {
        deadline_ms: Some(0),
        ..request(
            1,
            spec(31),
            quick_options(8),
            FlowCommand::RunFlow {
                config: Config::TwoD9T,
                frequency_ghz: 0.8,
            },
        )
    });
    // And one whose deadline is generous enough to survive the wait.
    let patient = server.submit(FlowRequest {
        deadline_ms: Some(600_000),
        ..request(
            2,
            spec(31),
            quick_options(8),
            FlowCommand::RunFlow {
                config: Config::TwoD9T,
                frequency_ghz: 0.8,
            },
        )
    });
    let rejection = hopeless.wait();
    assert_eq!(rejection.reject_kind(), Some(RejectKind::Deadline));
    assert!(patient.wait().is_ok());
    assert!(slow.wait().is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed_ok, 2);
}

#[test]
fn drain_completes_every_accepted_request() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 64,
        cache_capacity: 4,
        obs: Obs::disabled(),
        store: None,
        sweep_inflight_cap: 4,
    });
    let accepted: Vec<Pending> = (0..6)
        .map(|i| {
            server.submit(request(
                i,
                spec(31),
                quick_options(8),
                FlowCommand::RunFlow {
                    config: Config::TwoD12T,
                    frequency_ghz: 0.9,
                },
            ))
        })
        .collect();
    // Stop admission while (most of) the queue is still pending...
    server.begin_drain();
    let late = server.submit(request(
        99,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::TwoD12T,
            frequency_ghz: 0.9,
        },
    ));
    // ...the straggler is rejected, but everything admitted completes.
    let late_rejection = late.wait();
    assert_eq!(late_rejection.reject_kind(), Some(RejectKind::Shutdown));
    for (i, pending) in accepted.into_iter().enumerate() {
        let response = pending.wait();
        assert!(response.is_ok(), "accepted request {i} must complete");
    }
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.completed_ok, 6);
    assert_eq!(stats.rejected_shutdown, 1);
}

#[test]
fn invalid_flow_inputs_are_flow_rejections() {
    let server = Server::start(ServerConfig::default());
    let response = server
        .submit(request(
            5,
            spec(31),
            quick_options(8),
            FlowCommand::RunFlow {
                config: Config::TwoD9T,
                frequency_ghz: -1.0,
            },
        ))
        .wait();
    assert_eq!(response.reject_kind(), Some(RejectKind::Flow));
    assert_eq!(response.id(), Some(5));
    let stats = server.shutdown();
    assert_eq!(stats.failed_flow, 1);
}

#[test]
fn out_of_bounds_requests_are_protocol_rejections_and_the_worker_survives() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        cache_capacity: 4,
        obs: Obs::disabled(),
        store: None,
        sweep_inflight_cap: 4,
    });
    // Scales that would saturate the f64 → usize cast when sizing the
    // netlist (or are outright nonsense) must be bounced at admission —
    // never handed to a worker to panic on.
    for (id, scale) in [(0, 1e18), (1, f64::NAN), (2, -1.0)] {
        let response = server
            .submit(request(
                id,
                NetlistSpec {
                    benchmark: Benchmark::Aes,
                    scale,
                    seed: 31,
                },
                quick_options(8),
                FlowCommand::RunFlow {
                    config: Config::TwoD9T,
                    frequency_ghz: 1.0,
                },
            ))
            .wait();
        assert_eq!(
            response.reject_kind(),
            Some(RejectKind::Protocol),
            "scale {scale} must be rejected"
        );
        assert_eq!(response.id(), Some(id));
    }
    // The lone worker survived all three and still serves real work.
    let ok = server
        .submit(request(
            9,
            spec(31),
            quick_options(8),
            FlowCommand::RunFlow {
                config: Config::TwoD9T,
                frequency_ghz: 1.0,
            },
        ))
        .wait();
    assert!(ok.is_ok(), "worker must survive rejected requests");
    let stats = server.shutdown();
    assert_eq!(stats.rejected_protocol, 3);
    assert_eq!(
        stats.accepted, 1,
        "out-of-bounds requests are never admitted"
    );
    assert_eq!(stats.completed_ok, 1);
}

#[test]
fn shutdown_is_not_blocked_by_idle_connections() {
    let server = TcpServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut idle = Client::connect(addr).expect("connect");
    idle.send(&request(
        1,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::TwoD9T,
            frequency_ghz: 1.0,
        },
    ))
    .expect("send");
    assert!(idle.recv().expect("recv").is_ok());
    // The client keeps its connection open and goes quiet. Shutdown
    // must close the read half rather than wait for a hangup that
    // never comes.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("shutdown must complete despite the idle connection");
    assert_eq!(stats.completed_ok, 1);
    // The server hung up on its side; the idle client sees EOF.
    assert!(idle.recv().is_err());
}

#[test]
fn tcp_round_trip_handles_malformed_lines_and_real_requests() {
    let server = TcpServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut probe = Client::connect(addr).expect("connect");
    // Not JSON at all.
    probe.send_raw("this is not json").expect("send");
    let r = probe.recv().expect("recv");
    assert_eq!(r.reject_kind(), Some(RejectKind::Protocol));
    assert_eq!(r.id(), None);
    // Valid JSON, wrong shape: the id is salvaged into the rejection.
    probe.send_raw(r#"{"id": 9, "netlist": 4}"#).expect("send");
    let r = probe.recv().expect("recv");
    assert_eq!(r.reject_kind(), Some(RejectKind::Protocol));
    assert_eq!(r.id(), Some(9));
    // Truncated JSON.
    probe.send_raw(r#"{"id": 9, "netlist"#).expect("send");
    let r = probe.recv().expect("recv");
    assert_eq!(r.reject_kind(), Some(RejectKind::Protocol));
    // Well-formed JSON whose netlist scale is far outside the
    // admissible range: bounced `protocol` at decode, id echoed.
    let mut oversize = request(
        7,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::TwoD9T,
            frequency_ghz: 1.0,
        },
    );
    oversize.netlist.scale = 1e18;
    probe.send(&oversize).expect("send");
    let r = probe.recv().expect("recv");
    assert_eq!(r.reject_kind(), Some(RejectKind::Protocol));
    assert_eq!(r.id(), Some(7));

    // The connection survives all of that and still serves real work,
    // concurrently from a second client, bit-identical to the library.
    let real = request(
        42,
        spec(31),
        quick_options(8),
        FlowCommand::RunFlow {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
        },
    );
    let expected = direct_report(&real);
    let mut second = Client::connect(addr).expect("connect");
    second.send(&real).expect("send");
    probe.send(&real).expect("send");
    for client in [&mut probe, &mut second] {
        match client.recv().expect("recv") {
            Response::Ok { id, report, .. } => {
                assert_eq!(id, 42);
                assert_eq!(*report, expected);
            }
            Response::Rejected { kind, message, .. } => panic!("rejected [{kind}]: {message}"),
        }
    }
    drop(probe);
    drop(second);
    let stats = server.shutdown();
    assert_eq!(stats.completed_ok, 2);
    assert_eq!(stats.rejected_protocol, 4);
    assert_eq!(stats.cache_misses, 1, "both clients shared one session");
    assert_eq!(stats.cache_hits, 1);
}
