//! Geometry substrate for the `hetero3d` EDA flow.
//!
//! All physical-design crates in the workspace share these primitives:
//!
//! * [`Point`] / [`Rect`] — planar geometry in microns,
//! * [`BBox`] — accumulating bounding boxes and half-perimeter wirelength,
//! * [`BinGrid`] — uniform spatial binning used by placement spreading,
//!   bin-based FM partitioning and global routing,
//! * [`steiner`] — net-length estimators (HPWL, star, rectilinear MST).
//!
//! Coordinates are `f64` microns throughout the workspace. Determinism matters
//! more than raw speed for a reproduction flow, so every algorithm here is
//! straight-line deterministic: no hashing-order or parallel-reduction
//! dependence.
//!
//! # Examples
//!
//! ```
//! use m3d_geom::{BBox, Point};
//!
//! let mut bbox = BBox::new();
//! bbox.add(Point::new(0.0, 0.0));
//! bbox.add(Point::new(3.0, 4.0));
//! assert_eq!(bbox.hpwl(), 7.0);
//! ```

mod bbox;
mod bins;
mod point;
mod rect;
pub mod steiner;

pub use bbox::BBox;
pub use bins::{BinGrid, BinIdx};
pub use point::Point;
pub use rect::Rect;

/// Manhattan (L1) distance between two points, in microns.
///
/// # Examples
///
/// ```
/// use m3d_geom::{manhattan, Point};
/// assert_eq!(manhattan(Point::new(0.0, 0.0), Point::new(3.0, 4.0)), 7.0);
/// ```
#[must_use]
pub fn manhattan(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

/// Clamps `value` into `[lo, hi]`.
///
/// Unlike [`f64::clamp`] this never panics on `lo > hi`; it returns `lo` in
/// that degenerate case, which is the behaviour the spreading loops want when
/// a bin collapses to zero width.
#[must_use]
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    if hi < lo {
        return lo;
    }
    value.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(manhattan(a, b), manhattan(b, a));
    }

    #[test]
    fn manhattan_zero_for_same_point() {
        let p = Point::new(7.25, -1.5);
        assert_eq!(manhattan(p, p), 0.0);
    }

    #[test]
    fn clamp_handles_degenerate_interval() {
        assert_eq!(clamp(5.0, 10.0, 0.0), 10.0);
        assert_eq!(clamp(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clamp(-5.0, 0.0, 10.0), 0.0);
        assert_eq!(clamp(15.0, 0.0, 10.0), 10.0);
    }
}
