use crate::{Point, Rect};

/// An accumulating bounding box over a set of points.
///
/// The workhorse of wirelength estimation: add every pin location of a net
/// and read the half-perimeter wirelength with [`BBox::hpwl`].
///
/// # Examples
///
/// ```
/// use m3d_geom::{BBox, Point};
///
/// let bbox: BBox = [Point::new(0.0, 0.0), Point::new(2.0, 3.0)].into_iter().collect();
/// assert_eq!(bbox.hpwl(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    count: usize,
}

impl BBox {
    /// Creates an empty bounding box (contains no points; `hpwl` is zero).
    #[must_use]
    pub fn new() -> Self {
        BBox {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Adds a point to the box.
    pub fn add(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
        self.count += 1;
    }

    /// Number of points added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no points have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Half-perimeter wirelength: `width + height` of the box. Zero for
    /// empty or single-point boxes.
    #[must_use]
    pub fn hpwl(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.max_x - self.min_x) + (self.max_y - self.min_y)
        }
    }

    /// Width of the box (zero when fewer than two points).
    #[must_use]
    pub fn width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height of the box (zero when fewer than two points).
    #[must_use]
    pub fn height(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Converts into a [`Rect`], or `None` when empty.
    #[must_use]
    pub fn to_rect(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(Rect::new(self.min_x, self.min_y, self.max_x, self.max_y))
        }
    }

    /// Center of the box, or `None` when empty.
    #[must_use]
    pub fn center(&self) -> Option<Point> {
        self.to_rect().map(|r| r.center())
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::new()
    }
}

impl FromIterator<Point> for BBox {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut bbox = BBox::new();
        for p in iter {
            bbox.add(p);
        }
        bbox
    }
}

impl Extend<Point> for BBox {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        for p in iter {
            self.add(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_has_zero_hpwl() {
        let b = BBox::new();
        assert!(b.is_empty());
        assert_eq!(b.hpwl(), 0.0);
        assert!(b.to_rect().is_none());
        assert!(b.center().is_none());
    }

    #[test]
    fn single_point_has_zero_hpwl() {
        let mut b = BBox::new();
        b.add(Point::new(5.0, 5.0));
        assert_eq!(b.hpwl(), 0.0);
        assert_eq!(b.len(), 1);
        assert!(b.to_rect().is_some());
    }

    #[test]
    fn hpwl_matches_manual_calc() {
        let b: BBox = [
            Point::new(1.0, 1.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 6.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.hpwl(), 3.0 + 5.0);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn extend_accumulates() {
        let mut b = BBox::new();
        b.extend([Point::ORIGIN, Point::new(1.0, 1.0)]);
        b.extend([Point::new(-1.0, 0.0)]);
        assert_eq!(b.hpwl(), 2.0 + 1.0);
    }
}
