use crate::Point;
use std::fmt;

/// An axis-aligned rectangle in microns, defined by its lower-left and
/// upper-right corners.
///
/// Used for die outlines, macro footprints, placement rows and routing bins.
/// A `Rect` is always normalized: `llx <= urx` and `lly <= ury` (enforced by
/// [`Rect::new`]).
///
/// # Examples
///
/// ```
/// use m3d_geom::{Point, Rect};
///
/// let die = Rect::new(0.0, 0.0, 100.0, 50.0);
/// assert_eq!(die.area(), 5000.0);
/// assert!(die.contains(Point::new(10.0, 10.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    llx: f64,
    lly: f64,
    urx: f64,
    ury: f64,
}

impl Rect {
    /// Creates a rectangle; corners are normalized so the result is always
    /// well-formed even if the arguments are swapped.
    #[must_use]
    pub fn new(llx: f64, lly: f64, urx: f64, ury: f64) -> Self {
        Rect {
            llx: llx.min(urx),
            lly: lly.min(ury),
            urx: llx.max(urx),
            ury: lly.max(ury),
        }
    }

    /// Creates a rectangle from its lower-left corner and a size.
    #[must_use]
    pub fn with_size(ll: Point, width: f64, height: f64) -> Self {
        Rect::new(ll.x, ll.y, ll.x + width.abs(), ll.y + height.abs())
    }

    /// Lower-left x coordinate.
    #[must_use]
    pub fn llx(&self) -> f64 {
        self.llx
    }

    /// Lower-left y coordinate.
    #[must_use]
    pub fn lly(&self) -> f64 {
        self.lly
    }

    /// Upper-right x coordinate.
    #[must_use]
    pub fn urx(&self) -> f64 {
        self.urx
    }

    /// Upper-right y coordinate.
    #[must_use]
    pub fn ury(&self) -> f64 {
        self.ury
    }

    /// Width (x extent).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.urx - self.llx
    }

    /// Height (y extent).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.ury - self.lly
    }

    /// Area in square microns.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new((self.llx + self.urx) * 0.5, (self.lly + self.ury) * 0.5)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.llx && p.x <= self.urx && p.y >= self.lly && p.y <= self.ury
    }

    /// Returns `true` if `other` lies entirely inside (or on the boundary of)
    /// `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.llx >= self.llx
            && other.urx <= self.urx
            && other.lly >= self.lly
            && other.ury <= self.ury
    }

    /// Intersection area with `other`; zero if they do not overlap.
    #[must_use]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.urx.min(other.urx) - self.llx.max(other.llx)).max(0.0);
        let h = (self.ury.min(other.ury) - self.lly.max(other.lly)).max(0.0);
        w * h
    }

    /// Returns `true` if the rectangles overlap with positive area (touching
    /// edges do not count as overlap).
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.overlap_area(other) > 0.0
    }

    /// Smallest rectangle covering both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.llx.min(other.llx),
            self.lly.min(other.lly),
            self.urx.max(other.urx),
            self.ury.max(other.ury),
        )
    }

    /// Rectangle grown by `margin` on every side (shrunk for negative
    /// margins, collapsing to a degenerate rectangle at the center if the
    /// margin exceeds half the extent).
    #[must_use]
    pub fn inflated(&self, margin: f64) -> Rect {
        let cx = self.center();
        let hw = (self.width() * 0.5 + margin).max(0.0);
        let hh = (self.height() * 0.5 + margin).max(0.0);
        Rect::new(cx.x - hw, cx.y - hh, cx.x + hw, cx.y + hh)
    }

    /// The point inside the rectangle closest to `p`.
    #[must_use]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            crate::clamp(p.x, self.llx, self.urx),
            crate::clamp(p.y, self.lly, self.ury),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3},{:.3} .. {:.3},{:.3}]",
            self.llx, self.lly, self.urx, self.ury
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalized() {
        let r = Rect::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!(r.llx(), 0.0);
        assert_eq!(r.lly(), 5.0);
        assert_eq!(r.urx(), 10.0);
        assert_eq!(r.ury(), 20.0);
    }

    #[test]
    fn overlap_area_of_disjoint_rects_is_zero() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_area_of_nested_rects_is_inner_area() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 4.0, 5.0);
        assert_eq!(outer.overlap_area(&inner), inner.area());
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, -2.0, 6.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
    }

    #[test]
    fn clamp_point_projects_onto_rect() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.clamp_point(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(r.clamp_point(Point::new(3.0, 20.0)), Point::new(3.0, 10.0));
        let inside = Point::new(4.0, 4.0);
        assert_eq!(r.clamp_point(inside), inside);
    }

    #[test]
    fn inflate_and_deflate() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.inflated(1.0).area(), 144.0);
        assert_eq!(r.inflated(-20.0).area(), 0.0);
    }

    #[test]
    fn touching_edges_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&b));
    }
}
