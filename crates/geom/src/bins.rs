use crate::{Point, Rect};

/// Index of a bin inside a [`BinGrid`]: `(column, row)`.
pub type BinIdx = (usize, usize);

/// A uniform spatial grid over a rectangular region.
///
/// `BinGrid` carries a scalar payload per bin (typically occupied cell area
/// or routing demand) and offers the point↔bin mapping used by the placer's
/// density spreading, the bin-based FM partitioner and the global router.
///
/// # Examples
///
/// ```
/// use m3d_geom::{BinGrid, Point, Rect};
///
/// let mut grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
/// let idx = grid.bin_of(Point::new(15.0, 95.0));
/// assert_eq!(idx, (1, 9));
/// *grid.value_mut(idx) += 3.0;
/// assert_eq!(grid.value(idx), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    region: Rect,
    nx: usize,
    ny: usize,
    values: Vec<f64>,
}

impl BinGrid {
    /// Creates a grid of `nx * ny` bins covering `region`, all values zero.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the region has zero area.
    #[must_use]
    pub fn new(region: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "bin grid must have at least one bin");
        assert!(
            region.area() > 0.0,
            "bin grid region must have positive area"
        );
        BinGrid {
            region,
            nx,
            ny,
            values: vec![0.0; nx * ny],
        }
    }

    /// The covered region.
    #[must_use]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Width of one bin in microns.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        self.region.width() / self.nx as f64
    }

    /// Height of one bin in microns.
    #[must_use]
    pub fn bin_height(&self) -> f64 {
        self.region.height() / self.ny as f64
    }

    /// Area of one bin in square microns.
    #[must_use]
    pub fn bin_area(&self) -> f64 {
        self.bin_width() * self.bin_height()
    }

    /// Maps a point to the bin containing it; points outside the region are
    /// clamped to the nearest boundary bin.
    #[must_use]
    pub fn bin_of(&self, p: Point) -> BinIdx {
        let fx = (p.x - self.region.llx()) / self.bin_width();
        let fy = (p.y - self.region.lly()) / self.bin_height();
        let cx = (fx.floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let cy = (fy.floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        (cx, cy)
    }

    /// Geometric outline of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bin_rect(&self, idx: BinIdx) -> Rect {
        assert!(idx.0 < self.nx && idx.1 < self.ny, "bin index out of range");
        let w = self.bin_width();
        let h = self.bin_height();
        let llx = self.region.llx() + idx.0 as f64 * w;
        let lly = self.region.lly() + idx.1 as f64 * h;
        Rect::new(llx, lly, llx + w, lly + h)
    }

    /// Center point of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bin_center(&self, idx: BinIdx) -> Point {
        self.bin_rect(idx).center()
    }

    fn flat(&self, idx: BinIdx) -> usize {
        idx.1 * self.nx + idx.0
    }

    /// Payload value of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn value(&self, idx: BinIdx) -> f64 {
        assert!(idx.0 < self.nx && idx.1 < self.ny, "bin index out of range");
        self.values[self.flat(idx)]
    }

    /// Mutable payload value of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn value_mut(&mut self, idx: BinIdx) -> &mut f64 {
        assert!(idx.0 < self.nx && idx.1 < self.ny, "bin index out of range");
        let flat = self.flat(idx);
        &mut self.values[flat]
    }

    /// Resets every bin value to zero.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all bin values.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Maximum bin value (zero for an all-zero grid).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Iterates over `(BinIdx, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (BinIdx, f64)> + '_ {
        let nx = self.nx;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| ((i % nx, i / nx), v))
    }

    /// Indices of the (up to four) edge-adjacent neighbours of `idx`.
    #[must_use]
    pub fn neighbors(&self, idx: BinIdx) -> Vec<BinIdx> {
        let mut out = Vec::with_capacity(4);
        if idx.0 > 0 {
            out.push((idx.0 - 1, idx.1));
        }
        if idx.0 + 1 < self.nx {
            out.push((idx.0 + 1, idx.1));
        }
        if idx.1 > 0 {
            out.push((idx.0, idx.1 - 1));
        }
        if idx.1 + 1 < self.ny {
            out.push((idx.0, idx.1 + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> BinGrid {
        BinGrid::new(Rect::new(0.0, 0.0, 100.0, 50.0), 10, 5)
    }

    #[test]
    fn bin_dimensions() {
        let g = grid();
        assert_eq!(g.bin_width(), 10.0);
        assert_eq!(g.bin_height(), 10.0);
        assert_eq!(g.bin_area(), 100.0);
    }

    #[test]
    fn point_to_bin_mapping() {
        let g = grid();
        assert_eq!(g.bin_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.bin_of(Point::new(99.9, 49.9)), (9, 4));
        // Clamping outside the region.
        assert_eq!(g.bin_of(Point::new(-5.0, 500.0)), (0, 4));
        assert_eq!(g.bin_of(Point::new(200.0, -1.0)), (9, 0));
    }

    #[test]
    fn bin_rect_tiles_region() {
        let g = grid();
        let mut area = 0.0;
        for (idx, _) in g.iter() {
            area += g.bin_rect(idx).area();
        }
        assert!((area - g.region().area()).abs() < 1e-9);
    }

    #[test]
    fn values_accumulate() {
        let mut g = grid();
        *g.value_mut((3, 2)) += 5.0;
        *g.value_mut((3, 2)) += 2.5;
        *g.value_mut((0, 0)) = 1.0;
        assert_eq!(g.value((3, 2)), 7.5);
        assert_eq!(g.total(), 8.5);
        assert_eq!(g.max(), 7.5);
        g.clear();
        assert_eq!(g.total(), 0.0);
    }

    #[test]
    fn corner_bins_have_two_neighbors() {
        let g = grid();
        assert_eq!(g.neighbors((0, 0)).len(), 2);
        assert_eq!(g.neighbors((9, 4)).len(), 2);
        assert_eq!(g.neighbors((5, 2)).len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = BinGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 5);
    }
}
