use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in the chip plane, in microns.
///
/// `Point` is a plain value type: `Copy`, comparable, and supports the usual
/// vector arithmetic so placement code reads naturally.
///
/// # Examples
///
/// ```
/// use m3d_geom::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a + b, Point::new(4.0, 6.0));
/// assert_eq!((b - a) * 0.5, Point::new(1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in microns.
    pub x: f64,
    /// Vertical coordinate in microns.
    pub y: f64,
}

impl Point {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean (L2) distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (L1) distance to `other`.
    #[must_use]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(0.5, 4.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
    }

    #[test]
    fn distances() {
        let a = Point::ORIGIN;
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Point::new(1.0, 2.0).to_string().is_empty());
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
