//! Net-length estimators.
//!
//! Routing engines need a fast estimate of how much wire a net will consume
//! before (and sometimes instead of) actually routing it. Three estimators
//! are provided, in increasing fidelity and cost:
//!
//! * [`hpwl`] — half-perimeter of the pin bounding box; exact for 2- and
//!   3-pin nets, a lower bound otherwise,
//! * [`star`] — sum of Manhattan distances from the centroid; pessimistic
//!   for short nets but captures fanout growth,
//! * [`rmst`] — rectilinear minimum spanning tree via Prim's algorithm; a
//!   1.5-approximation upper bound on the rectilinear Steiner minimal tree,
//!   which is the standard pre-route estimate in timing-driven flows.

use crate::{BBox, Point};

/// Half-perimeter wirelength of the bounding box of `pins`.
///
/// # Examples
///
/// ```
/// use m3d_geom::{steiner, Point};
/// let pins = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
/// assert_eq!(steiner::hpwl(&pins), 7.0);
/// ```
#[must_use]
pub fn hpwl(pins: &[Point]) -> f64 {
    pins.iter().copied().collect::<BBox>().hpwl()
}

/// Star-model wirelength: sum of Manhattan distances from the pin centroid.
///
/// Returns zero for nets with fewer than two pins.
#[must_use]
pub fn star(pins: &[Point]) -> f64 {
    if pins.len() < 2 {
        return 0.0;
    }
    let n = pins.len() as f64;
    let centroid = pins.iter().fold(Point::ORIGIN, |acc, &p| acc + p) / n;
    pins.iter().map(|&p| p.manhattan(centroid)).sum()
}

/// Rectilinear minimum spanning tree length over `pins` (Prim's algorithm,
/// O(n²) — fine for net degrees seen in gate-level netlists).
///
/// Returns zero for nets with fewer than two pins. The RSMT (true Steiner
/// tree) length is between `2/3 * rmst` and `rmst`; flows in this workspace
/// use [`steiner_estimate`] which applies the usual fanout correction.
#[must_use]
pub fn rmst(pins: &[Point]) -> f64 {
    if pins.len() < 2 {
        return 0.0;
    }
    let n = pins.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pins[i].manhattan(pins[0]);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && dist[i] < best_d {
                best = i;
                best_d = dist[i];
            }
        }
        debug_assert!(best != usize::MAX);
        in_tree[best] = true;
        total += best_d;
        for i in 0..n {
            if !in_tree[i] {
                let d = pins[i].manhattan(pins[best]);
                if d < dist[i] {
                    dist[i] = d;
                }
            }
        }
    }
    total
}

/// Pre-route Steiner length estimate used by timing and power analysis.
///
/// Exact HPWL for degree ≤ 3; for larger nets the RMST scaled by the
/// empirical Steiner correction `0.87` (RSMT is on average ~13 % shorter
/// than RMST on random point sets).
#[must_use]
pub fn steiner_estimate(pins: &[Point]) -> f64 {
    if pins.len() <= 3 {
        hpwl(pins)
    } else {
        rmst(pins) * 0.87
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pin_estimators_agree() {
        let pins = [Point::new(0.0, 0.0), Point::new(5.0, 7.0)];
        assert_eq!(hpwl(&pins), 12.0);
        assert_eq!(rmst(&pins), 12.0);
        assert_eq!(steiner_estimate(&pins), 12.0);
    }

    #[test]
    fn empty_and_single_pin_nets_have_zero_length() {
        assert_eq!(hpwl(&[]), 0.0);
        assert_eq!(star(&[]), 0.0);
        assert_eq!(rmst(&[]), 0.0);
        let one = [Point::new(1.0, 1.0)];
        assert_eq!(hpwl(&one), 0.0);
        assert_eq!(star(&one), 0.0);
        assert_eq!(rmst(&one), 0.0);
    }

    #[test]
    fn rmst_on_collinear_points() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(9.0, 0.0),
        ];
        assert_eq!(rmst(&pins), 9.0);
    }

    #[test]
    fn rmst_is_at_least_hpwl() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 5.0),
        ];
        assert!(rmst(&pins) >= hpwl(&pins));
    }

    #[test]
    fn star_centroid_symmetry() {
        let pins = [
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, -1.0),
            Point::new(0.0, 1.0),
        ];
        // Centroid at origin; each pin 1 away.
        assert_eq!(star(&pins), 4.0);
    }

    #[test]
    fn steiner_estimate_below_rmst_for_large_nets() {
        let pins: Vec<Point> = (0..10)
            .map(|i| Point::new((i * 37 % 11) as f64, (i * 53 % 7) as f64))
            .collect();
        assert!(steiner_estimate(&pins) < rmst(&pins));
        assert!(steiner_estimate(&pins) > 0.0);
    }
}
