//! # m3d-par — deterministic parallelism for the hetero3d flow
//!
//! Every primitive here is **deterministic by construction**: the result
//! of a call is a pure function of its inputs and never of the thread
//! count. Two rules enforce this:
//!
//! 1. **Fixed decomposition** — work is split into chunks whose boundaries
//!    depend only on the input length (never on how many workers exist).
//!    Threads race to *claim* chunks, but each chunk's computation sees
//!    exactly the data it would see sequentially.
//! 2. **Ordered merge** — per-chunk results are combined in chunk-index
//!    order. Floating-point reductions therefore perform bit-identical
//!    operation sequences at any thread count, including `threads = 1`,
//!    which executes the same chunked algorithm on the calling thread.
//!
//! Thread-count resolution: an explicit per-call count wins; `0` falls
//! back to the process-global setting ([`set_threads`]), which itself
//! falls back to the `HETERO3D_THREADS` environment variable and finally
//! to the machine's available parallelism. Because results are
//! thread-count-invariant, the global is only a *performance* knob — no
//! correctness hazard exists if two flows race on it.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the automatic thread count.
pub const THREADS_ENV: &str = "HETERO3D_THREADS";

/// Sentinel meaning "no explicit global override".
const UNSET: usize = usize::MAX;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Work below this many items is not worth spawning threads for.
pub const PAR_THRESHOLD: usize = 2048;

/// Upper bound on the number of chunks a bulk operation is split into.
/// Fixed (never derived from the worker count) so decomposition — and
/// with it every ordered merge — is identical at any thread count.
const MAX_CHUNKS: usize = 128;

/// The automatic thread count: `HETERO3D_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
#[must_use]
pub fn available() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-global thread count. `0` restores automatic
/// resolution ([`available`]).
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(if n == 0 { UNSET } else { n }, Ordering::SeqCst);
}

/// The resolved global thread count.
#[must_use]
pub fn threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::SeqCst) {
        UNSET => available(),
        n => n,
    }
}

/// Resolves a per-call thread request: explicit counts win, `0` defers to
/// the global setting.
#[must_use]
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        threads()
    } else {
        requested
    }
}

/// Splits `len` items into at most `max_chunks` contiguous ranges of
/// near-equal size. Boundaries depend only on `len` and `max_chunks`.
fn chunk_bounds(len: usize, max_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let n = max_chunks.clamp(1, len);
    let base = len / n;
    let extra = len % n;
    let mut bounds = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        bounds.push(start..start + size);
        start += size;
    }
    bounds
}

/// Applies `f` to fixed index ranges covering `0..len` and returns the
/// per-chunk results **in chunk order**.
///
/// The chunking is `len.min(MAX_CHUNKS)` ranges regardless of `threads`,
/// so a caller folding the returned vector performs the same merge
/// sequence at any thread count. `threads` only controls how many workers
/// race to claim chunks; `threads <= 1` (after [`resolve`]) runs the same
/// chunks sequentially on the calling thread.
pub fn par_ranges<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let bounds = chunk_bounds(len, MAX_CHUNKS);
    let workers = resolve(threads).min(bounds.len().max(1));
    if workers <= 1 || bounds.len() <= 1 {
        return bounds.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..bounds.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let bounds_ref = &bounds;
    let slots_ref = &slots;
    let next_ref = &next;
    let f_ref = &f;
    std::thread::scope(|scope| {
        let work = move || loop {
            let i = next_ref.fetch_add(1, Ordering::Relaxed);
            if i >= bounds_ref.len() {
                break;
            }
            let r = f_ref(bounds_ref[i].clone());
            *slots_ref[i].lock().expect("chunk slot poisoned") = Some(r);
        };
        for _ in 1..workers {
            scope.spawn(work);
        }
        // The calling thread is worker zero.
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk claimed exactly once")
        })
        .collect()
}

/// Deterministic parallel map: `f(i, &items[i])` for every index, results
/// in input order. Equivalent to a sequential `map` at any thread count.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunks = par_ranges(threads, items.len(), |range| {
        range.map(|i| f(i, &items[i])).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Deterministic parallel map over an index range (for call sites that
/// index several slices instead of holding one).
pub fn par_map_indices<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = par_ranges(threads, len, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs independent thunks concurrently, returning their results in call
/// order. Used for the flow's coarse fan-out (one thunk per
/// configuration / per fmax-ladder rung).
pub fn par_invoke<R, F>(threads: usize, thunks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let workers = resolve(threads).min(thunks.len().max(1));
    if workers <= 1 || thunks.len() <= 1 {
        return thunks.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..thunks.len()).map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Mutex<Option<F>>> = thunks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let next = AtomicUsize::new(0);
    let slots_ref = &slots;
    let tasks_ref = &tasks;
    let next_ref = &next;
    std::thread::scope(|scope| {
        let work = move || loop {
            let i = next_ref.fetch_add(1, Ordering::Relaxed);
            if i >= tasks_ref.len() {
                break;
            }
            let task = tasks_ref[i]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("each task claimed once");
            let r = task();
            *slots_ref[i].lock().expect("result slot poisoned") = Some(r);
        };
        for _ in 1..workers {
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for len in [0usize, 1, 7, 128, 129, 1000, 12345] {
            let bounds = chunk_bounds(len, MAX_CHUNKS);
            let mut covered = 0;
            for (i, r) in bounds.iter().enumerate() {
                assert_eq!(r.start, covered, "chunk {i} starts where {} ended", covered);
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn chunk_bounds_ignore_thread_count_by_design() {
        // Decomposition is a function of len only — the core determinism
        // invariant. (Compile-time enforced by the signature; this guards
        // against someone threading worker counts into it later.)
        let a = chunk_bounds(1000, MAX_CHUNKS);
        let b = chunk_bounds(1000, MAX_CHUNKS);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for t in [1, 2, 3, 8] {
            let par = par_map(t, &items, |_, &x| x * x + 1);
            assert_eq!(par, seq, "threads = {t}");
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // Pathological float data: summation order matters a lot here, so
        // this fails loudly if chunk boundaries ever become thread-count
        // dependent.
        let items: Vec<f64> = (0..50_000)
            .map(|i| (i as f64 * 0.1).sin() * 10f64.powi((i % 17) - 8))
            .collect();
        let reduce = |threads: usize| -> f64 {
            par_ranges(threads, items.len(), |r| r.map(|i| items[i]).sum::<f64>())
                .into_iter()
                .sum()
        };
        let base = reduce(1);
        for t in [2, 3, 4, 8, 16] {
            assert_eq!(reduce(t).to_bits(), base.to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn par_invoke_preserves_call_order() {
        let thunks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..9usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order differs from call order.
                    std::thread::sleep(std::time::Duration::from_millis(9 - i as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = par_invoke(4, thunks);
        assert_eq!(out, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_and_global_setting_interact() {
        set_threads(3);
        assert_eq!(resolve(0), 3);
        assert_eq!(resolve(5), 5);
        set_threads(0);
        assert!(resolve(0) >= 1);
    }

    #[test]
    fn par_map_indices_matches() {
        let seq: Vec<usize> = (0..5000).map(|i| i * 3).collect();
        assert_eq!(par_map_indices(4, 5000, |i| i * 3), seq);
    }
}
