//! The synthetic `scale` family: mesh-of-tiles designs sized by a target
//! cell count, built for throughput work rather than paper fidelity.
//!
//! The four paper benchmarks top out around 30 k gates at `scale = 1.0` —
//! right for golden-table comparisons, far too small to exercise the flat
//! data layouts (string arena, CSR connectivity, CSR timing levels) the
//! flow uses to stay fast at modern design sizes. This family fills the
//! 100 k–1 M-cell range: a grid of identical high-locality tiles (short
//! wires, deep cones) stitched through one low-locality crossbar block
//! (chip-spanning nets), so every kernel — partitioner, placer, router,
//! STA — sees both traffic patterns at scale.
//!
//! The family is intentionally **not** part of [`crate::Benchmark::ALL`]:
//! golden Tables VI/VII iterate that set, and their numbers are pinned to
//! the paper's four designs. Scale rungs live only in the throughput
//! ladder (`scale_bench`) and in tests that need big inputs.

use crate::builder::generate;
use crate::spec::{BlockSpec, DesignSpec};
use m3d_netlist::Netlist;

/// Approximate cells contributed by one mesh tile (gates + registers;
/// the collector XOR trees add a few percent on top).
const TILE_GATES: usize = 1800;
const TILE_REGS: usize = 200;

/// Specification of a scale-family design with roughly `target_cells`
/// cells (gates + registers + ports; actual counts land within a few
/// percent of the target once the dangling-cone collectors are built).
///
/// The mesh tiles replicate until the target is met; the crossbar block
/// holds ~2.5 % of the cells at near-zero locality so the netlist keeps a
/// realistic share of global wiring at every size.
#[must_use]
pub fn scale_spec(target_cells: usize) -> DesignSpec {
    let target = target_cells.max(TILE_GATES + TILE_REGS);
    let xbar_gates = (target / 40).max(64);
    let xbar_regs = (target / 400).max(8);
    let tile_cells = TILE_GATES + TILE_REGS;
    let mesh_budget = target.saturating_sub(xbar_gates + xbar_regs);
    let tiles = (mesh_budget / tile_cells).max(1);
    DesignSpec {
        name: format!("scale{}k", target / 1000),
        primary_inputs: 64,
        primary_outputs: 64,
        blocks: vec![
            BlockSpec::new("mesh", TILE_GATES, 12, TILE_REGS, 0.88)
                .with_xor_bias(0.1)
                .replicated(tiles),
            BlockSpec::new("xbar", xbar_gates, 6, xbar_regs, 0.12).with_xor_bias(0.3),
        ],
        srams: vec![],
    }
}

/// Generates a scale-family netlist with roughly `target_cells` cells.
///
/// Deterministic for a given `(target_cells, seed)` pair, like every
/// generator in this crate.
#[must_use]
pub fn scale_netlist(target_cells: usize, seed: u64) -> Netlist {
    generate(&scale_spec(target_cells), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_netlist_hits_target_within_tolerance() {
        for target in [20_000usize, 60_000] {
            let n = scale_netlist(target, 5);
            n.validate().expect("valid netlist");
            let cells = n.cell_count();
            assert!(
                cells as f64 > 0.85 * target as f64 && (cells as f64) < 1.3 * target as f64,
                "target {target}: got {cells} cells"
            );
        }
    }

    #[test]
    fn scale_family_is_deterministic() {
        let a = scale_netlist(20_000, 9);
        let b = scale_netlist(20_000, 9);
        assert_eq!(a.cell_count(), b.cell_count());
        assert_eq!(a.stats().pins, b.stats().pins);
        assert_eq!(a.stats().kind_histogram, b.stats().kind_histogram);
    }

    #[test]
    fn scale_family_mixes_local_and_global_wiring() {
        let spec = scale_spec(100_000);
        assert!(spec.blocks[0].locality > 0.8, "mesh tiles are local");
        assert!(spec.blocks[1].locality < 0.2, "crossbar is global");
        assert!(spec.blocks[0].replicate > 10);
    }
}
