//! Workload generators for the paper's four benchmark netlists.
//!
//! The paper evaluates on AES (cell-dominant), LDPC (wire-dominant),
//! Netcard (large, flat) and a commercial Cortex-A7-class CPU (general
//! purpose, 40 % of the footprint in cache macros). Those RTLs are either
//! proprietary or require a synthesis stack fed by a commercial library,
//! so this crate *generates* gate-level netlists with the same structural
//! signatures — the properties the paper's conclusions actually rest on:
//!
//! * **AES** — many identical bit-slice blocks with high locality; timing
//!   paths are symmetric across slices (which is exactly why the paper
//!   finds AES benefits least from timing-based partitioning),
//! * **LDPC** — a bipartite XOR-heavy graph with near-zero locality:
//!   global wiring dominates,
//! * **Netcard** — a large flat mix of medium-locality logic,
//! * **CPU** — heterogeneous blocks with very different logic depths
//!   (ALU/FPU deep, control shallow) plus SRAM cache macros.
//!
//! All generators are deterministic given a seed, and take a `scale`
//! factor so tests can run on tiny instances while benches use
//! paper-class sizes.
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//!
//! let netlist = Benchmark::Aes.generate(0.05, 42);
//! assert!(netlist.validate().is_ok());
//! assert!(netlist.gate_count() > 100);
//! ```

mod benchmarks;
mod builder;
mod scale;
mod spec;

pub use benchmarks::Benchmark;
pub use builder::generate;
pub use scale::{scale_netlist, scale_spec};
pub use spec::{BlockSpec, DesignSpec, SramSpec};
