use crate::builder::generate;
use crate::spec::{BlockSpec, DesignSpec, SramSpec};
use m3d_netlist::Netlist;
use std::fmt;

/// The four benchmark designs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 128-bit AES encryption core: cell-dominant, highly symmetric.
    Aes,
    /// LDPC encoder/decoder: extremely wire-dominant, global nets.
    Ldpc,
    /// Netcard: the largest netlist, flat simple logic.
    Netcard,
    /// Cortex-A7-class CPU: heterogeneous blocks plus cache SRAMs.
    Cpu,
}

impl Benchmark {
    /// All four benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Netcard,
        Benchmark::Aes,
        Benchmark::Ldpc,
        Benchmark::Cpu,
    ];

    /// Design specification at `scale = 1.0`.
    ///
    /// Gate counts are reduced from the paper's 150 k–250 k instances to
    /// keep full five-configuration sweeps tractable on a laptop; the
    /// *ratios* between designs and their structural signatures are
    /// preserved. Pass a larger `scale` to approach paper-class sizes.
    #[must_use]
    pub fn spec(self) -> DesignSpec {
        match self {
            Benchmark::Aes => DesignSpec {
                name: "aes".into(),
                primary_inputs: 256,
                primary_outputs: 128,
                blocks: vec![
                    // 32 identical bit-slice groups (4 bits each): symmetric
                    // functional paths, high locality, no XOR shortage.
                    BlockSpec::new("slice", 320, 14, 16, 0.92)
                        .with_xor_bias(0.35)
                        .replicated(32),
                    BlockSpec::new("keysched", 1400, 12, 128, 0.75).with_xor_bias(0.3),
                ],
                srams: vec![],
            },
            Benchmark::Ldpc => DesignSpec {
                name: "ldpc".into(),
                primary_inputs: 128,
                primary_outputs: 128,
                blocks: vec![
                    // Bipartite check/variable structure: shallow XOR logic
                    // with almost no locality -> chip-spanning wiring.
                    BlockSpec::new("vnode", 6000, 6, 1024, 0.05).with_xor_bias(0.6),
                    BlockSpec::new("cnode", 7000, 7, 512, 0.04).with_xor_bias(0.65),
                ],
                srams: vec![],
            },
            Benchmark::Netcard => DesignSpec {
                name: "netcard".into(),
                primary_inputs: 256,
                primary_outputs: 256,
                blocks: vec![
                    BlockSpec::new("rx", 7000, 13, 900, 0.55),
                    BlockSpec::new("tx", 7000, 13, 900, 0.55),
                    BlockSpec::new("dma", 6000, 15, 700, 0.5),
                    BlockSpec::new("csr", 4000, 9, 800, 0.6),
                    BlockSpec::new("buf", 6000, 11, 700, 0.45),
                ],
                srams: vec![],
            },
            Benchmark::Cpu => DesignSpec {
                name: "cpu".into(),
                primary_inputs: 128,
                primary_outputs: 128,
                blocks: vec![
                    BlockSpec::new("fetch", 2400, 12, 300, 0.6),
                    BlockSpec::new("decode", 3200, 16, 400, 0.6),
                    // Deep arithmetic: the timing-critical blocks whose
                    // cells the heterogeneous partitioner must keep on the
                    // fast tier.
                    BlockSpec::new("alu", 4000, 30, 350, 0.7),
                    BlockSpec::new("fpu", 3400, 36, 300, 0.72),
                    BlockSpec::new("lsu", 2600, 14, 350, 0.55),
                    BlockSpec::new("ctrl", 1800, 8, 450, 0.5),
                ],
                srams: vec![
                    SramSpec {
                        name: "icache0".into(),
                        bits: 4 * 1024,
                        inputs: 40,
                        outputs: 32,
                        block: 0,
                    },
                    SramSpec {
                        name: "icache1".into(),
                        bits: 4 * 1024,
                        inputs: 40,
                        outputs: 32,
                        block: 0,
                    },
                    SramSpec {
                        name: "dcache0".into(),
                        bits: 4 * 1024,
                        inputs: 40,
                        outputs: 32,
                        block: 4,
                    },
                    SramSpec {
                        name: "dcache1".into(),
                        bits: 4 * 1024,
                        inputs: 40,
                        outputs: 32,
                        block: 4,
                    },
                ],
            },
        }
    }

    /// Generates the benchmark netlist at the given `scale` and `seed`.
    ///
    /// `scale = 1.0` produces the default workspace size (roughly 12 k–30 k
    /// gates depending on the design); tests typically use `0.05`.
    #[must_use]
    pub fn generate(self, scale: f64, seed: u64) -> Netlist {
        generate(&self.spec().scaled(scale), seed)
    }

    /// Paper-reported characterization used in the writeup.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::Aes => "cell dominant, symmetric 128-bit datapath",
            Benchmark::Ldpc => "wire dominant, global interconnect",
            Benchmark::Netcard => "large, wire dominant flat logic",
            Benchmark::Cpu => "general purpose, 40% cache macros",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Benchmark::Aes => "aes",
            Benchmark::Ldpc => "ldpc",
            Benchmark::Netcard => "netcard",
            Benchmark::Cpu => "cpu",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_valid_netlists() {
        for b in Benchmark::ALL {
            let n = b.generate(0.04, 17);
            n.validate().unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(n.gate_count() > 50, "{b} too small");
        }
    }

    #[test]
    fn cpu_has_macros_others_do_not() {
        assert!(Benchmark::Cpu.generate(0.05, 1).macro_count() > 0);
        assert_eq!(Benchmark::Aes.generate(0.05, 1).macro_count(), 0);
        assert_eq!(Benchmark::Ldpc.generate(0.05, 1).macro_count(), 0);
    }

    #[test]
    fn netcard_is_the_largest() {
        let sizes: Vec<usize> = Benchmark::ALL
            .iter()
            .map(|b| b.spec().total_gates())
            .collect();
        // Order: netcard, aes, ldpc, cpu.
        assert!(sizes[0] > sizes[1]);
        assert!(sizes[0] > sizes[2]);
        assert!(sizes[0] > sizes[3]);
    }

    #[test]
    fn ldpc_has_lowest_locality() {
        let min_locality = |b: Benchmark| {
            b.spec()
                .blocks
                .iter()
                .map(|bl| bl.locality)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_locality(Benchmark::Ldpc) < 0.1);
        assert!(min_locality(Benchmark::Aes) > 0.7);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Benchmark::Netcard.to_string(), "netcard");
        assert_eq!(Benchmark::Cpu.to_string(), "cpu");
    }
}
