use crate::spec::DesignSpec;
use m3d_netlist::{CellId, MacroSpec, NetId, Netlist};
use m3d_tech::{CellKind, Drive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a gate-level netlist from a [`DesignSpec`], deterministically
/// for a given `seed`.
///
/// Construction guarantees:
///
/// * the result passes [`Netlist::validate`] (single drivers, all pins
///   connected, registers clocked, no combinational cycles),
/// * every block's combinational logic has the requested depth,
/// * cross-block connections follow each block's `locality`,
/// * dangling cones are reduced into primary outputs through XOR trees
///   (no dead logic), mirroring what synthesis would emit.
#[must_use]
pub fn generate(spec: &DesignSpec, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(spec.name.clone());

    // Clock.
    let clk_port = n.add_input("clk");
    let clk = n.add_net("clk", clk_port, 0);
    n.set_clock(clk);

    // Primary inputs.
    let mut global_pool: Vec<NetId> = Vec::new();
    for i in 0..spec.primary_inputs {
        let p = n.add_input(format!("in{i}"));
        global_pool.push(n.add_net(format!("in{i}"), p, 0));
    }

    // Pass 1: registers of every block instance, so later blocks can read
    // earlier blocks' state and vice versa through the global pool.
    struct BlockCtx {
        tag: u16,
        spec_idx: usize,
        regs: Vec<CellId>,
        reg_q: Vec<NetId>,
        sram_outs: Vec<NetId>,
    }
    let mut ctxs: Vec<BlockCtx> = Vec::new();
    for (spec_idx, b) in spec.blocks.iter().enumerate() {
        for rep in 0..b.replicate {
            let tag = n.add_block(format!("{}_{rep}", b.name));
            let mut regs = Vec::with_capacity(b.registers);
            let mut reg_q = Vec::with_capacity(b.registers);
            for r in 0..b.registers {
                let ff = n.add_gate(
                    format!("{}_{rep}_r{r}", b.name),
                    CellKind::Dff,
                    Drive::X1,
                    tag,
                );
                n.connect(clk, ff, 1);
                let q = n.add_net(format!("{}_{rep}_q{r}", b.name), ff, 0);
                regs.push(ff);
                reg_q.push(q);
                global_pool.push(q);
            }
            ctxs.push(BlockCtx {
                tag,
                spec_idx,
                regs,
                reg_q,
                sram_outs: Vec::new(),
            });
        }
    }

    // SRAM macros: outputs join their block's local pool and the globals.
    let mut sram_inputs: Vec<(CellId, usize, usize)> = Vec::new(); // (cell, n_inputs, ctx idx)
    for s in &spec.srams {
        let ctx_idx = ctxs.iter().position(|c| c.spec_idx == s.block).unwrap_or(0);
        let tag = ctxs[ctx_idx].tag;
        let id = n.add_macro(
            s.name.clone(),
            MacroSpec::sram(s.bits),
            s.inputs,
            s.outputs,
            tag,
        );
        n.connect(clk, id, s.inputs as u8);
        for o in 0..s.outputs {
            let q = n.add_net(format!("{}_o{o}", s.name), id, o as u8);
            ctxs[ctx_idx].sram_outs.push(q);
            global_pool.push(q);
        }
        sram_inputs.push((id, s.inputs, ctx_idx));
    }

    // Pass 2: combinational logic per block instance.
    let mut dangling: Vec<NetId> = Vec::new();
    let mut consumed = vec![false; 1_usize]; // grown lazily by mark()
    let mark = |consumed: &mut Vec<bool>, net: NetId| {
        if consumed.len() <= net.index() {
            consumed.resize(net.index() + 1, false);
        }
        consumed[net.index()] = true;
    };

    for ctx in &ctxs {
        let b = &spec.blocks[ctx.spec_idx];
        let mut local_pool: Vec<NetId> = ctx.reg_q.clone();
        local_pool.extend(&ctx.sram_outs);
        if local_pool.is_empty() {
            local_pool.push(global_pool[rng.gen_range(0..global_pool.len())]);
        }
        let mut prev_level: Vec<NetId> = local_pool.clone();
        let gates_per_level = (b.gates / b.depth).max(1);
        let mut made = 0usize;
        let mut level = 0usize;
        let mut all_outputs: Vec<NetId> = Vec::new();
        while made < b.gates {
            let count = gates_per_level.min(b.gates - made);
            let mut this_level = Vec::with_capacity(count);
            for g in 0..count {
                let kind = pick_kind(&mut rng, b.xor_bias);
                let id = n.add_gate(
                    format!("{}_g{}", n.block_name(ctx.tag), made + g),
                    kind,
                    Drive::X1,
                    ctx.tag,
                );
                for pin in 0..kind.input_count() {
                    let src =
                        pick_source(&mut rng, b.locality, &prev_level, &local_pool, &global_pool);
                    n.connect(src, id, pin as u8);
                    mark(&mut consumed, src);
                }
                let out = n.add_net(format!("{}_n{}", n.block_name(ctx.tag), made + g), id, 0);
                this_level.push(out);
                all_outputs.push(out);
            }
            made += count;
            // The next level draws mostly from this level (keeps depth).
            prev_level = this_level;
            level += 1;
            if level >= b.depth && made < b.gates {
                // Spread any remainder across the last level.
                level = b.depth - 1;
            }
        }
        // Close the state loop: register D pins take late-level signals.
        for (i, &ff) in ctx.regs.iter().enumerate() {
            let src = if all_outputs.is_empty() {
                global_pool[rng.gen_range(0..global_pool.len())]
            } else {
                // Bias toward the deepest signals.
                let lo = all_outputs.len().saturating_sub(all_outputs.len() / 3 + 1);
                all_outputs[rng.gen_range(lo..all_outputs.len())]
            };
            let _ = i;
            n.connect(src, ff, 0);
            mark(&mut consumed, src);
        }
        dangling.extend(all_outputs);
    }

    // SRAM data inputs from their block's logic (or globals).
    for (id, n_in, ctx_idx) in sram_inputs {
        let pool: Vec<NetId> = if ctxs[ctx_idx].reg_q.is_empty() {
            global_pool.clone()
        } else {
            ctxs[ctx_idx].reg_q.clone()
        };
        for pin in 0..n_in {
            let src = pool[rng.gen_range(0..pool.len())];
            n.connect(src, id, pin as u8);
            mark(&mut consumed, src);
        }
    }

    // Reduce genuinely dangling signals (gate cones, unread register
    // state, unused primary inputs) into the primary outputs via XOR
    // trees, so no logic is dead.
    let mut pool = dangling;
    for ctx in &ctxs {
        pool.extend(ctx.reg_q.iter().copied());
    }
    pool.extend(global_pool.iter().take(spec.primary_inputs).copied());
    let mut frontier: Vec<NetId> = pool
        .into_iter()
        .filter(|net| consumed.get(net.index()).copied() != Some(true))
        .collect();
    let mut tree_idx = 0usize;
    while frontier.len() > spec.primary_outputs.max(1) {
        let mut next = Vec::with_capacity(frontier.len() / 2 + 1);
        let mut it = frontier.chunks_exact(2);
        for pair in it.by_ref() {
            let x = n.add_gate(format!("collect_x{tree_idx}"), CellKind::Xor2, Drive::X1, 0);
            tree_idx += 1;
            n.connect(pair[0], x, 0);
            n.connect(pair[1], x, 1);
            next.push(n.add_net(format!("collect_n{tree_idx}"), x, 0));
        }
        next.extend(it.remainder().iter().copied());
        frontier = next;
    }
    for i in 0..spec.primary_outputs {
        let po = n.add_output(format!("out{i}"));
        let src = if frontier.is_empty() {
            global_pool[rng.gen_range(0..global_pool.len())]
        } else {
            frontier[i % frontier.len()]
        };
        n.connect(src, po, 0);
    }

    n
}

fn pick_kind(rng: &mut StdRng, xor_bias: f64) -> CellKind {
    if rng.gen_bool(xor_bias.clamp(0.0, 1.0)) {
        return if rng.gen_bool(0.5) {
            CellKind::Xor2
        } else {
            CellKind::Xnor2
        };
    }
    // Weighted mix approximating a synthesis result.
    let r = rng.gen_range(0.0..1.0);
    match r {
        x if x < 0.22 => CellKind::Nand2,
        x if x < 0.36 => CellKind::Nor2,
        x if x < 0.50 => CellKind::Inv,
        x if x < 0.58 => CellKind::And2,
        x if x < 0.66 => CellKind::Or2,
        x if x < 0.74 => CellKind::Aoi21,
        x if x < 0.80 => CellKind::Oai21,
        x if x < 0.86 => CellKind::Mux2,
        x if x < 0.91 => CellKind::Nand3,
        x if x < 0.95 => CellKind::Nor3,
        x if x < 0.98 => CellKind::Buf,
        _ => CellKind::Xor2,
    }
}

fn pick_source(
    rng: &mut StdRng,
    locality: f64,
    prev_level: &[NetId],
    local_pool: &[NetId],
    global_pool: &[NetId],
) -> NetId {
    let local = rng.gen_bool(locality.clamp(0.0, 1.0));
    if local && !prev_level.is_empty() {
        // Mostly the previous level (keeps the cone deep), sometimes any
        // local signal.
        if rng.gen_bool(0.8) {
            prev_level[rng.gen_range(0..prev_level.len())]
        } else {
            local_pool[rng.gen_range(0..local_pool.len())]
        }
    } else if !global_pool.is_empty() {
        global_pool[rng.gen_range(0..global_pool.len())]
    } else {
        prev_level[rng.gen_range(0..prev_level.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BlockSpec, DesignSpec};

    fn small_spec() -> DesignSpec {
        DesignSpec {
            name: "small".into(),
            primary_inputs: 8,
            primary_outputs: 8,
            blocks: vec![
                BlockSpec::new("a", 200, 10, 24, 0.8),
                BlockSpec::new("b", 150, 6, 16, 0.3).with_xor_bias(0.5),
            ],
            srams: vec![],
        }
    }

    #[test]
    fn generated_netlist_is_valid() {
        let n = generate(&small_spec(), 1);
        n.validate().expect("valid netlist");
        assert!(n.gate_count() >= 350);
        assert!(n.stats().registers == 40);
        assert!(n.clock().is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec(), 7);
        let b = generate(&small_spec(), 7);
        assert_eq!(a.cell_count(), b.cell_count());
        assert_eq!(a.net_count(), b.net_count());
        let stats_a = a.stats();
        let stats_b = b.stats();
        assert_eq!(stats_a.pins, stats_b.pins);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_spec(), 1);
        let b = generate(&small_spec(), 2);
        // Same register count (construction is count-driven) but a
        // different gate mix and wiring.
        assert_eq!(a.stats().registers, b.stats().registers);
        assert_ne!(a.stats().kind_histogram, b.stats().kind_histogram);
    }

    #[test]
    fn low_locality_produces_higher_fanout_spread() {
        let mut local = small_spec();
        local.blocks = vec![BlockSpec::new("l", 600, 8, 64, 0.95)];
        let mut global = small_spec();
        global.blocks = vec![BlockSpec::new("g", 600, 8, 64, 0.02)];
        let nl = generate(&local, 3);
        let ng = generate(&global, 3);
        // Global designs concentrate fanout on the shared pool.
        assert!(ng.stats().max_fanout >= nl.stats().max_fanout);
    }

    #[test]
    fn srams_are_wired_and_clocked() {
        let mut spec = small_spec();
        spec.srams = vec![crate::spec::SramSpec {
            name: "u_sram".into(),
            bits: 4096,
            inputs: 8,
            outputs: 8,
            block: 0,
        }];
        let n = generate(&spec, 5);
        n.validate().expect("valid");
        assert_eq!(n.macro_count(), 1);
    }

    #[test]
    fn no_dead_logic_remains() {
        let n = generate(&small_spec(), 11);
        // Every combinational net must have at least one sink.
        let mut dangling = 0;
        for (_, net) in n.nets() {
            if net.fanout() == 0 {
                dangling += 1;
            }
        }
        assert_eq!(dangling, 0, "{dangling} dangling nets");
    }
}
