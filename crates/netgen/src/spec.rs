/// Specification of one functional block of generated logic.
///
/// A block is a cluster of registers plus `depth` levels of combinational
/// logic. `locality` controls how often a gate input stays inside the
/// block (high locality → short wires, low → chip-spanning nets), and
/// `xor_bias` skews the gate mix toward XOR trees (parity-style logic).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Block name (becomes the hierarchy tag prefix).
    pub name: String,
    /// Combinational gates per instance.
    pub gates: usize,
    /// Logic depth in levels (sets the block's timing criticality).
    pub depth: usize,
    /// Registers per instance.
    pub registers: usize,
    /// Probability that a gate input comes from this block, `0..=1`.
    pub locality: f64,
    /// Extra weight on XOR/XNOR gates, `0..=1`.
    pub xor_bias: f64,
    /// Number of identical instances (AES bit-slices use 16–128).
    pub replicate: usize,
}

impl BlockSpec {
    /// Convenience constructor with single instance and no XOR bias.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        gates: usize,
        depth: usize,
        registers: usize,
        locality: f64,
    ) -> Self {
        BlockSpec {
            name: name.into(),
            gates,
            depth,
            registers,
            locality,
            xor_bias: 0.0,
            replicate: 1,
        }
    }

    /// Sets the XOR bias.
    #[must_use]
    pub fn with_xor_bias(mut self, bias: f64) -> Self {
        self.xor_bias = bias;
        self
    }

    /// Sets the replication count.
    #[must_use]
    pub fn replicated(mut self, count: usize) -> Self {
        self.replicate = count;
        self
    }

    /// Total gates across all replicas.
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.gates * self.replicate
    }
}

/// Specification of one SRAM macro.
#[derive(Debug, Clone, PartialEq)]
pub struct SramSpec {
    /// Instance name.
    pub name: String,
    /// Storage bits (sets physical size via [`m3d_netlist::MacroSpec::sram`]).
    pub bits: u64,
    /// Data/address input pins.
    pub inputs: usize,
    /// Data output pins.
    pub outputs: usize,
    /// Block the macro's interface logic lives in (index into
    /// [`DesignSpec::blocks`]).
    pub block: usize,
}

/// Full design specification consumed by [`crate::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Design name.
    pub name: String,
    /// Primary input count (excluding the clock).
    pub primary_inputs: usize,
    /// Primary output count.
    pub primary_outputs: usize,
    /// Functional blocks.
    pub blocks: Vec<BlockSpec>,
    /// SRAM macros.
    pub srams: Vec<SramSpec>,
}

impl DesignSpec {
    /// Total combinational gates across blocks (registers excluded).
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.blocks.iter().map(BlockSpec::total_gates).sum()
    }

    /// Scales every block's gate/register counts by `scale`, keeping at
    /// least a handful of gates per block so tiny test instances remain
    /// structurally valid.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        for b in &mut self.blocks {
            b.gates = ((b.gates as f64 * scale).round() as usize).max(8);
            b.registers = ((b.registers as f64 * scale).round() as usize).max(2);
            b.depth = b.depth.max(2);
        }
        for s in &mut self.srams {
            s.bits = ((s.bits as f64 * scale).round() as u64).max(256);
        }
        self.primary_inputs = ((self.primary_inputs as f64 * scale.sqrt()).round() as usize).max(4);
        self.primary_outputs =
            ((self.primary_outputs as f64 * scale.sqrt()).round() as usize).max(4);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_minimums() {
        let spec = DesignSpec {
            name: "t".into(),
            primary_inputs: 64,
            primary_outputs: 64,
            blocks: vec![BlockSpec::new("b", 1000, 10, 100, 0.5)],
            srams: vec![],
        };
        let tiny = spec.clone().scaled(0.001);
        assert!(tiny.blocks[0].gates >= 8);
        assert!(tiny.blocks[0].registers >= 2);
        let half = spec.scaled(0.5);
        assert_eq!(half.blocks[0].gates, 500);
    }

    #[test]
    fn replication_multiplies_totals() {
        let b = BlockSpec::new("s", 90, 16, 4, 0.9).replicated(128);
        assert_eq!(b.total_gates(), 11520);
    }
}
