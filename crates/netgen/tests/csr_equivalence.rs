#![recursion_limit = "1024"]
//! Equivalence proof for the flat [`Topology`] view: on every generator
//! family — the four paper benchmarks *and* the synthetic scale family —
//! the SoA/CSR/arena accessors must agree with the legacy AoS accessors
//! entry for entry, **in the same iteration order**, and the two views
//! must produce the same connectivity fingerprint. Iteration order is
//! part of the workspace's determinism contract: a kernel that swaps
//! `Vec<Cell>` chasing for CSR slices may not move a single bit.

use m3d_netgen::{scale_netlist, Benchmark};
use m3d_netlist::{NetId, Netlist, PinRef, Topology, NO_NET};
use proptest::prelude::*;

/// FNV-1a over a connectivity walk. The walk is written once and fed by
/// either view, so any ordering or content difference between the views
/// changes the hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Connectivity fingerprint from the **legacy** accessors.
fn legacy_fingerprint(n: &Netlist) -> u64 {
    let mut h = Fnv::new();
    for (_, cell) in n.cells() {
        for slot in cell.inputs.iter().chain(cell.outputs.iter()) {
            h.eat(slot.map_or(u64::MAX, |id| id.index() as u64));
        }
    }
    for (_, net) in n.nets() {
        h.eat(net.driver.map_or(u64::MAX, |p| p.cell.index() as u64));
        for s in &net.sinks {
            h.eat(s.cell.index() as u64);
            h.eat(u64::from(s.pin));
        }
        h.eat(u64::from(net.is_clock));
    }
    h.0
}

/// The same walk from the **flat** view.
fn topo_fingerprint(n: &Netlist, t: &Topology) -> u64 {
    let mut h = Fnv::new();
    for id in n.cell_ids() {
        for &raw in t.cell_pins(id) {
            h.eat(if raw == NO_NET {
                u64::MAX
            } else {
                u64::from(raw)
            });
        }
    }
    for id in n.net_ids() {
        h.eat(t.driver(id).map_or(u64::MAX, |p| p.cell.index() as u64));
        for (&c, &p) in t.sink_cells(id).iter().zip(t.sink_pins(id)) {
            h.eat(u64::from(c));
            h.eat(u64::from(p));
        }
        h.eat(u64::from(t.is_clock(id)));
    }
    h.0
}

/// Full element-wise agreement between the two views, iteration order
/// included.
fn assert_views_agree(n: &Netlist) {
    let t = n.topology();
    assert_eq!(t.cell_count(), n.cell_count());
    assert_eq!(t.net_count(), n.net_count());

    let mut arena = 0usize;
    for id in n.cell_ids() {
        let c = n.cell(id);
        assert_eq!(t.cell_name(id), c.name, "cell name");
        arena += c.name.len();
        let ins: Vec<Option<NetId>> = t
            .cell_inputs(id)
            .iter()
            .map(|&r| (r != NO_NET).then(|| NetId::from_index(r as usize)))
            .collect();
        assert_eq!(ins, c.inputs, "input slots of {}", c.name);
        let outs: Vec<Option<NetId>> = t
            .cell_outputs(id)
            .iter()
            .map(|&r| (r != NO_NET).then(|| NetId::from_index(r as usize)))
            .collect();
        assert_eq!(outs, c.outputs, "output slots of {}", c.name);
        assert_eq!(
            t.cell_pins(id).len(),
            c.inputs.len() + c.outputs.len(),
            "pin slot count of {}",
            c.name
        );
    }
    for id in n.net_ids() {
        let net = n.net(id);
        assert_eq!(t.net_name(id), net.name, "net name");
        arena += net.name.len();
        assert_eq!(t.driver(id), net.driver, "driver of {}", net.name);
        let sinks: Vec<PinRef> = t.sinks(id).collect();
        assert_eq!(sinks, net.sinks, "sink order of {}", net.name);
        assert_eq!(t.fanout(id), net.fanout());
        assert_eq!(t.degree(id), net.degree());
        assert_eq!(t.is_clock(id), net.is_clock);
    }
    assert_eq!(t.name_arena_bytes(), arena, "arena holds exactly the names");

    assert_eq!(
        t.combinational_order()
            .expect("generated designs are acyclic"),
        n.combinational_order()
            .expect("generated designs are acyclic"),
        "Kahn order must be reproduced bit for bit"
    );

    assert_eq!(
        legacy_fingerprint(n),
        topo_fingerprint(n, &t),
        "connectivity fingerprints diverge between the views"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Every paper benchmark, at randomized scale and seed.
    #[test]
    fn benchmark_families_agree(case in (0usize..4, 0.01f64..0.06, 0u64..1000)) {
        let (family, scale, seed) = case;
        let n = Benchmark::ALL[family].generate(scale, seed);
        n.validate().expect("generated netlists validate");
        assert_views_agree(&n);
    }

    // The synthetic scale family, at randomized target and seed.
    #[test]
    fn scale_family_agrees(case in (2_000usize..12_000, 0u64..1000)) {
        let (target, seed) = case;
        let n = scale_netlist(target, seed);
        n.validate().expect("scale netlists validate");
        assert_views_agree(&n);
    }
}

/// One deterministic big datapoint beyond proptest's comfortable size:
/// the smallest ladder rung of the throughput bench.
#[test]
fn ladder_rung_agrees_at_one_hundred_thousand_cells() {
    let n = scale_netlist(100_000, 7);
    assert!(n.cell_count() >= 100_000, "rung must clear 100k cells");
    assert_views_agree(&n);
}
