//! Vendored FxHash-style hasher for the delay cache shards.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed hash
//! built to resist collision attacks from untrusted keys. [`crate::DelayCache`]
//! keys are internal `(tier, kind, drive, slew_bits, load_bits)` tuples —
//! never attacker-controlled — so the DoS resistance buys nothing and the
//! per-lookup cost shows up directly in the STA inner loop (every arc
//! evaluation hashes a key, hit or miss).
//!
//! [`FxHasher`] is the classic Firefox/rustc multiply-rotate hash: fold
//! each word into the state with a rotate, xor and a multiplication by a
//! single odd constant. It is not keyed and makes no collision-resistance
//! promises; it is only used for in-process tables with trusted keys.
//! Hash values never escape the process and never enter any deterministic
//! manifest, so swapping the hasher cannot move an observable bit.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the FxHash family (64-bit golden-ratio-derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; see the module docs for the trust model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_unequal_keys_spread() {
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 1000, "no collisions on small dense keys");
    }

    #[test]
    fn byte_strings_with_shared_prefix_differ() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
        assert_ne!(hash_of(&b"".as_slice()), hash_of(&b"\0".as_slice()));
    }
}
