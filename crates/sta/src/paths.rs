use crate::context::TimingContext;
use crate::engine::StaResult;
use m3d_netlist::{CellClass, CellId};
use m3d_tech::Tier;

/// One stage of a timing path: a cell traversal plus the wire into it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStage {
    /// The cell.
    pub cell: CellId,
    /// The cell's tier.
    pub tier: Tier,
    /// Arc delay through the cell, ns (0 for the launch point itself).
    pub cell_delay_ns: f64,
    /// Wire delay into the cell, ns.
    pub wire_delay_ns: f64,
}

/// A reconstructed worst path from launch to capture.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Stages, launch first, capture endpoint last.
    pub stages: Vec<PathStage>,
    /// Path slack, ns.
    pub slack_ns: f64,
    /// Total arc (cell) delay along the path, ns.
    pub cell_delay_ns: f64,
    /// Total wire delay along the path, ns.
    pub wire_delay_ns: f64,
}

impl TimingPath {
    /// Number of cells on the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` for an empty path (no stages).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of cells on the given tier.
    #[must_use]
    pub fn cells_on(&self, tier: Tier) -> usize {
        self.stages.iter().filter(|s| s.tier == tier).count()
    }

    /// Total cell delay contributed by the given tier, ns.
    #[must_use]
    pub fn cell_delay_on(&self, tier: Tier) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.tier == tier)
            .map(|s| s.cell_delay_ns)
            .sum()
    }

    /// Number of tier crossings (MIVs) along the path.
    #[must_use]
    pub fn miv_count(&self) -> usize {
        self.stages
            .windows(2)
            .filter(|w| w[0].tier != w[1].tier)
            .count()
    }
}

/// Extracts the worst path ending at each of the `k` most critical
/// endpoints, worst first.
///
/// Backtracking follows [`StaResult::worst_input`], i.e. the input pin that
/// set each gate's arrival — the same path the forward pass timed.
#[must_use]
pub fn worst_paths(ctx: &TimingContext<'_>, result: &StaResult, k: usize) -> Vec<TimingPath> {
    result
        .critical_endpoints
        .iter()
        .take(k)
        .map(|&ep| backtrack(ctx, result, ep))
        .collect()
}

fn backtrack(ctx: &TimingContext<'_>, result: &StaResult, endpoint: CellId) -> TimingPath {
    let netlist = ctx.netlist;
    let mut rev_stages: Vec<PathStage> = Vec::new();

    // The endpoint itself (capture cell): no arc delay through it.
    let ep_slack = result.endpoint_slack[endpoint.index()];
    let slack = if ep_slack.is_nan() {
        result.slack[endpoint.index()]
    } else {
        ep_slack
    };

    // Find the worst data input of the endpoint.
    let ep_cell = netlist.cell(endpoint);
    let data_pins = match &ep_cell.class {
        CellClass::Gate { kind, .. } if kind.is_sequential() => ep_cell.inputs.len() - 1,
        CellClass::Macro(_) => ep_cell.inputs.len() - 1,
        _ => ep_cell.inputs.len(),
    };
    let mut worst: Option<(CellId, f64)> = None; // (driver, wire delay)
    for pin in 0..data_pins {
        let Some(Some(net)) = ep_cell.inputs.get(pin) else {
            continue;
        };
        if netlist.net(*net).is_clock {
            continue;
        }
        let Some(drv) = netlist.net(*net).driver else {
            continue;
        };
        let wire = ctx.parasitics.net(*net).wire_delay_ns;
        let at = result.arrival[drv.cell.index()] + wire;
        if worst.is_none_or(|(c, w)| at > result.arrival[c.index()] + w) {
            worst = Some((drv.cell, wire));
        }
    }
    rev_stages.push(PathStage {
        cell: endpoint,
        tier: ctx.tier(endpoint.index()),
        cell_delay_ns: 0.0,
        wire_delay_ns: worst.map_or(0.0, |(_, w)| w),
    });

    // Walk back through combinational gates to the launch point.
    let mut cursor = worst.map(|(c, _)| c);
    let mut guard = 0;
    while let Some(id) = cursor {
        guard += 1;
        if guard > 100_000 {
            break;
        }
        let cell = netlist.cell(id);
        let is_comb_gate =
            matches!(&cell.class, CellClass::Gate { kind, .. } if !kind.is_sequential());
        if !is_comb_gate {
            // Launch point (register Q / macro / PI).
            rev_stages.push(PathStage {
                cell: id,
                tier: ctx.tier(id.index()),
                cell_delay_ns: 0.0,
                wire_delay_ns: 0.0,
            });
            break;
        }
        let pin = result.worst_input[id.index()];
        let (prev, wire, arc) = if pin == u8::MAX {
            (None, 0.0, 0.0)
        } else {
            match cell.inputs.get(pin as usize).copied().flatten() {
                Some(net) => {
                    let wire = ctx.parasitics.net(net).wire_delay_ns;
                    let prev = netlist.net(net).driver.map(|p| p.cell);
                    let arc = prev.map_or(0.0, |p| {
                        (result.arrival[id.index()] - (result.arrival[p.index()] + wire)).max(0.0)
                    });
                    (prev, wire, arc)
                }
                None => (None, 0.0, 0.0),
            }
        };
        rev_stages.push(PathStage {
            cell: id,
            tier: ctx.tier(id.index()),
            cell_delay_ns: arc,
            wire_delay_ns: wire,
        });
        cursor = prev;
    }

    rev_stages.reverse();
    let cell_delay_ns = rev_stages.iter().map(|s| s.cell_delay_ns).sum();
    let wire_delay_ns = rev_stages.iter().map(|s| s.wire_delay_ns).sum();
    TimingPath {
        stages: rev_stages,
        slack_ns: slack,
        cell_delay_ns,
        wire_delay_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ClockSpec, Parasitics};
    use crate::engine::analyze;
    use m3d_netlist::Netlist;
    use m3d_tech::{CellKind, Drive, Library, TierStack};

    fn pipeline(depth: usize) -> Netlist {
        let mut n = Netlist::new("pipe");
        let clk_in = n.add_input("clk");
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let ff1 = n.add_gate("ff1", CellKind::Dff, Drive::X1, 0);
        n.connect(clk, ff1, 1);
        let d_in = n.add_input("d");
        let nd = n.add_net("nd", d_in, 0);
        n.connect(nd, ff1, 0);
        let mut prev = n.add_net("q1", ff1, 0);
        for i in 0..depth {
            let g = n.add_gate(format!("g{i}"), CellKind::Inv, Drive::X1, 0);
            n.connect(prev, g, 0);
            prev = n.add_net(format!("n{i}"), g, 0);
        }
        let ff2 = n.add_gate("ff2", CellKind::Dff, Drive::X1, 0);
        n.connect(prev, ff2, 0);
        n.connect(clk, ff2, 1);
        let q2 = n.add_net("q2", ff2, 0);
        let po = n.add_output("y");
        n.connect(q2, po, 0);
        n
    }

    #[test]
    fn path_reconstructs_full_chain() {
        let n = pipeline(12);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.2),
        };
        let r = analyze(&ctx);
        let paths = worst_paths(&ctx, &r, 1);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        // launch FF + 12 inverters + capture FF = 14 stages.
        assert_eq!(p.len(), 14, "stages: {:?}", p.stages.len());
        assert!(p.cell_delay_ns > 0.0);
        assert_eq!(p.miv_count(), 0);
        assert!((p.slack_ns - r.wns).abs() < 1e-9);
        // First stage is the launch FF, last is the capture FF.
        assert!(n.cell(p.stages[0].cell).is_sequential());
        assert!(n.cell(p.stages[p.len() - 1].cell).is_sequential());
    }

    #[test]
    fn hetero_path_counts_mivs_and_tier_delays() {
        let n = pipeline(10);
        let stack = TierStack::heterogeneous();
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        // Alternate tiers along the chain to force crossings.
        for (i, t) in tiers.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.3),
        };
        let r = analyze(&ctx);
        let p = &worst_paths(&ctx, &r, 1)[0];
        assert!(p.miv_count() > 3);
        assert!(p.cells_on(Tier::Top) > 0);
        assert!(p.cells_on(Tier::Bottom) > 0);
        let total = p.cell_delay_on(Tier::Top) + p.cell_delay_on(Tier::Bottom);
        assert!((total - p.cell_delay_ns).abs() < 1e-9);
        // Slow-tier inverters contribute more delay per cell.
        let top_cells = p.cells_on(Tier::Top) as f64;
        let bot_cells = p.cells_on(Tier::Bottom) as f64;
        if top_cells > 1.0 && bot_cells > 1.0 {
            let avg_top = p.cell_delay_on(Tier::Top) / top_cells;
            let avg_bot = p.cell_delay_on(Tier::Bottom) / bot_cells;
            assert!(avg_top > avg_bot, "slow tier avg {avg_top} vs {avg_bot}");
        }
    }

    #[test]
    fn k_paths_are_sorted_by_slack() {
        let n = m3d_netgen::Benchmark::Netcard.generate(0.02, 5);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.4),
        };
        let r = analyze(&ctx);
        let paths = worst_paths(&ctx, &r, 10);
        assert!(paths.len() <= 10);
        for w in paths.windows(2) {
            assert!(w[0].slack_ns <= w[1].slack_ns + 1e-9);
        }
    }
}
