//! Incremental timing: build the graph once, re-propagate only dirty cones.
//!
//! The flow's optimization loops (sizing, the repartitioning ECO, the
//! fmax ladder) call timing after every small batch of edits; a cold
//! [`crate::analyze`] rebuilds the levelized graph and re-propagates every
//! arc each time. [`Timer`] keeps the graph and all propagated arrays
//! alive between calls, diffs the [`TimingContext`] against its snapshot
//! on [`Timer::update`], and re-evaluates only:
//!
//! * **forward** (arrival/slew) — the fan-out cone of cells whose master
//!   changed (drive/tier) plus sinks of nets whose load or wire delay
//!   changed, walked level by level, stopping wherever the recomputed
//!   bits are unchanged;
//! * **endpoints** — endpoints whose data arrival or RAT inputs changed
//!   (a period-only edit dirties *every* endpoint RAT but **no** forward
//!   arc: arrivals never read the period);
//! * **backward** (required) — the fan-in cone of changed endpoint RATs,
//!   changed slews and changed sink arcs, walked in reverse level order.
//!
//! Scalar folds (WNS/TNS/violations, the sorted endpoint list and the
//! per-cell slack vector) are always re-run over all endpoints in fixed
//! cell-index order — exactly the cold pass's operation sequence.
//!
//! **Bit-identity contract.** Every re-evaluated entry is produced by the
//! same pure kernel the cold pass uses ([`crate::engine`]'s
//! `forward_gate` / `required_of_net` / endpoint and launch evaluations),
//! reading only already-finalized values; propagation stops when the
//! recomputed bits equal the stored bits, at which point every transitive
//! reader would also recompute identical bits by induction. The result of
//! `update()` is therefore bit-identical to a cold `analyze` of the same
//! context, at any thread count (dirty level slices reuse `m3d-par`'s
//! fixed-decomposition chunking).
//!
//! **Structural edits** (rewired nets, inserted buffers, changed
//! cell/net counts) change the levelization itself; the `Timer` detects
//! them from a per-net connectivity fingerprint and falls back to a full
//! rebuild — still through its arc cache, so even a rebuild after an ECO
//! undo is mostly memoized lookups.
//!
//! The `Timer` diffs drives, tiers, parasitics, clock latencies, the
//! period and net connectivity automatically — the edit notifications
//! ([`Timer::resize_cell`], [`Timer::swap_tier`], [`Timer::rewire_net`],
//! [`Timer::update_parasitics`], [`Timer::set_period`]) are conservative
//! hints that force re-evaluation even where a fingerprint would miss it
//! (they are cheap to over-use and never required for correctness in the
//! flow's edit vocabulary).

use crate::cache::DelayCache;
use crate::context::{ClockSpec, TimingContext};
use crate::engine::{
    analyze_full, backward_point, endpoint_point, forward_gate, launch_point, launch_required,
    levelize, net_load_ff, ArcMemo, Levels, StaResult,
};
use m3d_netlist::{CellClass, CellId, NetId, Netlist};
use m3d_tech::{CellKind, Drive, Tier};

/// Work counters of a [`Timer`], in units of "cell evaluations" (one
/// forward, backward, endpoint or launch kernel call each). A cold pass
/// costs [`Timer::full_pass_evals`] of these; the ratio of that (times
/// updates) to [`TimerStats::propagated_evals`] is the incremental win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStats {
    /// Full builds (first call, structural or global-constraint edits).
    pub full_rebuilds: u64,
    /// Incremental (dirty-cone) updates.
    pub incremental_updates: u64,
    /// Net-load recomputations.
    pub load_evals: u64,
    /// Launch-arrival evaluations (PI / register Q / macro output).
    pub launch_evals: u64,
    /// Forward gate evaluations (arrival + slew).
    pub forward_evals: u64,
    /// Endpoint RAT/arrival evaluations.
    pub endpoint_evals: u64,
    /// Backward required-time evaluations on combinational gates.
    pub backward_evals: u64,
    /// Required-time evaluations on launch cells.
    pub launch_required_evals: u64,
}

impl TimerStats {
    /// Total arc-propagation work performed (loads excluded): the number
    /// the acceptance criterion compares against `updates ×`
    /// [`Timer::full_pass_evals`].
    #[must_use]
    pub fn propagated_evals(&self) -> u64 {
        self.launch_evals
            + self.forward_evals
            + self.endpoint_evals
            + self.backward_evals
            + self.launch_required_evals
    }
}

/// One timing-relevant design change, as reported by a change journal.
///
/// This is the [`Timer`]'s trusted-notification vocabulary: where the
/// hint methods ([`Timer::resize_cell`] and friends) are *conservative
/// additions* to the engine's own signature diffing,
/// [`Timer::update_journaled`] takes a complete edit list and **skips**
/// the O(cells + nets) diff scans entirely. The caller (normally a
/// `DesignDb` change journal) guarantees the list covers every change
/// since the previous update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingEdit {
    /// `cell`'s drive strength changed.
    ResizeCell(CellId),
    /// `cell` moved to another tier.
    SwapTier(CellId),
    /// `net`'s RC model changed.
    NetModel(NetId),
    /// The clock period changed.
    Period,
    /// Per-cell clock latencies changed (CTS refinement).
    ClockLatency,
    /// The netlist structure changed (full rebuild).
    Structural,
}

/// What a journaled update still has to re-check itself (everything else
/// is vouched for by the journal).
#[derive(Debug, Clone, Copy)]
struct JournalScope {
    /// The journal reported a clock-latency edit; diff the latency vector.
    latency: bool,
}

/// Fixed timing role of a cell (immutable once the structure is built).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Combinational gate (including clock buffers): forward + backward.
    Comb,
    /// Sequential gate: launch on Q, endpoint on D.
    Seq,
    /// Macro: launch on outputs, endpoint on inputs.
    Mac,
    /// Primary input: launch only.
    Pi,
    /// Primary output: endpoint only.
    Po,
}

impl Role {
    fn of(class: &CellClass) -> Role {
        match class {
            CellClass::Gate { kind, .. } if kind.is_sequential() => Role::Seq,
            CellClass::Gate { .. } => Role::Comb,
            CellClass::Macro(_) => Role::Mac,
            CellClass::PrimaryInput => Role::Pi,
            CellClass::PrimaryOutput => Role::Po,
        }
    }

    fn is_endpoint(self) -> bool {
        matches!(self, Role::Seq | Role::Mac | Role::Po)
    }

    fn is_launch(self) -> bool {
        matches!(self, Role::Pi | Role::Seq | Role::Mac)
    }
}

/// Below this many dirty cells in one level/phase the incremental passes
/// stay sequential even when the design qualifies for threading — the
/// fixed-decomposition scatter is thread-count invariant either way, so
/// this is purely a spawn-overhead knob, never a correctness one.
const INCR_PAR_MIN: usize = 64;

/// Everything the `Timer` snapshots between updates.
struct State {
    levels: Levels,
    roles: Vec<Role>,
    cell_count: usize,
    net_count: usize,
    /// Indices of endpoint cells, ascending (the scalar-fold order).
    endpoint_cells: Vec<u32>,
    // ---- input fingerprints -------------------------------------------
    clock: ClockSpec,
    gate_sig: Vec<Option<(CellKind, Drive)>>,
    tier_sig: Vec<Tier>,
    model_sig: Vec<crate::context::NetModel>,
    net_sig: Vec<u64>,
    stack_addr: usize,
    // ---- propagated arrays --------------------------------------------
    net_load: Vec<f64>,
    endpoint_rat: Vec<f64>,
    result: StaResult,
    /// Memoized backward arc delays (see [`ArcMemo`]): captured lazily by
    /// the sequential backward passes, invalidated by the seed phases
    /// whenever a stored arc's inputs (driver slew, sink master/tier,
    /// sink output load) change. Makes period-only updates — the fmax
    /// ladder — a pure min-fold replay with zero table lookups.
    arc_memo: ArcMemo,
    // ---- dirty scratch (cleared after every update) --------------------
    dirty_fwd: Vec<bool>,
    dirty_bwd: Vec<bool>,
    dirty_ep: Vec<bool>,
    dirty_launch: Vec<bool>,
    dirty_load: Vec<bool>,
    /// Pre-counted cost of one cold pass, in eval units.
    full_pass: u64,
}

/// Connectivity fingerprint of one net (driver + ordered sink pins +
/// clock flag). Integer-only, so it is stable across thread counts and
/// cheap enough to re-hash every update.
fn net_signature(netlist: &Netlist, id: NetId) -> u64 {
    const FNV: u64 = 0x0000_0100_0000_01B3;
    let net = netlist.net(id);
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    h = (h ^ net.driver.map_or(u64::MAX, |p| {
        (u64::from(p.cell.index() as u32) << 8) | u64::from(p.pin)
    }))
    .wrapping_mul(FNV);
    h = (h ^ u64::from(net.is_clock)).wrapping_mul(FNV);
    for sink in &net.sinks {
        h = (h ^ ((u64::from(sink.cell.index() as u32) << 8) | u64::from(sink.pin)))
            .wrapping_mul(FNV);
    }
    h
}

fn gate_signature(class: &CellClass) -> Option<(CellKind, Drive)> {
    match class {
        CellClass::Gate { kind, drive } => Some((*kind, *drive)),
        _ => None,
    }
}

/// A persistent incremental timing engine.
///
/// Feed every evaluation through [`Timer::update`]; the first call (and
/// any call after a structural edit) performs a full build, subsequent
/// calls re-propagate only the dirty cones. Results are bit-identical to
/// [`crate::analyze`] on the same context at any thread count.
///
/// One `Timer` tracks one design evolution: the netlist/stack/parasitics
/// behind the contexts passed to `update` must describe the same design
/// being edited in place (the flow's sizing and ECO loops do exactly
/// this). Pointer-unstable callers lose performance (spurious rebuilds),
/// never correctness.
#[derive(Default)]
pub struct Timer {
    state: Option<State>,
    stats: TimerStats,
    cache: DelayCache,
    pending_cells: Vec<CellId>,
    pending_nets: Vec<NetId>,
    pending_period: bool,
    pending_structural: bool,
    /// `Some` while an [`Timer::update_journaled`] call is in flight: the
    /// pending sets are a *complete* description of the changes, so the
    /// signature-diff scans are skipped.
    journaled: Option<JournalScope>,
}

impl Timer {
    /// A fresh timer; the first [`Timer::update`] performs the full build.
    #[must_use]
    pub fn new() -> Self {
        Timer::default()
    }

    /// Hint: `cell`'s drive strength changed (e.g. `Netlist::set_drive`).
    pub fn resize_cell(&mut self, cell: CellId) {
        self.pending_cells.push(cell);
    }

    /// Hint: `cell` moved to another tier (its library binding changed).
    pub fn swap_tier(&mut self, cell: CellId) {
        self.pending_cells.push(cell);
    }

    /// Hint: `net`'s parasitics changed.
    pub fn update_parasitics(&mut self, net: NetId) {
        self.pending_nets.push(net);
    }

    /// Hint: `net`'s pin membership changed. Structural — the next
    /// [`Timer::update`] rebuilds the levelization (through the warm arc
    /// cache).
    pub fn rewire_net(&mut self, _net: NetId) {
        self.pending_structural = true;
    }

    /// Hint: a buffer was inserted (new cells and nets). Structural, like
    /// [`Timer::rewire_net`].
    pub fn insert_buffer(&mut self) {
        self.pending_structural = true;
    }

    /// Hint: the clock period changed. Dirties every endpoint RAT but no
    /// forward arc (arrivals never read the period); the next update is a
    /// backward-only re-propagation.
    pub fn set_period(&mut self, _period_ns: f64) {
        self.pending_period = true;
    }

    /// Drops all incremental state; the next update is a full build.
    pub fn invalidate(&mut self) {
        self.state = None;
        self.pending_cells.clear();
        self.pending_nets.clear();
        self.pending_period = false;
        self.pending_structural = false;
    }

    /// Work counters accumulated over the timer's lifetime.
    #[must_use]
    pub fn stats(&self) -> TimerStats {
        self.stats
    }

    /// The shared NLDM arc cache (for hit/miss reporting).
    #[must_use]
    pub fn delay_cache(&self) -> &DelayCache {
        &self.cache
    }

    /// Cost of one cold pass in the units of [`TimerStats`], for speedup
    /// accounting. Zero before the first update.
    #[must_use]
    pub fn full_pass_evals(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.full_pass)
    }

    /// The most recent result, if any update has run.
    #[must_use]
    pub fn result(&self) -> Option<&StaResult> {
        self.state.as_ref().map(|s| &s.result)
    }

    /// Brings the timing database up to date with `ctx` and returns the
    /// result — bit-identical to `analyze(ctx)` at any thread count.
    pub fn update(&mut self, ctx: &TimingContext<'_>) -> StaResult {
        let rebuild = self.pending_structural || !self.matches_structure(ctx);
        if rebuild {
            self.rebuild(ctx);
        } else {
            self.incremental(ctx);
        }
        self.pending_cells.clear();
        self.pending_nets.clear();
        self.pending_period = false;
        self.pending_structural = false;
        self.state.as_ref().expect("state built").result.clone()
    }

    /// Journal-driven update: brings the timing database up to date with
    /// `ctx` given a **complete** list of the changes since the previous
    /// update, and returns the result — bit-identical to `analyze(ctx)`
    /// at any thread count, exactly like [`Timer::update`].
    ///
    /// Unlike `update`, which re-derives the edit set by signature
    /// diffing (O(cells + nets) scans per call), this trusts the journal:
    /// only the listed cells/nets are re-fingerprinted, the per-net
    /// connectivity scan is skipped, and the clock-latency vector is only
    /// diffed when the journal says so. An empty `edits` list re-checks
    /// nothing but the O(1) fields (counts, stack identity, period and
    /// global clock constants — those stay checked because they are cheap
    /// and their drift would otherwise corrupt results silently).
    ///
    /// The caller contract: every change to the netlist, tiers,
    /// parasitics or clock latencies since the last update appears in
    /// `edits` (duplicates and over-reporting are harmless). The flow
    /// upholds this by generating `edits` from the `DesignDb` change
    /// journal. A violated contract loses the bit-identity guarantee;
    /// when unsure, use [`Timer::update`].
    pub fn update_journaled(&mut self, ctx: &TimingContext<'_>, edits: &[TimingEdit]) -> StaResult {
        let mut latency = false;
        for edit in edits {
            match *edit {
                TimingEdit::ResizeCell(c) | TimingEdit::SwapTier(c) => self.pending_cells.push(c),
                TimingEdit::NetModel(n) => self.pending_nets.push(n),
                TimingEdit::Period => self.pending_period = true,
                TimingEdit::ClockLatency => latency = true,
                TimingEdit::Structural => self.pending_structural = true,
            }
        }
        self.journaled = Some(JournalScope { latency });
        let result = self.update(ctx);
        self.journaled = None;
        result
    }

    /// `true` when the snapshot exists and the context has the same
    /// structure and global constraints (so an incremental pass is valid).
    fn matches_structure(&self, ctx: &TimingContext<'_>) -> bool {
        let Some(s) = &self.state else { return false };
        if s.cell_count != ctx.netlist.cell_count() || s.net_count != ctx.netlist.net_count() {
            return false;
        }
        if s.stack_addr != std::ptr::from_ref(ctx.stack) as usize {
            return false;
        }
        // Global clock fields feed defaults everywhere (slews, PO loads,
        // virtual I/O); changes are rare and coarse, so rebuild.
        if s.clock.input_slew_ns != ctx.clock.input_slew_ns
            || s.clock.virtual_io_latency_ns != ctx.clock.virtual_io_latency_ns
            || s.clock.output_load_ff != ctx.clock.output_load_ff
        {
            return false;
        }
        if self.journaled.is_some() {
            // The journal vouches for connectivity: absent a `Structural`
            // edit (checked by the caller via `pending_structural`), the
            // per-net fingerprint scan is guaranteed to find nothing.
            return true;
        }
        (0..s.net_count).all(|k| s.net_sig[k] == net_signature(ctx.netlist, NetId::from_index(k)))
    }

    /// Full build: levelize, cold-propagate (through the arc cache) and
    /// snapshot every fingerprint.
    fn rebuild(&mut self, ctx: &TimingContext<'_>) {
        let netlist = ctx.netlist;
        let n = netlist.cell_count();
        let nets = netlist.net_count();
        if self
            .state
            .as_ref()
            .is_some_and(|s| s.stack_addr != std::ptr::from_ref(ctx.stack) as usize)
        {
            // A different library binding invalidates memoized arcs.
            self.cache.clear();
        }
        let levels = levelize(netlist);
        let pass = analyze_full(ctx, &levels, Some(&self.cache));

        let roles: Vec<Role> = netlist.cells().map(|(_, c)| Role::of(&c.class)).collect();
        let endpoint_cells: Vec<u32> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_endpoint())
            .map(|(i, _)| i as u32)
            .collect();
        let comb: u64 = levels.comb_count() as u64;
        let launches = roles.iter().filter(|r| r.is_launch()).count() as u64;
        let endpoints = endpoint_cells.len() as u64;
        let full_pass = launches + comb + endpoints + comb + launches;

        self.stats.full_rebuilds += 1;
        self.stats.load_evals += nets as u64;
        self.stats.launch_evals += launches;
        self.stats.forward_evals += comb;
        self.stats.endpoint_evals += endpoints;
        self.stats.backward_evals += comb;
        self.stats.launch_required_evals += launches;

        self.state = Some(State {
            roles,
            cell_count: n,
            net_count: nets,
            endpoint_cells,
            clock: ctx.clock.clone(),
            gate_sig: netlist
                .cells()
                .map(|(_, c)| gate_signature(&c.class))
                .collect(),
            tier_sig: ctx.tiers.to_vec(),
            model_sig: (0..nets)
                .map(|k| ctx.parasitics.net(NetId::from_index(k)))
                .collect(),
            net_sig: (0..nets)
                .map(|k| net_signature(netlist, NetId::from_index(k)))
                .collect(),
            stack_addr: std::ptr::from_ref(ctx.stack) as usize,
            net_load: pass.net_load,
            endpoint_rat: pass.endpoint_rat,
            result: pass.result,
            arc_memo: ArcMemo::new(netlist),
            dirty_fwd: vec![false; n],
            dirty_bwd: vec![false; n],
            dirty_ep: vec![false; n],
            dirty_launch: vec![false; n],
            dirty_load: vec![false; nets],
            levels,
            full_pass,
        });
    }

    /// Dirty-cone re-propagation. See the module docs for the
    /// invalidation rules; phases mirror the cold pass's order exactly
    /// (loads → launch arrivals → forward by level → endpoints →
    /// backward by reverse level → launch required → scalar folds).
    #[allow(clippy::too_many_lines)]
    fn incremental(&mut self, ctx: &TimingContext<'_>) {
        let s = self.state.as_mut().expect("matches_structure checked");
        let netlist = ctx.netlist;
        let n = s.cell_count;
        let threads = m3d_par::resolve(0);
        let parallel = threads > 1 && n >= m3d_par::PAR_THRESHOLD;
        self.stats.incremental_updates += 1;

        // ---- seed detection (journal, or auto-diff + explicit hints) ----
        // In journaled mode the pending sets are complete, so the O(nets)
        // model diff and the O(cells) master diff are skipped; only the
        // journaled items re-fingerprint (keeping the signatures valid for
        // a later non-journaled update). Journaled seeds dirty
        // conservatively — both the load and the wire-delay cone of every
        // reported net — which can only over-propagate, never change bits.
        let journaled = self.journaled;
        let mut wire_delay_nets: Vec<u32> = Vec::new();
        if journaled.is_none() {
            for k in 0..s.net_count {
                let id = NetId::from_index(k);
                let new = ctx.parasitics.net(id);
                let old = s.model_sig[k];
                if new != old {
                    s.model_sig[k] = new;
                    if netlist.net(id).is_clock {
                        continue; // clock-net parasitics are never read
                    }
                    if new.wire_cap_ff != old.wire_cap_ff {
                        s.dirty_load[k] = true;
                    }
                    if new.wire_delay_ns != old.wire_delay_ns {
                        wire_delay_nets.push(k as u32);
                    }
                }
            }
        }
        for &id in &self.pending_nets {
            let k = id.index();
            s.model_sig[k] = ctx.parasitics.net(id);
            if !netlist.net(id).is_clock {
                s.dirty_load[k] = true;
                if !wire_delay_nets.contains(&(k as u32)) {
                    wire_delay_nets.push(k as u32);
                }
            }
        }

        let mut master_cells: Vec<u32> = Vec::new();
        if journaled.is_none() {
            for (id, cell) in netlist.cells() {
                let i = id.index();
                let sig = gate_signature(&cell.class);
                let tier = ctx.tiers[i];
                if s.gate_sig[i] != sig || s.tier_sig[i] != tier {
                    s.gate_sig[i] = sig;
                    s.tier_sig[i] = tier;
                    master_cells.push(i as u32);
                }
            }
        } else {
            for &id in &self.pending_cells {
                let i = id.index();
                s.gate_sig[i] = gate_signature(&netlist.cell(id).class);
                s.tier_sig[i] = ctx.tiers[i];
            }
        }
        for &id in &self.pending_cells {
            if !master_cells.contains(&(id.index() as u32)) {
                master_cells.push(id.index() as u32);
            }
        }
        master_cells.sort_unstable();

        for &ci in &master_cells {
            let i = ci as usize;
            let id = CellId::from_index(i);
            match s.roles[i] {
                // Changed delay tables: re-derive the gate's own arrival
                // and the arcs into it (its fan-in's required times —
                // whose memoized arcs read this gate's master).
                Role::Comb => {
                    s.dirty_fwd[i] = true;
                    mark_fanin(netlist, &mut s.dirty_bwd, id);
                    invalidate_input_arcs(netlist, &mut s.arc_memo, id);
                }
                // Changed clk→Q and setup.
                Role::Seq => {
                    s.dirty_launch[i] = true;
                    s.dirty_ep[i] = true;
                }
                // Macros, ports: no library binding, nothing to re-time.
                Role::Mac | Role::Pi | Role::Po => {}
            }
            // A gate's input capacitance sits in its input nets' loads.
            if matches!(s.roles[i], Role::Comb | Role::Seq) {
                for net in netlist.cell(id).input_nets() {
                    if !netlist.net(net).is_clock {
                        s.dirty_load[net.index()] = true;
                    }
                }
            }
        }

        // Per-cell clock-latency edits (CTS refinements).
        let check_latency = journaled.is_none_or(|j| j.latency);
        let latency_changed = check_latency && s.clock.latency_ns != ctx.clock.latency_ns;
        if latency_changed {
            for i in 0..n {
                if matches!(s.roles[i], Role::Seq | Role::Mac)
                    && s.clock.latency(i) != ctx.clock.latency(i)
                {
                    s.dirty_launch[i] = true;
                    s.dirty_ep[i] = true;
                }
            }
            s.clock.latency_ns.clone_from(&ctx.clock.latency_ns);
        }

        // Period edit: every endpoint RAT moves, no arrival does.
        if self.pending_period || s.clock.period_ns != ctx.clock.period_ns {
            s.clock.period_ns = ctx.clock.period_ns;
            for &e in &s.endpoint_cells {
                s.dirty_ep[e as usize] = true;
            }
        }

        // ---- phase A: net loads -----------------------------------------
        for k in 0..s.net_count {
            if !s.dirty_load[k] {
                continue;
            }
            let id = NetId::from_index(k);
            self.stats.load_evals += 1;
            let load = net_load_ff(ctx, id);
            if load.to_bits() == s.net_load[k].to_bits() {
                continue;
            }
            s.net_load[k] = load;
            // The driver's arcs and its fan-in's arcs into it read this
            // load.
            if let Some(drv) = netlist.net(id).driver {
                let d = drv.cell.index();
                match s.roles[d] {
                    Role::Comb => {
                        s.dirty_fwd[d] = true;
                        mark_fanin(netlist, &mut s.dirty_bwd, drv.cell);
                        // Memoized arcs into the driver read this load.
                        invalidate_input_arcs(netlist, &mut s.arc_memo, drv.cell);
                    }
                    Role::Seq => {
                        s.dirty_launch[d] = true;
                        mark_fanin(netlist, &mut s.dirty_bwd, drv.cell);
                    }
                    _ => {}
                }
            }
        }
        // Wire-delay edits: sinks re-time forward, the driver re-times
        // backward (required subtracts the wire), endpoint sinks re-read
        // their data arrival.
        for &k in &wire_delay_nets {
            let id = NetId::from_index(k as usize);
            let net = netlist.net(id);
            for sink in &net.sinks {
                let j = sink.cell.index();
                match s.roles[j] {
                    Role::Comb => s.dirty_fwd[j] = true,
                    r if r.is_endpoint() => s.dirty_ep[j] = true,
                    _ => {}
                }
            }
            if let Some(drv) = net.driver {
                s.dirty_bwd[drv.cell.index()] = true;
            }
        }

        // ---- phase B: launch arrivals -----------------------------------
        for i in 0..n {
            if !s.dirty_launch[i] {
                continue;
            }
            let id = CellId::from_index(i);
            self.stats.launch_evals += 1;
            let Some((at, out_slew)) = launch_point(ctx, &s.net_load, id, Some(&self.cache)) else {
                continue;
            };
            let at_changed = at.to_bits() != s.result.arrival[i].to_bits();
            let slew_changed = out_slew.to_bits() != s.result.slew[i].to_bits();
            if !at_changed && !slew_changed {
                continue;
            }
            s.result.arrival[i] = at;
            s.result.slew[i] = out_slew;
            mark_sinks(netlist, &s.roles, &mut s.dirty_fwd, &mut s.dirty_ep, id);
            if slew_changed {
                // The launch cell's own required time reads its slew.
                s.dirty_bwd[i] = true;
                invalidate_output_arcs(netlist, &mut s.arc_memo, id);
            }
        }

        // ---- phase C: forward, by ascending level -----------------------
        // Dirty gates are collected as *order positions* so each one reads
        // its fanin arcs straight out of the CSR arc arrays.
        for li in 0..s.levels.level_count() {
            let dirty: Vec<usize> = s
                .levels
                .level_range(li)
                .filter(|&k| s.dirty_fwd[s.levels.cell_at(k).index()])
                .collect();
            if dirty.is_empty() {
                continue;
            }
            self.stats.forward_evals += dirty.len() as u64;
            let results: Vec<(f64, u8, f64)> = {
                let arrival = &s.result.arrival;
                let slew = &s.result.slew;
                let net_load = &s.net_load;
                let levels = &s.levels;
                let cache = Some(&self.cache);
                if parallel && dirty.len() >= INCR_PAR_MIN {
                    m3d_par::par_map(threads, &dirty, |_, &k| {
                        forward_gate(ctx, net_load, arrival, slew, levels, k, cache)
                    })
                } else {
                    dirty
                        .iter()
                        .map(|&k| forward_gate(ctx, net_load, arrival, slew, levels, k, cache))
                        .collect()
                }
            };
            for (&k, (at, pin, out_slew)) in dirty.iter().zip(results) {
                let id = s.levels.cell_at(k);
                let i = id.index();
                s.result.worst_input[i] = pin;
                let at_changed = at.to_bits() != s.result.arrival[i].to_bits();
                let slew_changed = out_slew.to_bits() != s.result.slew[i].to_bits();
                if !at_changed && !slew_changed {
                    continue;
                }
                s.result.arrival[i] = at;
                s.result.slew[i] = out_slew;
                mark_sinks(netlist, &s.roles, &mut s.dirty_fwd, &mut s.dirty_ep, id);
                if slew_changed {
                    s.dirty_bwd[i] = true;
                    invalidate_output_arcs(netlist, &mut s.arc_memo, id);
                }
            }
        }

        // ---- phase D: endpoints -----------------------------------------
        let ep_dirty: Vec<u32> = s
            .endpoint_cells
            .iter()
            .copied()
            .filter(|&e| s.dirty_ep[e as usize])
            .collect();
        if !ep_dirty.is_empty() {
            self.stats.endpoint_evals += ep_dirty.len() as u64;
            let results: Vec<Option<(f64, f64, bool)>> = {
                let arrival = &s.result.arrival;
                if parallel && ep_dirty.len() >= INCR_PAR_MIN {
                    m3d_par::par_map(threads, &ep_dirty, |_, &e| {
                        endpoint_point(ctx, arrival, e as usize)
                    })
                } else {
                    ep_dirty
                        .iter()
                        .map(|&e| endpoint_point(ctx, arrival, e as usize))
                        .collect()
                }
            };
            for (&e, ev) in ep_dirty.iter().zip(results) {
                let i = e as usize;
                let (rat, worst_at, is_po) = ev.expect("endpoint role implies endpoint view");
                let rat_changed = rat.to_bits() != s.endpoint_rat[i].to_bits();
                s.endpoint_rat[i] = rat;
                s.result.endpoint_slack[i] = rat - worst_at;
                if is_po {
                    s.result.arrival[i] = worst_at;
                    s.result.required[i] = rat;
                }
                if rat_changed {
                    // Fan-in required times read this endpoint's RAT.
                    mark_fanin(netlist, &mut s.dirty_bwd, CellId::from_index(i));
                }
            }
        }

        // ---- phase E: backward, by descending level ---------------------
        for li in (0..s.levels.level_count()).rev() {
            let dirty: Vec<CellId> = s
                .levels
                .level(li)
                .iter()
                .copied()
                .filter(|id| s.dirty_bwd[id.index()])
                .collect();
            if dirty.is_empty() {
                continue;
            }
            self.stats.backward_evals += dirty.len() as u64;
            let results: Vec<Option<f64>> = {
                let required = &s.result.required;
                let slew = &s.result.slew;
                let net_load = &s.net_load;
                let endpoint_rat = &s.endpoint_rat;
                let cache = Some(&self.cache);
                if parallel && dirty.len() >= INCR_PAR_MIN {
                    // Workers share the memo read-only; nets whose memo is
                    // stale re-derive through the arc cache instead of
                    // capturing (a `&mut` per worker would race).
                    m3d_par::par_map(threads, &dirty, |_, &id| {
                        backward_point(ctx, net_load, slew, required, endpoint_rat, id, cache, None)
                    })
                } else {
                    let memo = &mut s.arc_memo;
                    dirty
                        .iter()
                        .map(|&id| {
                            backward_point(
                                ctx,
                                net_load,
                                slew,
                                required,
                                endpoint_rat,
                                id,
                                cache,
                                Some(&mut *memo),
                            )
                        })
                        .collect()
                }
            };
            for (&id, rat) in dirty.iter().zip(results) {
                let i = id.index();
                let Some(rat) = rat else { continue };
                if rat.to_bits() == s.result.required[i].to_bits() {
                    continue;
                }
                s.result.required[i] = rat;
                mark_fanin(netlist, &mut s.dirty_bwd, id);
            }
        }

        // ---- phase F: launch required -----------------------------------
        for i in 0..n {
            if !s.dirty_bwd[i] || !s.roles[i].is_launch() {
                continue;
            }
            self.stats.launch_required_evals += 1;
            if let Some(rat) = launch_required(
                ctx,
                &s.net_load,
                s.result.slew[i],
                &s.result.required,
                &s.endpoint_rat,
                i,
                Some(&self.cache),
                Some(&mut s.arc_memo),
            ) {
                s.result.required[i] = rat;
            }
        }

        // ---- phase G: scalar folds (always full, fixed order) -----------
        for i in 0..n {
            let launch = s.result.required[i] - s.result.arrival[i];
            s.result.slack[i] = if s.result.endpoint_slack[i].is_nan() {
                launch
            } else {
                launch.min(s.result.endpoint_slack[i])
            };
        }
        let mut endpoints_v: Vec<(CellId, f64)> = Vec::with_capacity(s.endpoint_cells.len());
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut violations = 0usize;
        for &e in &s.endpoint_cells {
            let i = e as usize;
            let slack = s.result.endpoint_slack[i];
            if slack < wns {
                wns = slack;
            }
            if slack < 0.0 {
                tns += slack;
                violations += 1;
            }
            endpoints_v.push((CellId::from_index(i), slack));
        }
        if endpoints_v.is_empty() {
            wns = 0.0;
        }
        endpoints_v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        s.result.critical_endpoints = endpoints_v.iter().map(|&(id, _)| id).collect();
        s.result.wns = wns;
        s.result.tns = tns;
        s.result.violations = violations;
        s.result.endpoints = endpoints_v.len();
        s.result.period_ns = ctx.clock.period_ns;

        // ---- reset scratch ----------------------------------------------
        s.dirty_fwd.fill(false);
        s.dirty_bwd.fill(false);
        s.dirty_ep.fill(false);
        s.dirty_launch.fill(false);
        s.dirty_load.fill(false);
    }
}

/// Marks the sinks of every non-clock output net of `id`: combinational
/// sinks must re-time forward, endpoint sinks must re-read their data
/// arrival.
fn mark_sinks(
    netlist: &Netlist,
    roles: &[Role],
    dirty_fwd: &mut [bool],
    dirty_ep: &mut [bool],
    id: CellId,
) {
    for net in netlist.cell(id).output_nets() {
        if netlist.net(net).is_clock {
            continue;
        }
        for sink in &netlist.net(net).sinks {
            let j = sink.cell.index();
            match roles[j] {
                Role::Comb => dirty_fwd[j] = true,
                r if r.is_endpoint() => dirty_ep[j] = true,
                _ => {}
            }
        }
    }
}

/// Invalidates the memoized arcs of `id`'s non-clock input nets: their
/// stored delays read `id`'s master binding and output load. Always
/// paired with a `mark_fanin` on the same nets' drivers, so the next
/// backward pass re-derives and re-captures them.
fn invalidate_input_arcs(netlist: &Netlist, memo: &mut ArcMemo, id: CellId) {
    for slot in &netlist.cell(id).inputs {
        let Some(net) = slot else { continue };
        if !netlist.net(*net).is_clock {
            memo.invalidate(net.index());
        }
    }
}

/// Invalidates the memoized arcs of `id`'s non-clock output nets: their
/// stored delays read `id`'s output slew.
fn invalidate_output_arcs(netlist: &Netlist, memo: &mut ArcMemo, id: CellId) {
    for net in netlist.cell(id).output_nets() {
        if !netlist.net(net).is_clock {
            memo.invalidate(net.index());
        }
    }
}

/// Marks the drivers of `id`'s non-clock input nets for backward
/// re-evaluation (their required times read arcs into / the RAT of `id`).
/// Drivers that are launch cells are picked up by the launch-required
/// pass; the root clock net is skipped because launch required times
/// never traverse clock nets.
fn mark_fanin(netlist: &Netlist, dirty_bwd: &mut [bool], id: CellId) {
    let cell = netlist.cell(id);
    for slot in &cell.inputs {
        let Some(net) = slot else { continue };
        if netlist.net(*net).is_clock {
            continue;
        }
        if let Some(drv) = netlist.net(*net).driver {
            dirty_bwd[drv.cell.index()] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Parasitics;
    use crate::engine::analyze;
    use m3d_tech::{Library, TierStack};

    fn assert_bit_identical(a: &StaResult, b: &StaResult) {
        assert_eq!(a.wns.to_bits(), b.wns.to_bits(), "wns");
        assert_eq!(a.tns.to_bits(), b.tns.to_bits(), "tns");
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.endpoints, b.endpoints);
        assert_eq!(a.period_ns.to_bits(), b.period_ns.to_bits());
        assert_eq!(a.critical_endpoints, b.critical_endpoints);
        assert_eq!(a.worst_input, b.worst_input);
        for i in 0..a.arrival.len() {
            assert_eq!(
                a.arrival[i].to_bits(),
                b.arrival[i].to_bits(),
                "arrival[{i}]"
            );
            assert_eq!(a.slew[i].to_bits(), b.slew[i].to_bits(), "slew[{i}]");
            assert_eq!(
                a.required[i].to_bits(),
                b.required[i].to_bits(),
                "required[{i}]"
            );
            assert_eq!(a.slack[i].to_bits(), b.slack[i].to_bits(), "slack[{i}]");
            assert_eq!(
                a.endpoint_slack[i].to_bits(),
                b.endpoint_slack[i].to_bits(),
                "endpoint_slack[{i}]"
            );
        }
    }

    #[test]
    fn timer_matches_cold_analyze_through_edits() {
        let mut netlist = m3d_netgen::Benchmark::Aes.generate(0.02, 5);
        let stack = TierStack::heterogeneous();
        let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
        let mut parasitics = Parasitics::zero_wire(&netlist);
        let mut period = 1.0;
        let mut timer = Timer::new();

        let gates: Vec<CellId> = netlist
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();

        for step in 0..14 {
            match step % 7 {
                0 => {
                    let g = gates[step * 37 % gates.len()];
                    let d = netlist.cell(g).class.gate_drive().expect("gate");
                    netlist.set_drive(g, d.upsized().unwrap_or(Drive::X1));
                    timer.resize_cell(g);
                }
                1 => {
                    let g = gates[step * 61 % gates.len()];
                    tiers[g.index()] = match tiers[g.index()] {
                        Tier::Bottom => Tier::Top,
                        Tier::Top => Tier::Bottom,
                    };
                    timer.swap_tier(g);
                }
                2 => {
                    period *= 0.93;
                    timer.set_period(period);
                }
                3 => {
                    let k = NetId::from_index(step * 13 % netlist.net_count());
                    parasitics.net_mut(k).wire_delay_ns += 0.004;
                    parasitics.net_mut(k).wire_cap_ff += 1.5;
                    timer.update_parasitics(k);
                }
                // Also exercise the pure auto-diff path (no hints).
                4 => {
                    let g = gates[step * 17 % gates.len()];
                    let d = netlist.cell(g).class.gate_drive().expect("gate");
                    netlist.set_drive(g, d.downsized().unwrap_or(Drive::X8));
                }
                5 => {
                    let k = NetId::from_index(step * 29 % netlist.net_count());
                    parasitics.net_mut(k).wire_delay_ns += 0.002;
                }
                _ => period *= 1.04,
            }
            let ctx = TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(period),
            };
            let incr = timer.update(&ctx);
            let cold = analyze(&ctx);
            assert_bit_identical(&incr, &cold);
        }
        let stats = timer.stats();
        assert_eq!(stats.full_rebuilds, 1, "only the first call builds");
        assert_eq!(stats.incremental_updates, 13);
        assert!(
            stats.propagated_evals() < 14 * timer.full_pass_evals(),
            "incremental must do less work than cold passes: {} vs {}",
            stats.propagated_evals(),
            14 * timer.full_pass_evals()
        );
    }

    #[test]
    fn journaled_update_matches_cold_analyze_through_edits() {
        let mut netlist = m3d_netgen::Benchmark::Aes.generate(0.02, 5);
        let stack = TierStack::heterogeneous();
        let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
        let mut parasitics = Parasitics::zero_wire(&netlist);
        let mut period = 1.0;
        let mut timer = Timer::new();

        let gates: Vec<CellId> = netlist
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();

        // Build once, then feed every edit through the journal interface:
        // the Timer must never fall back to diff scans or rebuilds.
        for step in 0..12 {
            let mut edits: Vec<TimingEdit> = Vec::new();
            match step % 4 {
                0 => {
                    for j in 0..3 {
                        let g = gates[(step * 37 + j * 11) % gates.len()];
                        let d = netlist.cell(g).class.gate_drive().expect("gate");
                        netlist.set_drive(g, d.upsized().unwrap_or(Drive::X1));
                        edits.push(TimingEdit::ResizeCell(g));
                    }
                }
                1 => {
                    let g = gates[step * 61 % gates.len()];
                    tiers[g.index()] = tiers[g.index()].other();
                    edits.push(TimingEdit::SwapTier(g));
                }
                2 => {
                    period *= 0.95;
                    edits.push(TimingEdit::Period);
                }
                _ => {
                    let k = NetId::from_index(step * 13 % netlist.net_count());
                    parasitics.net_mut(k).wire_delay_ns += 0.004;
                    parasitics.net_mut(k).wire_cap_ff += 1.5;
                    edits.push(TimingEdit::NetModel(k));
                }
            }
            let ctx = TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(period),
            };
            let incr = timer.update_journaled(&ctx, &edits);
            let cold = analyze(&ctx);
            assert_bit_identical(&incr, &cold);
        }
        let stats = timer.stats();
        assert_eq!(stats.full_rebuilds, 1, "journal must avoid rebuilds");
        assert_eq!(stats.incremental_updates, 11);

        // An empty journal is a pure re-confirmation: bit-identical result,
        // no propagation work at all.
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(period),
        };
        let before = timer.stats().propagated_evals();
        let noop = timer.update_journaled(&ctx, &[]);
        assert_bit_identical(&noop, &analyze(&ctx));
        assert_eq!(timer.stats().propagated_evals(), before);
    }

    #[test]
    fn period_only_edit_touches_no_forward_arc() {
        let netlist = m3d_netgen::Benchmark::Aes.generate(0.02, 5);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(&netlist);
        let mut timer = Timer::new();
        let run = |timer: &mut Timer, period: f64| {
            timer.update(&TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(period),
            })
        };
        let _ = run(&mut timer, 1.0);
        let forward_after_build = timer.stats().forward_evals;
        let launch_after_build = timer.stats().launch_evals;
        for (i, p) in [0.9, 0.8, 1.1, 0.6].into_iter().enumerate() {
            let incr = run(&mut timer, p);
            let cold = analyze(&TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(p),
            });
            assert_bit_identical(&incr, &cold);
            assert_eq!(
                timer.stats().forward_evals,
                forward_after_build,
                "rung {i}: period edits must not re-propagate arrivals"
            );
            assert_eq!(timer.stats().launch_evals, launch_after_build);
        }
    }

    #[test]
    fn structural_edit_falls_back_to_rebuild() {
        let mut netlist = m3d_netgen::Benchmark::Ldpc.generate(0.015, 9);
        let stack = TierStack::two_d(Library::twelve_track());
        let mut timer = Timer::new();
        {
            let tiers = vec![Tier::Bottom; netlist.cell_count()];
            let parasitics = Parasitics::zero_wire(&netlist);
            let _ = timer.update(&TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(1.0),
            });
        }
        // Buffer insertion adds cells and nets.
        let mut positions = vec![m3d_geom::Point::ORIGIN; netlist.cell_count()];
        let inserted = m3d_opt_free_insert(&mut netlist, &mut positions);
        assert!(inserted > 0, "ldpc has high-fanout nets");
        timer.insert_buffer();
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(&netlist);
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(1.0),
        };
        let incr = timer.update(&ctx);
        assert_bit_identical(&incr, &analyze(&ctx));
        assert_eq!(timer.stats().full_rebuilds, 2);
    }

    /// Minimal stand-in for `m3d_opt::insert_buffers` (the opt crate
    /// depends on this one, so tests here cannot call it): splits the
    /// first net with fanout > 8 exactly the way the optimizer does.
    fn m3d_opt_free_insert(
        netlist: &mut m3d_netlist::Netlist,
        positions: &mut Vec<m3d_geom::Point>,
    ) -> usize {
        let mut inserted = 0;
        let ids: Vec<NetId> = netlist.net_ids().collect();
        for net_id in ids {
            let net = netlist.net(net_id);
            if net.is_clock || net.fanout() <= 8 {
                continue;
            }
            let sinks = net.sinks.clone();
            let (keep, spill) = sinks.split_at(8);
            netlist.net_mut(net_id).sinks = keep.to_vec();
            let buf = netlist.add_gate(
                format!("tbuf{}", net_id.index()),
                CellKind::Buf,
                Drive::X4,
                0,
            );
            netlist.connect(net_id, buf, 0);
            let new_net = netlist.add_net(format!("tnet{}", net_id.index()), buf, 0);
            for pin in spill {
                let cell = netlist.cell_mut(pin.cell);
                cell.inputs[pin.pin as usize] = Some(new_net);
                netlist.net_mut(new_net).sinks.push(*pin);
            }
            positions.push(m3d_geom::Point::ORIGIN);
            inserted += 1;
            break;
        }
        inserted
    }
}
