//! Per-arc NLDM lookup cache shared by the full and incremental passes.
//!
//! Bilinear LUT interpolation dominates STA runtime, and the flow's
//! optimization loops re-query the same arcs constantly: a sizing round
//! that is rolled back, an ECO round that is undone, or a period-only
//! fmax rung all re-request (cell, slew, load) points the engine has
//! already evaluated. The cache memoizes the `(delay, output_slew)` pair
//! per exact arc key.
//!
//! Keys use the **raw bit patterns** of slew and load — never a rounded
//! bin — so a cache hit returns the very bits a cold evaluation would
//! produce. That is what lets [`crate::Timer`] keep the workspace's
//! bit-identity contract while still profiting from memoization. (The
//! slews and loads the engine produces are themselves quantized by the
//! netlist's discrete drive/tier states, so exact keys still hit often.)

use crate::fxhash::FxBuildHasher;
use m3d_tech::{CellKind, Drive, MasterCell, Tier};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One memoized arc: the master cell identity (tier resolves the library,
/// kind + drive resolve the cell) plus the exact input-slew / output-load
/// bits the tables are evaluated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArcKey {
    tier: Tier,
    kind: CellKind,
    drive: Drive,
    slew_bits: u64,
    load_bits: u64,
}

/// Shard count: a power of two so shard selection is a mask. Sharding
/// keeps lock contention negligible when the level-parallel passes query
/// the cache from several workers.
const SHARDS: usize = 16;

/// Per-shard entry cap — a backstop against unbounded growth on
/// pathological workloads (beyond it the cache serves hits but stops
/// inserting).
const SHARD_CAP: usize = 1 << 16;

/// One cache shard: an arc-keyed map from `(kind, drive, tier, slew,
/// load)` bits to the memoized `(delay, output_slew)` pair.
type Shard = Mutex<HashMap<ArcKey, (f64, f64), FxBuildHasher>>;

/// Memoization table for NLDM arc evaluations.
///
/// Thread-safe; both the sequential and the level-parallel engine paths
/// may query it concurrently. Hits and misses are counted for the
/// [`crate::TimerStats`] report.
#[derive(Debug, Default)]
pub struct DelayCache {
    /// Keyed by trusted in-process arc identities, so the maps use the
    /// vendored [`FxBuildHasher`] instead of SipHash — arc lookup is on
    /// the STA inner loop and the keyed hash's DoS resistance buys
    /// nothing here (see [`crate::fxhash`]).
    shards: [Shard; SHARDS],
    /// Hit/miss tallies per shard; [`DelayCache::hits`]/[`DelayCache::misses`]
    /// report the sums. Counts depend on scheduling (a racing duplicate
    /// insert books two misses), so telemetry treats them as
    /// performance-only, never as deterministic manifest content.
    shard_hits: [AtomicU64; SHARDS],
    shard_misses: [AtomicU64; SHARDS],
}

impl DelayCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        DelayCache::default()
    }

    /// `(delay, output_slew)` of `master` at `(slew_ns, load_ff)`,
    /// memoized. Bit-identical to calling the LUTs directly.
    pub(crate) fn arc(
        &self,
        tier: Tier,
        kind: CellKind,
        drive: Drive,
        master: &MasterCell,
        slew_ns: f64,
        load_ff: f64,
    ) -> (f64, f64) {
        let key = ArcKey {
            tier,
            kind,
            drive,
            slew_bits: slew_ns.to_bits(),
            load_bits: load_ff.to_bits(),
        };
        let mix = key
            .slew_bits
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ key.load_bits
            ^ ((kind as u64) << 3)
            ^ (drive as u64);
        let si = (mix as usize) & (SHARDS - 1);
        let shard = &self.shards[si];
        {
            let map = shard.lock().expect("delay cache shard poisoned");
            if let Some(&pair) = map.get(&key) {
                self.shard_hits[si].fetch_add(1, Ordering::Relaxed);
                return pair;
            }
        }
        // Evaluate outside the lock; the value is a pure function of the
        // key, so a concurrent duplicate insert stores identical bits.
        let pair = (
            master.delay(slew_ns, load_ff),
            master.output_slew(slew_ns, load_ff),
        );
        self.shard_misses[si].fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("delay cache shard poisoned");
        if map.len() < SHARD_CAP {
            map.insert(key, pair);
        }
        pair
    }

    /// Arc evaluations answered from the table (all shards).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.shard_hits
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .sum()
    }

    /// Arc evaluations that went to the LUTs (all shards).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.shard_misses
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard `(hits, misses)` tallies, in shard order. Performance
    /// telemetry only: the split across shards (and, under concurrency,
    /// the totals) depends on scheduling.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        (0..SHARDS)
            .map(|i| {
                (
                    self.shard_hits[i].load(Ordering::Relaxed),
                    self.shard_misses[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Number of memoized arcs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("delay cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` when no arc is memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized arc (the hit/miss counters are preserved).
    /// Required when the library binding itself changes.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("delay cache shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::Library;

    #[test]
    fn cached_arc_is_bit_identical_to_direct_lookup() {
        let lib = Library::twelve_track();
        let m = lib.cell(CellKind::Nand2, Drive::X2).expect("NAND2_X2");
        let cache = DelayCache::new();
        for (slew, load) in [(0.01, 1.0), (0.07, 13.5), (0.2, 80.0)] {
            let cold = (m.delay(slew, load), m.output_slew(slew, load));
            let first = cache.arc(Tier::Bottom, CellKind::Nand2, Drive::X2, m, slew, load);
            let second = cache.arc(Tier::Bottom, CellKind::Nand2, Drive::X2, m, slew, load);
            assert_eq!(cold.0.to_bits(), first.0.to_bits());
            assert_eq!(cold.1.to_bits(), first.1.to_bits());
            assert_eq!(first, second);
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn tiers_are_distinct_keys() {
        let lib = Library::twelve_track();
        let m = lib.cell(CellKind::Inv, Drive::X1).expect("INV_X1");
        let cache = DelayCache::new();
        cache.arc(Tier::Bottom, CellKind::Inv, Drive::X1, m, 0.03, 2.0);
        cache.arc(Tier::Top, CellKind::Inv, Drive::X1, m, 0.03, 2.0);
        assert_eq!(
            cache.misses(),
            2,
            "same point on another tier is a distinct arc"
        );
        cache.clear();
        assert!(cache.is_empty());
    }
}
