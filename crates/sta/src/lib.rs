//! Static timing analysis — the workspace's sign-off engine.
//!
//! The paper's flow leans on timing at three points: the *cell-based
//! criticality* metric driving timing-based partitioning (Section III-A1),
//! the WNS/TNS guard rails of the repartitioning ECO (Algorithm 1), and
//! the sign-off numbers of Tables V–VIII. This crate provides all three:
//!
//! * [`TimingContext`] — netlist + per-cell tier assignment + tier
//!   libraries + net parasitics + clock specification,
//! * [`analyze`] — full forward/backward propagation producing a
//!   [`StaResult`] with per-cell arrival/required/slack, WNS, TNS,
//! * [`StaResult::cell_criticality`] — the worst slack among all paths
//!   through each cell, computed for *every* cell (the paper's complete
//!   coverage requirement),
//! * [`worst_paths`] — top-K critical-path extraction with per-tier delay
//!   breakdowns (Table VIII's critical-path anatomy),
//! * [`Timer`] — a persistent incremental engine that re-propagates only
//!   the dirty cones after edits (sizing, tier swaps, parasitics, period
//!   sweeps), bit-identical to a cold [`analyze`] at any thread count,
//!   sharing a per-arc NLDM memo ([`DelayCache`]) with the full pass.
//!
//! Delays come from the NLDM tables of the bound libraries; wire delays
//! from per-net [`Parasitics`] (pre-route Steiner estimates or routed RC).
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_sta::{analyze, ClockSpec, Parasitics, TimingContext};
//! use m3d_tech::{Tier, TierStack};
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let stack = TierStack::two_d(m3d_tech::Library::twelve_track());
//! let tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let parasitics = Parasitics::zero_wire(&netlist);
//! let ctx = TimingContext {
//!     netlist: &netlist,
//!     stack: &stack,
//!     tiers: &tiers,
//!     parasitics: &parasitics,
//!     clock: ClockSpec::with_period(1.0),
//! };
//! let result = analyze(&ctx);
//! assert!(result.wns <= result.tns.max(0.0) + 1e9); // both finite
//! ```

mod cache;
mod context;
mod corners;
mod engine;
pub mod fxhash;
mod incremental;
mod paths;

pub use cache::DelayCache;
pub use context::{ClockSpec, NetModel, Parasitics, TimingContext};
pub use corners::{CornerResults, MultiCornerTimer};
pub use engine::{analyze, StaResult};
pub use incremental::{Timer, TimerStats, TimingEdit};
pub use paths::{worst_paths, PathStage, TimingPath};
