//! Multi-corner analysis: one persistent [`Timer`] per corner, and the
//! worst-corner selection used for sign-off.
//!
//! A corner is, to the timing engine, simply a different library
//! binding — the arc cache key deliberately has no corner dimension.
//! Sharing one [`Timer`] across corners would therefore alias its
//! `DelayCache`/arc-memo entries between libraries; the
//! [`MultiCornerTimer`] instead owns one `Timer` per corner, sharding
//! both caches per corner and preserving the incremental == cold
//! bit-identity contract corner by corner.

use crate::context::TimingContext;
use crate::engine::StaResult;
use crate::incremental::{Timer, TimingEdit};
use m3d_tech::Corner;

/// Per-corner sign-off results, in the analyzed corner order.
#[derive(Debug, Clone)]
pub struct CornerResults {
    results: Vec<(Corner, StaResult)>,
}

impl CornerResults {
    /// Wraps per-corner results (analysis order is preserved).
    ///
    /// # Panics
    ///
    /// Panics when `results` is empty: sign-off with zero corners is
    /// a caller bug.
    #[must_use]
    pub fn new(results: Vec<(Corner, StaResult)>) -> Self {
        assert!(!results.is_empty(), "sign-off needs at least one corner");
        CornerResults { results }
    }

    /// Number of analyzed corners.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` never — construction rejects empty sets — but kept for
    /// the idiomatic pairing with [`CornerResults::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterates over `(corner, result)` in analysis order.
    pub fn iter(&self) -> impl Iterator<Item = &(Corner, StaResult)> {
        self.results.iter()
    }

    /// The result analyzed at `corner`, if that corner was in the set.
    #[must_use]
    pub fn get(&self, corner: Corner) -> Option<&StaResult> {
        self.results
            .iter()
            .find(|(c, _)| *c == corner)
            .map(|(_, r)| r)
    }

    /// The worst corner: minimum WNS, ties broken toward the earlier
    /// corner in analysis order (deterministic at any thread count).
    #[must_use]
    pub fn worst(&self) -> (Corner, &StaResult) {
        let mut best = &self.results[0];
        for entry in &self.results[1..] {
            if entry.1.wns < best.1.wns {
                best = entry;
            }
        }
        (best.0, &best.1)
    }

    /// Consumes the set, returning the worst corner's result
    /// (same selection rule as [`CornerResults::worst`]).
    #[must_use]
    pub fn into_worst(mut self) -> (Corner, StaResult) {
        let mut idx = 0;
        for (i, entry) in self.results.iter().enumerate().skip(1) {
            if entry.1.wns < self.results[idx].1.wns {
                idx = i;
            }
        }
        self.results.swap_remove(idx)
    }
}

/// One persistent incremental [`Timer`] per corner.
pub struct MultiCornerTimer {
    timers: Vec<(Corner, Timer)>,
}

impl MultiCornerTimer {
    /// A fresh timer per corner, in the given (sign-off) order.
    #[must_use]
    pub fn new(corners: &[Corner]) -> Self {
        MultiCornerTimer {
            timers: corners.iter().map(|&c| (c, Timer::new())).collect(),
        }
    }

    /// The corners this set analyzes, in order.
    pub fn corners(&self) -> impl Iterator<Item = Corner> + '_ {
        self.timers.iter().map(|(c, _)| *c)
    }

    /// The persistent timer bound to `corner`.
    #[must_use]
    pub fn timer(&self, corner: Corner) -> Option<&Timer> {
        self.timers
            .iter()
            .find(|(c, _)| *c == corner)
            .map(|(_, t)| t)
    }

    /// Runs one journaled update per corner against that corner's
    /// context and returns the per-corner results. Every corner gets
    /// the same edit journal (an edit is corner-independent: it names
    /// *what* changed, not the delays).
    ///
    /// # Panics
    ///
    /// Panics when `ctxs` lacks a context for one of the corners.
    pub fn update_journaled(
        &mut self,
        ctxs: &[(Corner, TimingContext<'_>)],
        edits: &[TimingEdit],
    ) -> CornerResults {
        let mut out = Vec::with_capacity(self.timers.len());
        for (corner, timer) in &mut self.timers {
            let ctx = ctxs
                .iter()
                .find(|(c, _)| c == corner)
                .map(|(_, ctx)| ctx)
                .unwrap_or_else(|| panic!("no timing context supplied for the {corner} corner"));
            out.push((*corner, timer.update_journaled(ctx, edits)));
        }
        CornerResults::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ClockSpec, Parasitics};
    use crate::engine::analyze;
    use m3d_tech::{Tier, TierStack};

    fn contexts<'a>(
        netlist: &'a m3d_netlist::Netlist,
        stacks: &'a [(Corner, TierStack)],
        tiers: &'a [Tier],
        parasitics: &'a Parasitics,
        period: f64,
    ) -> Vec<(Corner, TimingContext<'a>)> {
        stacks
            .iter()
            .map(|(c, stack)| {
                (
                    *c,
                    TimingContext {
                        netlist,
                        stack,
                        tiers,
                        parasitics,
                        clock: ClockSpec::with_period(period),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn per_corner_incremental_matches_cold_and_orders_wns() {
        let mut netlist = m3d_netgen::Benchmark::Aes.generate(0.02, 7);
        let stacks: Vec<(Corner, TierStack)> = Corner::ALL
            .iter()
            .map(|&c| (c, TierStack::heterogeneous_at(c)))
            .collect();
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(&netlist);
        let mut multi = MultiCornerTimer::new(&Corner::ALL);

        let ctxs = contexts(&netlist, &stacks, &tiers, &parasitics, 1.0);
        let first = multi.update_journaled(&ctxs, &[]);
        for (corner, incr) in first.iter() {
            let cold = analyze(first_ctx(&ctxs, *corner));
            assert_eq!(incr.wns.to_bits(), cold.wns.to_bits(), "{corner}");
            assert_eq!(incr.tns.to_bits(), cold.tns.to_bits(), "{corner}");
        }
        // Derated corners order the sign-off: slow is the binding one.
        let slow = first.get(Corner::Slow).unwrap().wns;
        let typ = first.get(Corner::Typical).unwrap().wns;
        let fast = first.get(Corner::Fast).unwrap().wns;
        assert!(slow < typ && typ < fast, "{slow} {typ} {fast}");
        assert_eq!(first.worst().0, Corner::Slow);

        // Journaled edits stay bit-identical to cold per corner, with
        // each corner's timer updating incrementally (one build each).
        let gates: Vec<_> = netlist
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();
        for step in 0..4 {
            let g = gates[step * 37 % gates.len()];
            let d = netlist.cell(g).class.gate_drive().expect("gate");
            netlist.set_drive(g, d.upsized().unwrap_or(m3d_tech::Drive::X1));
            let edits = [TimingEdit::ResizeCell(g)];
            let ctxs = contexts(&netlist, &stacks, &tiers, &parasitics, 1.0);
            let results = multi.update_journaled(&ctxs, &edits);
            for (corner, incr) in results.iter() {
                let cold = analyze(first_ctx(&ctxs, *corner));
                assert_eq!(incr.wns.to_bits(), cold.wns.to_bits(), "{corner}");
                assert_eq!(
                    incr.slack.len(),
                    cold.slack.len(),
                    "{corner}: slack vectors must align"
                );
                for (a, b) in incr.slack.iter().zip(cold.slack.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{corner}");
                }
            }
        }
        for corner in Corner::ALL {
            let stats = multi.timer(corner).unwrap().stats();
            assert_eq!(stats.full_rebuilds, 1, "{corner}: journal avoids rebuilds");
        }
    }

    fn first_ctx<'a, 'b>(
        ctxs: &'b [(Corner, TimingContext<'a>)],
        corner: Corner,
    ) -> &'b TimingContext<'a> {
        ctxs.iter()
            .find(|(c, _)| *c == corner)
            .map(|(_, ctx)| ctx)
            .expect("context")
    }

    #[test]
    fn worst_breaks_ties_toward_analysis_order() {
        let netlist = m3d_netgen::Benchmark::Aes.generate(0.02, 3);
        let stack = TierStack::heterogeneous();
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(&netlist);
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(1.0),
        };
        let r = analyze(&ctx);
        let results = CornerResults::new(vec![
            (Corner::Slow, r.clone()),
            (Corner::Typical, r.clone()),
        ]);
        // Identical WNS at two corners: the earlier one wins.
        assert_eq!(results.worst().0, Corner::Slow);
        assert_eq!(results.into_worst().0, Corner::Slow);
        assert!(!CornerResults::new(vec![(Corner::Typical, r)]).is_empty());
    }
}
