use crate::context::TimingContext;
use m3d_netlist::{CellClass, CellId, NetId};

/// Result of one full timing analysis.
///
/// All vectors are indexed by cell id. For combinational gates, `arrival` /
/// `required` / `slack` refer to the cell's output pin; for endpoints
/// (registers, macros, primary outputs) they refer to the data input pin,
/// so `slack[cell]` is always "the worst slack of any path through this
/// cell" — the paper's cell-based criticality metric with complete
/// coverage.
#[derive(Debug, Clone)]
pub struct StaResult {
    /// Worst arrival time at the reference pin, ns.
    pub arrival: Vec<f64>,
    /// Propagated slew at the reference pin, ns.
    pub slew: Vec<f64>,
    /// Required arrival time, ns (`+inf` for cells with no timed fanout).
    pub required: Vec<f64>,
    /// `required − arrival` per cell, ns.
    pub slack: Vec<f64>,
    /// Worst negative slack over all endpoints, ns (positive when all
    /// endpoints meet timing).
    pub wns: f64,
    /// Total negative slack over all endpoints, ns (zero or negative).
    pub tns: f64,
    /// Number of timing endpoints.
    pub endpoints: usize,
    /// Number of endpoints with negative slack.
    pub violations: usize,
    /// Clock period the analysis ran at, ns.
    pub period_ns: f64,
    /// Endpoint cells, worst slack first.
    pub critical_endpoints: Vec<CellId>,
    /// For each cell, which input pin produced the worst arrival (used for
    /// path backtracking). `u8::MAX` when not applicable.
    pub worst_input: Vec<u8>,
    /// Per-cell endpoint slack (`NaN` for cells that are not endpoints):
    /// `rat − data-pin arrival`.
    pub endpoint_slack: Vec<f64>,
}

impl StaResult {
    /// The paper's *effective delay*: `clock period − worst slack`.
    #[must_use]
    pub fn effective_delay_ns(&self) -> f64 {
        self.period_ns - self.wns
    }

    /// Cell-based criticality: worst slack among all paths through `cell`.
    #[must_use]
    pub fn cell_criticality(&self, cell: CellId) -> f64 {
        self.slack[cell.index()]
    }

    /// Returns `true` when WNS is within `tolerance_fraction` of the
    /// period — the paper's timing-met condition (WNS ≳ −7 % of period).
    #[must_use]
    pub fn timing_met(&self, tolerance_fraction: f64) -> bool {
        self.wns >= -tolerance_fraction * self.period_ns
    }
}

/// Capacitive load on a net: wire capacitance plus every sink pin.
fn net_load_ff(ctx: &TimingContext<'_>, net: NetId) -> f64 {
    let mut load = ctx.parasitics.net(net).wire_cap_ff;
    for sink in &ctx.netlist.net(net).sinks {
        let cell = ctx.netlist.cell(sink.cell);
        load += match &cell.class {
            CellClass::Gate { kind, drive } => ctx
                .library(sink.cell.index())
                .cell(*kind, *drive)
                .map_or(1.0, |c| c.input_cap_ff),
            CellClass::Macro(spec) => spec.input_cap_ff,
            CellClass::PrimaryOutput => ctx.clock.output_load_ff,
            CellClass::PrimaryInput => 0.0,
        };
    }
    load
}

/// Runs a full forward (arrival/slew) and backward (required) propagation.
///
/// Clock nets are excluded from data timing; sequential cells launch at
/// their clock latency + clk→Q and capture at `period + latency − setup`.
#[must_use]
pub fn analyze(ctx: &TimingContext<'_>) -> StaResult {
    let netlist = ctx.netlist;
    let n = netlist.cell_count();
    let period = ctx.clock.period_ns;

    let mut arrival = vec![0.0_f64; n];
    let mut slew = vec![ctx.clock.input_slew_ns; n];
    let mut required = vec![f64::INFINITY; n];
    let mut worst_input = vec![u8::MAX; n];

    // Cache per-net loads (signal nets only).
    let mut net_load = vec![0.0_f64; netlist.net_count()];
    for (id, net) in netlist.nets() {
        if !net.is_clock {
            net_load[id.index()] = net_load_ff(ctx, id);
        }
    }

    // ---- launch points -------------------------------------------------
    for (id, cell) in netlist.cells() {
        let i = id.index();
        match &cell.class {
            CellClass::PrimaryInput => {
                arrival[i] = ctx.clock.virtual_io_latency_ns;
                slew[i] = ctx.clock.input_slew_ns;
            }
            CellClass::Gate { kind, drive } if kind.is_sequential() => {
                let lib = ctx.library(i);
                let cell_master = lib.cell(*kind, *drive);
                let (clk_q, out_slew) = match cell_master {
                    Some(m) => {
                        let load = cell
                            .outputs
                            .first()
                            .copied()
                            .flatten()
                            .map_or(0.0, |net| net_load[net.index()]);
                        (
                            m.clk_to_q_ns + m.delay(0.02, load) * 0.3,
                            m.output_slew(0.02, load),
                        )
                    }
                    None => (0.1, 0.05),
                };
                arrival[i] = ctx.clock.latency(i) + clk_q;
                slew[i] = out_slew;
            }
            CellClass::Macro(spec) => {
                arrival[i] = ctx.clock.latency(i) + spec.access_delay_ns;
                slew[i] = 0.08;
            }
            _ => {}
        }
    }

    // ---- forward pass over combinational gates -------------------------
    let order = netlist
        .combinational_order()
        .expect("netlist validated before timing");
    for &id in &order {
        let i = id.index();
        let cell = netlist.cell(id);
        let (kind, drive) = match &cell.class {
            CellClass::Gate { kind, drive } => (*kind, *drive),
            _ => unreachable!("combinational order yields gates"),
        };
        let lib = ctx.library(i);
        let master = lib.cell(kind, drive);
        let load = cell
            .outputs
            .first()
            .copied()
            .flatten()
            .map_or(0.0, |net| net_load[net.index()]);

        let mut best_at = 0.0_f64;
        let mut best_pin = u8::MAX;
        let mut best_slew = ctx.clock.input_slew_ns;
        for (pin, slot) in cell.inputs.iter().enumerate() {
            let Some(net) = slot else { continue };
            if netlist.net(*net).is_clock {
                continue;
            }
            let Some(drv) = netlist.net(*net).driver else {
                continue;
            };
            let j = drv.cell.index();
            let wire = ctx.parasitics.net(*net).wire_delay_ns;
            let at_in = arrival[j] + wire;
            let slew_in = slew[j];
            let (arc_delay, out_slew) = match master {
                Some(m) => (m.delay(slew_in, load), m.output_slew(slew_in, load)),
                None => (0.0, slew_in),
            };
            let at_out = at_in + arc_delay;
            if at_out > best_at || best_pin == u8::MAX {
                best_at = at_out;
                best_pin = pin as u8;
                best_slew = out_slew;
            }
        }
        arrival[i] = best_at;
        slew[i] = best_slew;
        worst_input[i] = best_pin;
    }

    // ---- endpoint arrivals, required times ------------------------------
    let mut endpoints_v: Vec<(CellId, f64)> = Vec::new();
    let mut endpoint_rat = vec![f64::INFINITY; n];
    let mut endpoint_slack = vec![f64::NAN; n];
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut violations = 0usize;

    // Helper: arrival at a data input pin of an endpoint.
    fn input_arrival(
        ctx: &TimingContext<'_>,
        arrival: &[f64],
        cell: CellId,
        pin: usize,
    ) -> f64 {
        let c = ctx.netlist.cell(cell);
        let Some(Some(net)) = c.inputs.get(pin) else {
            return 0.0;
        };
        if ctx.netlist.net(*net).is_clock {
            return 0.0;
        }
        let Some(drv) = ctx.netlist.net(*net).driver else {
            return 0.0;
        };
        arrival[drv.cell.index()] + ctx.parasitics.net(*net).wire_delay_ns
    }

    for (id, cell) in netlist.cells() {
        let i = id.index();
        let (is_endpoint, setup, data_pins) = match &cell.class {
            CellClass::Gate { kind, drive } if kind.is_sequential() => {
                let setup = ctx
                    .library(i)
                    .cell(*kind, *drive)
                    .map_or(0.03, |m| m.setup_ns);
                (true, setup, cell.inputs.len().saturating_sub(1))
            }
            CellClass::Macro(spec) => (true, spec.setup_ns, cell.inputs.len().saturating_sub(1)),
            CellClass::PrimaryOutput => (true, 0.0, cell.inputs.len()),
            _ => (false, 0.0, 0),
        };
        if !is_endpoint {
            continue;
        }
        let io_latency = if matches!(cell.class, CellClass::PrimaryOutput) {
            ctx.clock.virtual_io_latency_ns
        } else {
            ctx.clock.latency(i)
        };
        let rat = period + io_latency - setup;
        let mut worst_at = 0.0_f64;
        for pin in 0..data_pins {
            worst_at = worst_at.max(input_arrival(ctx, &arrival, id, pin));
        }
        // Endpoint quantities live in their own vectors so launch
        // arrivals (Q-pin) are not clobbered for registers/macros.
        endpoint_rat[i] = rat;
        endpoint_slack[i] = rat - worst_at;
        if matches!(cell.class, CellClass::PrimaryOutput) {
            // POs have no launch side; reuse the shared vectors.
            arrival[i] = worst_at;
            required[i] = rat;
        }
        let s = rat - worst_at;
        if s < wns {
            wns = s;
        }
        if s < 0.0 {
            tns += s;
            violations += 1;
        }
        endpoints_v.push((id, s));
    }
    if endpoints_v.is_empty() {
        wns = 0.0;
    }

    // ---- backward pass: required times on combinational outputs ---------
    // required(output of cell) = min over sinks of:
    //   endpoint: rat(endpoint) - wire
    //   comb sink: required(sink output) - arc_delay(sink via that pin) - wire
    for &id in order.iter().rev() {
        let i = id.index();
        let cell = netlist.cell(id);
        let Some(out_net) = cell.outputs.first().copied().flatten() else {
            continue;
        };
        let mut rat = f64::INFINITY;
        let wire = ctx.parasitics.net(out_net).wire_delay_ns;
        for sink in &netlist.net(out_net).sinks {
            let j = sink.cell.index();
            let sink_cell = netlist.cell(sink.cell);
            let candidate = match &sink_cell.class {
                CellClass::Gate { kind, drive } if !kind.is_sequential() => {
                    let load = sink_cell
                        .outputs
                        .first()
                        .copied()
                        .flatten()
                        .map_or(0.0, |net| net_load[net.index()]);
                    let arc = ctx
                        .library(j)
                        .cell(*kind, *drive)
                        .map_or(0.0, |m| m.delay(slew[i], load));
                    required[j] - arc
                }
                // Endpoint sinks (registers on D, macros, POs) carry their
                // own RAT.
                _ => endpoint_rat[j],
            };
            rat = rat.min(candidate - wire);
        }
        required[i] = rat;
    }
    // Launch cells (registers' Q, macros' outputs, PIs): required from
    // their fanout, same formula, so that their slack is also defined.
    for (id, cell) in netlist.cells() {
        let i = id.index();
        let is_launch = matches!(&cell.class, CellClass::PrimaryInput)
            || cell.is_sequential()
            || cell.class.is_macro();
        if !is_launch {
            continue;
        }
        let mut rat = f64::INFINITY;
        for out_net in cell.output_nets() {
            if netlist.net(out_net).is_clock {
                continue;
            }
            let wire = ctx.parasitics.net(out_net).wire_delay_ns;
            for sink in &netlist.net(out_net).sinks {
                let j = sink.cell.index();
                let sink_cell = netlist.cell(sink.cell);
                let candidate = match &sink_cell.class {
                    CellClass::Gate { kind, drive } if !kind.is_sequential() => {
                        let load = sink_cell
                            .outputs
                            .first()
                            .copied()
                            .flatten()
                            .map_or(0.0, |net| net_load[net.index()]);
                        let arc = ctx
                            .library(j)
                            .cell(*kind, *drive)
                            .map_or(0.0, |m| m.delay(slew[i], load));
                        required[j] - arc
                    }
                    _ => endpoint_rat[j],
                };
                rat = rat.min(candidate - wire);
            }
        }
        required[i] = rat;
    }

    // Per-cell worst slack through the cell: launch/output side, min'd
    // with the endpoint (data-capture) side where one exists.
    let slack: Vec<f64> = (0..n)
        .map(|i| {
            let launch = required[i] - arrival[i];
            if endpoint_slack[i].is_nan() {
                launch
            } else {
                launch.min(endpoint_slack[i])
            }
        })
        .collect();

    endpoints_v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let critical_endpoints = endpoints_v.iter().map(|&(id, _)| id).collect();

    StaResult {
        arrival,
        slew,
        required,
        slack,
        wns,
        tns,
        endpoints: endpoints_v.len(),
        violations,
        period_ns: period,
        critical_endpoints,
        worst_input,
        endpoint_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ClockSpec, Parasitics};
    use m3d_netlist::Netlist;
    use m3d_tech::{CellKind, Drive, Library, Tier, TierStack};

    /// clk -> [FF] -> inv chain (depth d) -> [FF]
    fn pipeline(depth: usize) -> Netlist {
        let mut n = Netlist::new("pipe");
        let clk_in = n.add_input("clk");
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let ff1 = n.add_gate("ff1", CellKind::Dff, Drive::X1, 0);
        n.connect(clk, ff1, 1);
        let mut prev = n.add_net("q1", ff1, 0);
        for i in 0..depth {
            let g = n.add_gate(format!("g{i}"), CellKind::Inv, Drive::X1, 0);
            n.connect(prev, g, 0);
            prev = n.add_net(format!("n{i}"), g, 0);
        }
        let ff2 = n.add_gate("ff2", CellKind::Dff, Drive::X1, 0);
        n.connect(prev, ff2, 0);
        n.connect(clk, ff2, 1);
        let q2 = n.add_net("q2", ff2, 0);
        let po = n.add_output("y");
        n.connect(q2, po, 0);
        // ff1 data input: tie to a primary input.
        let d_in = n.add_input("d");
        let nd = n.add_net("nd", d_in, 0);
        n.connect(nd, ff1, 0);
        n
    }

    fn run(netlist: &Netlist, period: f64) -> StaResult {
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(netlist);
        let ctx = TimingContext {
            netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(period),
        };
        analyze(&ctx)
    }

    #[test]
    fn deep_pipeline_fails_short_period() {
        let n = pipeline(40);
        let fast = run(&n, 10.0);
        assert!(fast.wns > 0.0, "40 inverters fit easily in 10 ns");
        let slow = run(&n, 0.05);
        assert!(slow.wns < 0.0, "40 inverters cannot fit in 50 ps");
        assert!(slow.tns < 0.0);
        assert!(slow.violations > 0);
    }

    #[test]
    fn wns_scales_with_depth() {
        let shallow = run(&pipeline(5), 0.3);
        let deep = run(&pipeline(30), 0.3);
        assert!(deep.wns < shallow.wns);
    }

    #[test]
    fn slack_decreases_along_critical_chain() {
        // In a pure chain, every inverter lies on the single path, so all
        // cells share (approximately) the same worst slack.
        let n = pipeline(10);
        let r = run(&n, 0.2);
        let slacks: Vec<f64> = n
            .cells()
            .filter(|(_, c)| c.class.gate_kind() == Some(CellKind::Inv))
            .map(|(id, _)| r.cell_criticality(id))
            .collect();
        let min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slacks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (max - min).abs() < 0.02,
            "chain cells should share slack: {min} vs {max}"
        );
        // And it should equal (approximately) the endpoint's WNS.
        assert!((min - r.wns).abs() < 0.05);
    }

    #[test]
    fn slow_library_has_worse_slack() {
        let n = pipeline(20);
        let fast = run(&n, 0.4);

        let stack = TierStack::two_d(Library::nine_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.4),
        };
        let slow = analyze(&ctx);
        assert!(slow.wns < fast.wns);
    }

    #[test]
    fn hetero_assignment_interpolates() {
        let n = pipeline(20);
        let stack = TierStack::heterogeneous();
        let parasitics = Parasitics::zero_wire(&n);
        let all_fast = vec![Tier::Bottom; n.cell_count()];
        let all_slow = vec![Tier::Top; n.cell_count()];
        let mut mixed = vec![Tier::Bottom; n.cell_count()];
        for (i, t) in mixed.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let wns_of = |tiers: &Vec<Tier>| {
            analyze(&TimingContext {
                netlist: &n,
                stack: &stack,
                tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(0.4),
            })
            .wns
        };
        let f = wns_of(&all_fast);
        let s = wns_of(&all_slow);
        let m = wns_of(&mixed);
        assert!(f > m && m > s, "fast {f} > mixed {m} > slow {s}");
    }

    #[test]
    fn wire_delay_reduces_slack() {
        let n = pipeline(10);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let mut parasitics = Parasitics::zero_wire(&n);
        for id in n.net_ids() {
            parasitics.net_mut(id).wire_delay_ns = 0.02;
            parasitics.net_mut(id).wire_cap_ff = 5.0;
        }
        let ideal = run(&n, 0.4);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.4),
        };
        let wired = analyze(&ctx);
        assert!(wired.wns < ideal.wns);
    }

    #[test]
    fn effective_delay_matches_definition() {
        let n = pipeline(10);
        let r = run(&n, 0.5);
        assert!((r.effective_delay_ns() - (0.5 - r.wns)).abs() < 1e-12);
    }

    #[test]
    fn clock_latency_shifts_capture() {
        let n = pipeline(10);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        // Give the capture FF extra clock latency -> more time -> better WNS.
        let mut clock = ClockSpec::with_period(0.2);
        clock.latency_ns = vec![0.0; n.cell_count()];
        let ff2 = n.cells().find(|(_, c)| c.name == "ff2").unwrap().0;
        clock.latency_ns[ff2.index()] = 0.1;
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock,
        };
        let skewed = analyze(&ctx);
        let base = run(&n, 0.2);
        // Extra capture latency relaxes the register-to-register path (the
        // downstream PO path tightens instead, so compare the endpoint).
        assert!(
            skewed.endpoint_slack[ff2.index()] > base.endpoint_slack[ff2.index()]
        );
    }

    #[test]
    fn generated_benchmark_times_cleanly() {
        let n = m3d_netgen::Benchmark::Cpu.generate(0.02, 3);
        let r = run(&n, 2.0);
        assert!(r.endpoints > 0);
        assert!(r.wns.is_finite());
        assert!(!r.critical_endpoints.is_empty());
    }

    #[test]
    fn timing_met_tolerance() {
        let n = pipeline(10);
        let r = run(&n, 10.0);
        assert!(r.timing_met(0.0));
        let tight = run(&n, 0.01);
        assert!(!tight.timing_met(0.07));
    }
}
