use crate::cache::DelayCache;
use crate::context::TimingContext;
use m3d_netlist::{CellClass, CellId, NetId, Netlist, Topology, NO_NET};

/// Result of one full timing analysis.
///
/// All vectors are indexed by cell id. For combinational gates, `arrival` /
/// `required` / `slack` refer to the cell's output pin; for endpoints
/// (registers, macros, primary outputs) they refer to the data input pin,
/// so `slack[cell]` is always "the worst slack of any path through this
/// cell" — the paper's cell-based criticality metric with complete
/// coverage.
#[derive(Debug, Clone)]
pub struct StaResult {
    /// Worst arrival time at the reference pin, ns.
    pub arrival: Vec<f64>,
    /// Propagated slew at the reference pin, ns.
    pub slew: Vec<f64>,
    /// Required arrival time, ns (`+inf` for cells with no timed fanout).
    pub required: Vec<f64>,
    /// `required − arrival` per cell, ns.
    pub slack: Vec<f64>,
    /// Worst negative slack over all endpoints, ns (positive when all
    /// endpoints meet timing).
    pub wns: f64,
    /// Total negative slack over all endpoints, ns (zero or negative).
    pub tns: f64,
    /// Number of timing endpoints.
    pub endpoints: usize,
    /// Number of endpoints with negative slack.
    pub violations: usize,
    /// Clock period the analysis ran at, ns.
    pub period_ns: f64,
    /// Endpoint cells, worst slack first.
    pub critical_endpoints: Vec<CellId>,
    /// For each cell, which input pin produced the worst arrival (used for
    /// path backtracking). `u8::MAX` when not applicable.
    pub worst_input: Vec<u8>,
    /// Per-cell endpoint slack (`NaN` for cells that are not endpoints):
    /// `rat − data-pin arrival`.
    pub endpoint_slack: Vec<f64>,
}

impl StaResult {
    /// The paper's *effective delay*: `clock period − worst slack`.
    #[must_use]
    pub fn effective_delay_ns(&self) -> f64 {
        self.period_ns - self.wns
    }

    /// Cell-based criticality: worst slack among all paths through `cell`.
    #[must_use]
    pub fn cell_criticality(&self, cell: CellId) -> f64 {
        self.slack[cell.index()]
    }

    /// Returns `true` when WNS is within `tolerance_fraction` of the
    /// period — the paper's timing-met condition (WNS ≳ −7 % of period).
    #[must_use]
    pub fn timing_met(&self, tolerance_fraction: f64) -> bool {
        self.wns >= -tolerance_fraction * self.period_ns
    }
}

/// Capacitive load on a net: wire capacitance plus every sink pin.
pub(crate) fn net_load_ff(ctx: &TimingContext<'_>, net: NetId) -> f64 {
    let mut load = ctx.parasitics.net(net).wire_cap_ff;
    for sink in &ctx.netlist.net(net).sinks {
        let cell = ctx.netlist.cell(sink.cell);
        load += match &cell.class {
            CellClass::Gate { kind, drive } => ctx
                .library(sink.cell.index())
                .cell(*kind, *drive)
                .map_or(1.0, |c| c.input_cap_ff),
            CellClass::Macro(spec) => spec.input_cap_ff,
            CellClass::PrimaryOutput => ctx.clock.output_load_ff,
            CellClass::PrimaryInput => 0.0,
        };
    }
    load
}

/// `(delay, output_slew)` of one arc, optionally memoized. The cache key
/// is exact-bits, so the returned pair is bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn arc_eval(
    cache: Option<&DelayCache>,
    ctx: &TimingContext<'_>,
    cell_index: usize,
    kind: m3d_tech::CellKind,
    drive: m3d_tech::Drive,
    master: &m3d_tech::MasterCell,
    slew_ns: f64,
    load_ff: f64,
) -> (f64, f64) {
    match cache {
        Some(c) => c.arc(ctx.tier(cell_index), kind, drive, master, slew_ns, load_ff),
        None => (
            master.delay(slew_ns, load_ff),
            master.output_slew(slew_ns, load_ff),
        ),
    }
}

/// Computes a gate's worst arrival, worst input pin and output slew from
/// the (already final) arrivals/slews of its drivers. The gate is named
/// by its position `k` in the level order, so its fanin arcs are one
/// contiguous slice of the [`Levels`] arc arrays — no per-cell pin-list
/// walk or driver lookup. Pure with respect to the gate: two calls with
/// the same inputs return identical values, which is what makes the
/// level-parallel forward pass deterministic (and lets the incremental
/// engine re-evaluate any dirty gate in isolation). Arcs are stored in
/// ascending pin order, so the `>` tie-break selects exactly the pin the
/// legacy input-slot scan selected.
pub(crate) fn forward_gate(
    ctx: &TimingContext<'_>,
    net_load: &[f64],
    arrival: &[f64],
    slew: &[f64],
    levels: &Levels,
    k: usize,
    cache: Option<&DelayCache>,
) -> (f64, u8, f64) {
    let id = levels.cell_at(k);
    let i = id.index();
    let cell = ctx.netlist.cell(id);
    let (kind, drive) = match &cell.class {
        CellClass::Gate { kind, drive } => (*kind, *drive),
        _ => unreachable!("combinational order yields gates"),
    };
    let master = ctx.library(i).cell(kind, drive);
    let load = cell
        .outputs
        .first()
        .copied()
        .flatten()
        .map_or(0.0, |net| net_load[net.index()]);

    let mut best_at = 0.0_f64;
    let mut best_pin = u8::MAX;
    let mut best_slew = ctx.clock.input_slew_ns;
    let (pins, drivers, nets) = levels.arcs(k);
    for a in 0..pins.len() {
        let j = drivers[a] as usize;
        let net = NetId::from_index(nets[a] as usize);
        let wire = ctx.parasitics.net(net).wire_delay_ns;
        let at_in = arrival[j] + wire;
        let slew_in = slew[j];
        let (arc_delay, out_slew) = match master {
            Some(m) => arc_eval(cache, ctx, i, kind, drive, m, slew_in, load),
            None => (0.0, slew_in),
        };
        let at_out = at_in + arc_delay;
        if at_out > best_at || best_pin == u8::MAX {
            best_at = at_out;
            best_pin = pins[a];
            best_slew = out_slew;
        }
    }
    (best_at, best_pin, best_slew)
}

/// Memoized backward arc delays, one slot per `(net, sink)` pair in CSR
/// layout. An arc into a combinational sink depends only on the driver's
/// slew, the sink's master/tier binding and the sink's output load; when
/// none of those changed since the last backward evaluation of the net,
/// [`required_of_net`] can fold the stored delays instead of re-deriving
/// each one through the library tables (or the hash-keyed [`DelayCache`]).
/// Stored values are outputs of the same pure `arc_eval` kernel, so the
/// fold is bit-identical to a fresh evaluation — the memo is a pure
/// speedup, never a rounding change. The period-only fmax ladder is the
/// extreme case: every endpoint RAT moves but no arc does, so the whole
/// backward cone replays from the memo.
///
/// The [`crate::Timer`] owns one of these and invalidates nets with the
/// same seed rules that dirty the backward cone (driver slew changed →
/// the driver's output nets; sink master/tier changed → the sink's input
/// nets; a net's load changed → the driver-of-that-net's input nets).
/// Wire delay is *not* part of a stored arc — it is read fresh on every
/// fold — so parasitics wire edits need no invalidation.
pub(crate) struct ArcMemo {
    /// `net k`'s sink arcs live at `arcs[off[k] .. off[k + 1]]`.
    off: Vec<u32>,
    arcs: Vec<f64>,
    valid: Vec<bool>,
}

impl ArcMemo {
    pub(crate) fn new(netlist: &Netlist) -> ArcMemo {
        let nets = netlist.net_count();
        let mut off = Vec::with_capacity(nets + 1);
        let mut total = 0u32;
        off.push(0);
        for (_, net) in netlist.nets() {
            total += net.sinks.len() as u32;
            off.push(total);
        }
        ArcMemo {
            off,
            arcs: vec![0.0; total as usize],
            valid: vec![false; nets],
        }
    }

    /// Drops net `k`'s stored arcs (the next fold re-derives and
    /// re-captures them).
    pub(crate) fn invalidate(&mut self, k: usize) {
        self.valid[k] = false;
    }

    fn net_mut(&mut self, k: usize) -> (&mut [f64], &mut bool) {
        let lo = self.off[k] as usize;
        let hi = self.off[k + 1] as usize;
        (&mut self.arcs[lo..hi], &mut self.valid[k])
    }
}

/// Computes a cell's required time from the (already final) required times
/// of its combinational sinks and the endpoint RATs. Shared by the
/// level-parallel backward pass and the launch-cell pass. With a `memo`,
/// valid nets fold their stored arc delays and invalid nets re-derive and
/// re-capture them; either way the returned bits equal the memo-less call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn required_of_net(
    ctx: &TimingContext<'_>,
    net_load: &[f64],
    slew_i: f64,
    required: &[f64],
    endpoint_rat: &[f64],
    out_net: NetId,
    cache: Option<&DelayCache>,
    memo: Option<&mut ArcMemo>,
) -> f64 {
    let netlist = ctx.netlist;
    let mut rat = f64::INFINITY;
    let wire = ctx.parasitics.net(out_net).wire_delay_ns;
    let sinks = &netlist.net(out_net).sinks;
    if let Some(memo) = memo {
        let (arcs, valid) = memo.net_mut(out_net.index());
        if *valid {
            // Replay: identical fold over identical arc bits.
            for (si, sink) in sinks.iter().enumerate() {
                let j = sink.cell.index();
                let candidate = match &netlist.cell(sink.cell).class {
                    CellClass::Gate { kind, .. } if !kind.is_sequential() => required[j] - arcs[si],
                    _ => endpoint_rat[j],
                };
                rat = rat.min(candidate - wire);
            }
            return rat;
        }
        for (si, sink) in sinks.iter().enumerate() {
            let j = sink.cell.index();
            let sink_cell = netlist.cell(sink.cell);
            let candidate = match &sink_cell.class {
                CellClass::Gate { kind, drive } if !kind.is_sequential() => {
                    let load = sink_cell
                        .outputs
                        .first()
                        .copied()
                        .flatten()
                        .map_or(0.0, |net| net_load[net.index()]);
                    let arc = match ctx.library(j).cell(*kind, *drive) {
                        Some(m) => arc_eval(cache, ctx, j, *kind, *drive, m, slew_i, load).0,
                        None => 0.0,
                    };
                    arcs[si] = arc;
                    required[j] - arc
                }
                // Endpoint sinks (registers on D, macros, POs) carry their
                // own RAT.
                _ => endpoint_rat[j],
            };
            rat = rat.min(candidate - wire);
        }
        *valid = true;
        return rat;
    }
    for sink in sinks {
        let j = sink.cell.index();
        let sink_cell = netlist.cell(sink.cell);
        let candidate = match &sink_cell.class {
            CellClass::Gate { kind, drive } if !kind.is_sequential() => {
                let load = sink_cell
                    .outputs
                    .first()
                    .copied()
                    .flatten()
                    .map_or(0.0, |net| net_load[net.index()]);
                let arc = match ctx.library(j).cell(*kind, *drive) {
                    Some(m) => arc_eval(cache, ctx, j, *kind, *drive, m, slew_i, load).0,
                    None => 0.0,
                };
                required[j] - arc
            }
            // Endpoint sinks (registers on D, macros, POs) carry their
            // own RAT.
            _ => endpoint_rat[j],
        };
        rat = rat.min(candidate - wire);
    }
    rat
}

/// Launch-side `(arrival, slew)` of a launch cell (primary input,
/// register Q pin, macro output), or `None` for everything else.
pub(crate) fn launch_point(
    ctx: &TimingContext<'_>,
    net_load: &[f64],
    id: CellId,
    cache: Option<&DelayCache>,
) -> Option<(f64, f64)> {
    let i = id.index();
    let cell = ctx.netlist.cell(id);
    match &cell.class {
        CellClass::PrimaryInput => Some((ctx.clock.virtual_io_latency_ns, ctx.clock.input_slew_ns)),
        CellClass::Gate { kind, drive } if kind.is_sequential() => {
            let lib = ctx.library(i);
            let cell_master = lib.cell(*kind, *drive);
            let (clk_q, out_slew) = match cell_master {
                Some(m) => {
                    let load = cell
                        .outputs
                        .first()
                        .copied()
                        .flatten()
                        .map_or(0.0, |net| net_load[net.index()]);
                    let (delay, slew) = arc_eval(cache, ctx, i, *kind, *drive, m, 0.02, load);
                    (m.clk_to_q_ns + delay * 0.3, slew)
                }
                None => (0.1, 0.05),
            };
            Some((ctx.clock.latency(i) + clk_q, out_slew))
        }
        CellClass::Macro(spec) => Some((ctx.clock.latency(i) + spec.access_delay_ns, 0.08)),
        _ => None,
    }
}

/// Arrival at a data input pin of an endpoint.
pub(crate) fn input_arrival(
    ctx: &TimingContext<'_>,
    arrival: &[f64],
    cell: CellId,
    pin: usize,
) -> f64 {
    let c = ctx.netlist.cell(cell);
    let Some(Some(net)) = c.inputs.get(pin) else {
        return 0.0;
    };
    if ctx.netlist.net(*net).is_clock {
        return 0.0;
    }
    let Some(drv) = ctx.netlist.net(*net).driver else {
        return 0.0;
    };
    arrival[drv.cell.index()] + ctx.parasitics.net(*net).wire_delay_ns
}

/// Endpoint view of cell `i`: `(rat, worst data-pin arrival, is_po)`, or
/// `None` when the cell is not a timing endpoint.
pub(crate) fn endpoint_point(
    ctx: &TimingContext<'_>,
    arrival: &[f64],
    i: usize,
) -> Option<(f64, f64, bool)> {
    let id = CellId::from_index(i);
    let cell = ctx.netlist.cell(id);
    let (setup, data_pins) = match &cell.class {
        CellClass::Gate { kind, drive } if kind.is_sequential() => {
            let setup = ctx
                .library(i)
                .cell(*kind, *drive)
                .map_or(0.03, |m| m.setup_ns);
            (setup, cell.inputs.len().saturating_sub(1))
        }
        CellClass::Macro(spec) => (spec.setup_ns, cell.inputs.len().saturating_sub(1)),
        CellClass::PrimaryOutput => (0.0, cell.inputs.len()),
        _ => return None,
    };
    let is_po = matches!(cell.class, CellClass::PrimaryOutput);
    let io_latency = if is_po {
        ctx.clock.virtual_io_latency_ns
    } else {
        ctx.clock.latency(i)
    };
    let rat = ctx.clock.period_ns + io_latency - setup;
    let mut worst_at = 0.0_f64;
    for pin in 0..data_pins {
        worst_at = worst_at.max(input_arrival(ctx, arrival, id, pin));
    }
    Some((rat, worst_at, is_po))
}

/// Required time on a combinational gate's output, from its (already
/// final) sinks. `None` when the gate drives nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn backward_point(
    ctx: &TimingContext<'_>,
    net_load: &[f64],
    slew: &[f64],
    required: &[f64],
    endpoint_rat: &[f64],
    id: CellId,
    cache: Option<&DelayCache>,
    memo: Option<&mut ArcMemo>,
) -> Option<f64> {
    let cell = ctx.netlist.cell(id);
    let out_net = cell.outputs.first().copied().flatten()?;
    Some(required_of_net(
        ctx,
        net_load,
        slew[id.index()],
        required,
        endpoint_rat,
        out_net,
        cache,
        memo,
    ))
}

/// Required time on a launch cell's output (register Q, macro outputs,
/// PIs): min over its non-clock fanout. `None` for non-launch cells.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_required(
    ctx: &TimingContext<'_>,
    net_load: &[f64],
    slew_i: f64,
    required: &[f64],
    endpoint_rat: &[f64],
    i: usize,
    cache: Option<&DelayCache>,
    mut memo: Option<&mut ArcMemo>,
) -> Option<f64> {
    let id = CellId::from_index(i);
    let cell = ctx.netlist.cell(id);
    let is_launch = matches!(&cell.class, CellClass::PrimaryInput)
        || cell.is_sequential()
        || cell.class.is_macro();
    if !is_launch {
        return None;
    }
    let mut rat = f64::INFINITY;
    for out_net in cell.output_nets() {
        if ctx.netlist.net(out_net).is_clock {
            continue;
        }
        rat = rat.min(required_of_net(
            ctx,
            net_load,
            slew_i,
            required,
            endpoint_rat,
            out_net,
            cache,
            memo.as_deref_mut(),
        ));
    }
    Some(rat)
}

/// Combinational gates grouped by logic depth: `level(g) = 1 + max` level
/// over `g`'s combinational drivers (launch points are level 0). Gates
/// within one level never feed each other, so a level can be evaluated
/// concurrently — each gate reading only finalized lower-level values —
/// producing exactly the sequential pass's arrays.
///
/// Stored flat (CSR), not as a `Vec<Vec<CellId>>`: `order` holds every
/// combinational gate in level-major topological order, `level_off`
/// delimits the levels, and the fanin timing arcs of `order[k]` — its
/// non-clock, driven input pins, in ascending pin order — occupy the
/// contiguous slice `arc_off[k]..arc_off[k+1]` of the parallel
/// `arc_pin`/`arc_driver`/`arc_net` arrays. Forward and backward
/// propagation sweep these dense slices instead of chasing per-cell pin
/// `Vec`s and per-net driver lookups.
///
/// Built once per netlist structure; the incremental [`crate::Timer`]
/// reuses it across edits (levelization is pure integer work, so it only
/// depends on connectivity, never on drives, tiers or parasitics).
#[derive(Debug, Clone)]
pub(crate) struct Levels {
    /// Every combinational gate, level-major, topological-order position
    /// within each level (the exact order the legacy `Vec<Vec<CellId>>`
    /// iteration produced).
    order: Vec<CellId>,
    /// `level l` is `order[level_off[l] .. level_off[l + 1]]`.
    level_off: Vec<u32>,
    /// Fanin arcs of `order[k]` are `arc_off[k] .. arc_off[k + 1]`.
    arc_off: Vec<u32>,
    /// Input pin index on the gate, per arc.
    arc_pin: Vec<u8>,
    /// Driver cell index, per arc.
    arc_driver: Vec<u32>,
    /// Net index, per arc.
    arc_net: Vec<u32>,
}

impl Default for Levels {
    fn default() -> Self {
        Levels {
            order: Vec::new(),
            level_off: vec![0],
            arc_off: vec![0],
            arc_pin: Vec::new(),
            arc_driver: Vec::new(),
            arc_net: Vec::new(),
        }
    }
}

impl Levels {
    /// Number of levels.
    pub(crate) fn level_count(&self) -> usize {
        self.level_off.len() - 1
    }

    /// Total number of combinational gates across all levels.
    pub(crate) fn comb_count(&self) -> usize {
        self.order.len()
    }

    /// The order-index range of level `l`.
    pub(crate) fn level_range(&self, l: usize) -> std::ops::Range<usize> {
        self.level_off[l] as usize..self.level_off[l + 1] as usize
    }

    /// The gates of level `l`, in topological-order position.
    pub(crate) fn level(&self, l: usize) -> &[CellId] {
        &self.order[self.level_range(l)]
    }

    /// The gate at order position `k`.
    pub(crate) fn cell_at(&self, k: usize) -> CellId {
        self.order[k]
    }

    /// The fanin arc slices `(pins, drivers, nets)` of the gate at order
    /// position `k`.
    pub(crate) fn arcs(&self, k: usize) -> (&[u8], &[u32], &[u32]) {
        let lo = self.arc_off[k] as usize;
        let hi = self.arc_off[k + 1] as usize;
        (
            &self.arc_pin[lo..hi],
            &self.arc_driver[lo..hi],
            &self.arc_net[lo..hi],
        )
    }
}

/// Levelizes the combinational portion of `netlist` over its flat
/// [`Topology`] view and packs the per-gate fanin arcs.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle (validated netlists
/// never do).
pub(crate) fn levelize(netlist: &Netlist) -> Levels {
    levelize_topo(&netlist.topology())
}

/// [`levelize`] over an already-built topology view.
pub(crate) fn levelize_topo(topo: &Topology) -> Levels {
    let order_topo = topo
        .combinational_order()
        .expect("netlist validated before timing");
    let n = topo.cell_count();
    let mut comb_level = vec![u32::MAX; n];
    let mut level_counts: Vec<u32> = Vec::new();
    for &id in &order_topo {
        let mut level = 0u32;
        for &raw in topo.cell_inputs(id) {
            if raw == NO_NET {
                continue;
            }
            let net = NetId::from_index(raw as usize);
            if topo.is_clock(net) {
                continue;
            }
            let Some(drv) = topo.driver(net) else {
                continue;
            };
            let j = drv.cell.index();
            if comb_level[j] != u32::MAX {
                level = level.max(comb_level[j] + 1);
            }
        }
        comb_level[id.index()] = level;
        if level_counts.len() <= level as usize {
            level_counts.resize(level as usize + 1, 0);
        }
        level_counts[level as usize] += 1;
    }
    // Counting sort by level, stable over the topological order — the
    // same per-level sequence the legacy `levels[level].push(id)` built.
    let mut level_off = Vec::with_capacity(level_counts.len() + 1);
    level_off.push(0u32);
    for &c in &level_counts {
        level_off.push(level_off.last().unwrap() + c);
    }
    let mut next: Vec<u32> = level_off[..level_counts.len()].to_vec();
    let mut order = vec![CellId::from_index(0); order_topo.len()];
    for &id in &order_topo {
        let l = comb_level[id.index()] as usize;
        order[next[l] as usize] = id;
        next[l] += 1;
    }
    // Fanin arcs, aligned with `order`: the non-clock, driven input pins
    // of each gate in ascending pin order (exactly the pins the forward
    // kernel evaluates).
    let mut arc_off = Vec::with_capacity(order.len() + 1);
    let mut arc_pin = Vec::new();
    let mut arc_driver = Vec::new();
    let mut arc_net = Vec::new();
    arc_off.push(0u32);
    for &id in &order {
        for (pin, &raw) in topo.cell_inputs(id).iter().enumerate() {
            if raw == NO_NET {
                continue;
            }
            let net = NetId::from_index(raw as usize);
            if topo.is_clock(net) {
                continue;
            }
            let Some(drv) = topo.driver(net) else {
                continue;
            };
            arc_pin.push(pin as u8);
            arc_driver.push(drv.cell.index() as u32);
            arc_net.push(raw);
        }
        arc_off.push(arc_pin.len() as u32);
    }
    Levels {
        order,
        level_off,
        arc_off,
        arc_pin,
        arc_driver,
        arc_net,
    }
}

/// Everything one full propagation produces: the public [`StaResult`]
/// plus the intermediate arrays the incremental engine snapshots.
pub(crate) struct FullPass {
    pub result: StaResult,
    pub net_load: Vec<f64>,
    pub endpoint_rat: Vec<f64>,
}

/// Runs a full forward (arrival/slew) and backward (required) propagation.
///
/// Clock nets are excluded from data timing; sequential cells launch at
/// their clock latency + clk→Q and capture at `period + latency − setup`.
///
/// Both propagations are **level-parallel**: gates within one level
/// (which cannot depend on each other) are evaluated concurrently, each
/// reading only finalized previous-level values. Results are scattered
/// per gate, so the arrays are bit-identical to the sequential pass at
/// any thread count; designs below `m3d_par::PAR_THRESHOLD` cells skip
/// threading entirely.
pub(crate) fn analyze_full(
    ctx: &TimingContext<'_>,
    levels: &Levels,
    cache: Option<&DelayCache>,
) -> FullPass {
    let netlist = ctx.netlist;
    let n = netlist.cell_count();
    let period = ctx.clock.period_ns;
    let threads = m3d_par::resolve(0);
    let parallel = threads > 1 && n >= m3d_par::PAR_THRESHOLD;

    let mut arrival = vec![0.0_f64; n];
    let mut slew = vec![ctx.clock.input_slew_ns; n];
    let mut required = vec![f64::INFINITY; n];
    let mut worst_input = vec![u8::MAX; n];

    // Cache per-net loads (signal nets only). Each net's load is
    // independent, so the parallel map equals the sequential loop exactly.
    let net_load: Vec<f64> = if parallel {
        m3d_par::par_map_indices(threads, netlist.net_count(), |k| {
            let id = NetId::from_index(k);
            if netlist.net(id).is_clock {
                0.0
            } else {
                net_load_ff(ctx, id)
            }
        })
    } else {
        let mut loads = vec![0.0_f64; netlist.net_count()];
        for (id, net) in netlist.nets() {
            if !net.is_clock {
                loads[id.index()] = net_load_ff(ctx, id);
            }
        }
        loads
    };

    // ---- launch points -------------------------------------------------
    for (id, _) in netlist.cells() {
        if let Some((at, out_slew)) = launch_point(ctx, &net_load, id, cache) {
            let i = id.index();
            arrival[i] = at;
            slew[i] = out_slew;
        }
    }

    // ---- forward pass over combinational gates -------------------------
    for l in 0..levels.level_count() {
        let range = levels.level_range(l);
        let base = range.start;
        let level = levels.level(l);
        if parallel && level.len() >= 2 {
            let results = m3d_par::par_map(threads, level, |li, _| {
                forward_gate(ctx, &net_load, &arrival, &slew, levels, base + li, cache)
            });
            for (&id, (at, pin, out_slew)) in level.iter().zip(results) {
                let i = id.index();
                arrival[i] = at;
                slew[i] = out_slew;
                worst_input[i] = pin;
            }
        } else {
            for (li, &id) in level.iter().enumerate() {
                let (at, pin, out_slew) =
                    forward_gate(ctx, &net_load, &arrival, &slew, levels, base + li, cache);
                let i = id.index();
                arrival[i] = at;
                slew[i] = out_slew;
                worst_input[i] = pin;
            }
        }
    }

    // ---- endpoint arrivals, required times ------------------------------
    let mut endpoints_v: Vec<(CellId, f64)> = Vec::new();
    let mut endpoint_rat = vec![f64::INFINITY; n];
    let mut endpoint_slack = vec![f64::NAN; n];
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut violations = 0usize;

    // Per-endpoint RAT/arrival pairs are independent; compute them (in
    // parallel for large designs), then fold the scalar statistics in
    // fixed cell-index order so WNS/TNS accumulate identically at any
    // thread count.
    let endpoint_eval = |i: usize| endpoint_point(ctx, &arrival, i);
    let evaluated: Vec<Option<(f64, f64, bool)>> = if parallel {
        m3d_par::par_map_indices(threads, n, endpoint_eval)
    } else {
        (0..n).map(endpoint_eval).collect()
    };
    for (i, ev) in evaluated.into_iter().enumerate() {
        let Some((rat, worst_at, is_po)) = ev else {
            continue;
        };
        // Endpoint quantities live in their own vectors so launch
        // arrivals (Q-pin) are not clobbered for registers/macros.
        endpoint_rat[i] = rat;
        endpoint_slack[i] = rat - worst_at;
        if is_po {
            // POs have no launch side; reuse the shared vectors.
            arrival[i] = worst_at;
            required[i] = rat;
        }
        let s = rat - worst_at;
        if s < wns {
            wns = s;
        }
        if s < 0.0 {
            tns += s;
            violations += 1;
        }
        endpoints_v.push((CellId::from_index(i), s));
    }
    if endpoints_v.is_empty() {
        wns = 0.0;
    }

    // ---- backward pass: required times on combinational outputs ---------
    // required(output of cell) = min over sinks of:
    //   endpoint: rat(endpoint) - wire
    //   comb sink: required(sink output) - arc_delay(sink via that pin) - wire
    // A gate's combinational sinks always sit at a strictly deeper level,
    // so walking the forward levels in reverse gives the same dependency
    // guarantee as reverse topological order — and within a level the
    // computations are independent and run concurrently.
    for l in (0..levels.level_count()).rev() {
        let level = levels.level(l);
        if parallel && level.len() >= 2 {
            let required_ref = &required;
            let results = m3d_par::par_map(threads, level, |_, &id| {
                backward_point(
                    ctx,
                    &net_load,
                    &slew,
                    required_ref,
                    &endpoint_rat,
                    id,
                    cache,
                    None,
                )
            });
            for (&id, rat) in level.iter().zip(results) {
                if let Some(rat) = rat {
                    required[id.index()] = rat;
                }
            }
        } else {
            for &id in level {
                if let Some(rat) = backward_point(
                    ctx,
                    &net_load,
                    &slew,
                    &required,
                    &endpoint_rat,
                    id,
                    cache,
                    None,
                ) {
                    required[id.index()] = rat;
                }
            }
        }
    }
    // Launch cells (registers' Q, macros' outputs, PIs): required from
    // their fanout, same formula, so that their slack is also defined.
    // Independent per cell (they only read combinational required times).
    let launch_eval = |i: usize| {
        launch_required(
            ctx,
            &net_load,
            slew[i],
            &required,
            &endpoint_rat,
            i,
            cache,
            None,
        )
    };
    let launch_req: Vec<Option<f64>> = if parallel {
        m3d_par::par_map_indices(threads, n, launch_eval)
    } else {
        (0..n).map(launch_eval).collect()
    };
    for (i, rat) in launch_req.into_iter().enumerate() {
        if let Some(rat) = rat {
            required[i] = rat;
        }
    }

    // Per-cell worst slack through the cell: launch/output side, min'd
    // with the endpoint (data-capture) side where one exists.
    let slack: Vec<f64> = (0..n)
        .map(|i| {
            let launch = required[i] - arrival[i];
            if endpoint_slack[i].is_nan() {
                launch
            } else {
                launch.min(endpoint_slack[i])
            }
        })
        .collect();

    endpoints_v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let critical_endpoints = endpoints_v.iter().map(|&(id, _)| id).collect();

    FullPass {
        result: StaResult {
            arrival,
            slew,
            required,
            slack,
            wns,
            tns,
            endpoints: endpoints_v.len(),
            violations,
            period_ns: period,
            critical_endpoints,
            worst_input,
            endpoint_slack,
        },
        net_load,
        endpoint_rat,
    }
}

/// Runs a full (cold) timing analysis: levelize, propagate forward and
/// backward, fold endpoint slacks. See [`crate::Timer`] for the
/// incremental engine that reuses the graph across edits; both produce
/// bit-identical results at any thread count.
#[must_use]
pub fn analyze(ctx: &TimingContext<'_>) -> StaResult {
    analyze_full(ctx, &levelize(ctx.netlist), None).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ClockSpec, Parasitics};
    use m3d_netlist::Netlist;
    use m3d_tech::{CellKind, Drive, Library, Tier, TierStack};

    /// clk -> [FF] -> inv chain (depth d) -> [FF]
    fn pipeline(depth: usize) -> Netlist {
        let mut n = Netlist::new("pipe");
        let clk_in = n.add_input("clk");
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let ff1 = n.add_gate("ff1", CellKind::Dff, Drive::X1, 0);
        n.connect(clk, ff1, 1);
        let mut prev = n.add_net("q1", ff1, 0);
        for i in 0..depth {
            let g = n.add_gate(format!("g{i}"), CellKind::Inv, Drive::X1, 0);
            n.connect(prev, g, 0);
            prev = n.add_net(format!("n{i}"), g, 0);
        }
        let ff2 = n.add_gate("ff2", CellKind::Dff, Drive::X1, 0);
        n.connect(prev, ff2, 0);
        n.connect(clk, ff2, 1);
        let q2 = n.add_net("q2", ff2, 0);
        let po = n.add_output("y");
        n.connect(q2, po, 0);
        // ff1 data input: tie to a primary input.
        let d_in = n.add_input("d");
        let nd = n.add_net("nd", d_in, 0);
        n.connect(nd, ff1, 0);
        n
    }

    fn run(netlist: &Netlist, period: f64) -> StaResult {
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; netlist.cell_count()];
        let parasitics = Parasitics::zero_wire(netlist);
        let ctx = TimingContext {
            netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(period),
        };
        analyze(&ctx)
    }

    #[test]
    fn deep_pipeline_fails_short_period() {
        let n = pipeline(40);
        let fast = run(&n, 10.0);
        assert!(fast.wns > 0.0, "40 inverters fit easily in 10 ns");
        let slow = run(&n, 0.05);
        assert!(slow.wns < 0.0, "40 inverters cannot fit in 50 ps");
        assert!(slow.tns < 0.0);
        assert!(slow.violations > 0);
    }

    #[test]
    fn wns_scales_with_depth() {
        let shallow = run(&pipeline(5), 0.3);
        let deep = run(&pipeline(30), 0.3);
        assert!(deep.wns < shallow.wns);
    }

    #[test]
    fn slack_decreases_along_critical_chain() {
        // In a pure chain, every inverter lies on the single path, so all
        // cells share (approximately) the same worst slack.
        let n = pipeline(10);
        let r = run(&n, 0.2);
        let slacks: Vec<f64> = n
            .cells()
            .filter(|(_, c)| c.class.gate_kind() == Some(CellKind::Inv))
            .map(|(id, _)| r.cell_criticality(id))
            .collect();
        let min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slacks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (max - min).abs() < 0.02,
            "chain cells should share slack: {min} vs {max}"
        );
        // And it should equal (approximately) the endpoint's WNS.
        assert!((min - r.wns).abs() < 0.05);
    }

    #[test]
    fn slow_library_has_worse_slack() {
        let n = pipeline(20);
        let fast = run(&n, 0.4);

        let stack = TierStack::two_d(Library::nine_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.4),
        };
        let slow = analyze(&ctx);
        assert!(slow.wns < fast.wns);
    }

    #[test]
    fn hetero_assignment_interpolates() {
        let n = pipeline(20);
        let stack = TierStack::heterogeneous();
        let parasitics = Parasitics::zero_wire(&n);
        let all_fast = vec![Tier::Bottom; n.cell_count()];
        let all_slow = vec![Tier::Top; n.cell_count()];
        let mut mixed = vec![Tier::Bottom; n.cell_count()];
        for (i, t) in mixed.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let wns_of = |tiers: &Vec<Tier>| {
            analyze(&TimingContext {
                netlist: &n,
                stack: &stack,
                tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(0.4),
            })
            .wns
        };
        let f = wns_of(&all_fast);
        let s = wns_of(&all_slow);
        let m = wns_of(&mixed);
        assert!(f > m && m > s, "fast {f} > mixed {m} > slow {s}");
    }

    #[test]
    fn wire_delay_reduces_slack() {
        let n = pipeline(10);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let mut parasitics = Parasitics::zero_wire(&n);
        for id in n.net_ids() {
            parasitics.net_mut(id).wire_delay_ns = 0.02;
            parasitics.net_mut(id).wire_cap_ff = 5.0;
        }
        let ideal = run(&n, 0.4);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(0.4),
        };
        let wired = analyze(&ctx);
        assert!(wired.wns < ideal.wns);
    }

    #[test]
    fn effective_delay_matches_definition() {
        let n = pipeline(10);
        let r = run(&n, 0.5);
        assert!((r.effective_delay_ns() - (0.5 - r.wns)).abs() < 1e-12);
    }

    #[test]
    fn clock_latency_shifts_capture() {
        let n = pipeline(10);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let parasitics = Parasitics::zero_wire(&n);
        // Give the capture FF extra clock latency -> more time -> better WNS.
        let mut clock = ClockSpec::with_period(0.2);
        clock.latency_ns = vec![0.0; n.cell_count()];
        let ff2 = n.cells().find(|(_, c)| c.name == "ff2").unwrap().0;
        clock.latency_ns[ff2.index()] = 0.1;
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock,
        };
        let skewed = analyze(&ctx);
        let base = run(&n, 0.2);
        // Extra capture latency relaxes the register-to-register path (the
        // downstream PO path tightens instead, so compare the endpoint).
        assert!(skewed.endpoint_slack[ff2.index()] > base.endpoint_slack[ff2.index()]);
    }

    #[test]
    fn generated_benchmark_times_cleanly() {
        let n = m3d_netgen::Benchmark::Cpu.generate(0.02, 3);
        let r = run(&n, 2.0);
        assert!(r.endpoints > 0);
        assert!(r.wns.is_finite());
        assert!(!r.critical_endpoints.is_empty());
    }

    #[test]
    fn timing_met_tolerance() {
        let n = pipeline(10);
        let r = run(&n, 10.0);
        assert!(r.timing_met(0.0));
        let tight = run(&n, 0.01);
        assert!(!tight.timing_met(0.07));
    }

    #[test]
    fn cached_analysis_is_bit_identical() {
        // The delay cache must be results-invisible: a full pass through a
        // warm cache returns the very bits of an uncached pass.
        let n = m3d_netgen::Benchmark::Cpu.generate(0.02, 3);
        let stack = TierStack::heterogeneous();
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        for (i, t) in tiers.iter_mut().enumerate() {
            if i % 3 == 0 {
                *t = Tier::Top;
            }
        }
        let parasitics = Parasitics::zero_wire(&n);
        let ctx = TimingContext {
            netlist: &n,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(1.0),
        };
        let levels = levelize(&n);
        let cold = analyze_full(&ctx, &levels, None).result;
        let cache = DelayCache::new();
        let warm1 = analyze_full(&ctx, &levels, Some(&cache)).result;
        let warm2 = analyze_full(&ctx, &levels, Some(&cache)).result;
        assert!(cache.hits() > 0, "second pass must hit the cache");
        for w in [&warm1, &warm2] {
            assert_eq!(w.wns.to_bits(), cold.wns.to_bits());
            assert_eq!(w.tns.to_bits(), cold.tns.to_bits());
            for i in 0..n.cell_count() {
                assert_eq!(w.arrival[i].to_bits(), cold.arrival[i].to_bits());
                assert_eq!(w.slew[i].to_bits(), cold.slew[i].to_bits());
                assert_eq!(w.required[i].to_bits(), cold.required[i].to_bits());
            }
        }
    }

    #[test]
    fn levelization_round_trips_against_the_netlist() {
        // The CSR `Levels` must hold every combinational gate exactly
        // once, strictly above all of its combinational fanins, and each
        // gate's packed arc slice must equal a direct scan of that gate's
        // input pins (non-clock, driven, ascending pin order).
        let n = m3d_netgen::Benchmark::Cpu.generate(0.03, 11);
        let levels = levelize(&n);

        let comb: Vec<CellId> = n
            .cells()
            .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(levels.comb_count(), comb.len());

        let mut level_of = vec![usize::MAX; n.cell_count()];
        for l in 0..levels.level_count() {
            assert!(!levels.level(l).is_empty(), "levels are dense");
            for &id in levels.level(l) {
                assert_eq!(level_of[id.index()], usize::MAX, "gate listed twice");
                level_of[id.index()] = l;
            }
        }
        for id in &comb {
            assert_ne!(level_of[id.index()], usize::MAX, "gate missing from levels");
        }

        for k in 0..levels.comb_count() {
            let id = levels.cell_at(k);
            let cell = n.cell(id);
            let (pins, drivers, nets) = levels.arcs(k);
            let mut want = Vec::new();
            for (pin, slot) in cell.inputs.iter().enumerate() {
                let Some(net) = *slot else { continue };
                if n.net(net).is_clock {
                    continue;
                }
                let Some(drv) = n.net(net).driver else {
                    continue;
                };
                want.push((pin as u8, drv.cell.index() as u32, net.index() as u32));
            }
            let got: Vec<(u8, u32, u32)> = pins
                .iter()
                .zip(drivers)
                .zip(nets)
                .map(|((&p, &d), &nn)| (p, d, nn))
                .collect();
            assert_eq!(got, want, "arc slice of {}", cell.name);
            for &d in drivers {
                let dl = level_of[d as usize];
                if dl != usize::MAX {
                    assert!(dl < level_of[id.index()], "fanin must sit strictly below");
                }
            }
        }
    }
}
