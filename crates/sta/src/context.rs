use m3d_netlist::{NetId, Netlist};
use m3d_tech::{Tier, TierStack};

/// Clock constraints for an analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSpec {
    /// Clock period in ns.
    pub period_ns: f64,
    /// Per-cell clock-arrival latency in ns (indexed by cell id); empty
    /// means an ideal clock (zero latency everywhere). Filled in by CTS.
    pub latency_ns: Vec<f64>,
    /// Slew assumed at primary inputs, ns.
    pub input_slew_ns: f64,
    /// Virtual clock latency applied to primary I/O: primary inputs
    /// launch at this time and primary outputs capture at `period +` this
    /// time. Set to the clock network's mean insertion delay so I/O paths
    /// are judged against the same clock the registers see.
    pub virtual_io_latency_ns: f64,
    /// Capacitive load assumed at primary outputs, fF.
    pub output_load_ff: f64,
}

impl ClockSpec {
    /// An ideal clock with the given period.
    #[must_use]
    pub fn with_period(period_ns: f64) -> Self {
        ClockSpec {
            period_ns,
            latency_ns: Vec::new(),
            input_slew_ns: 0.03,
            virtual_io_latency_ns: 0.0,
            output_load_ff: 3.0,
        }
    }

    /// Clock arrival at `cell` (0 under an ideal clock).
    #[must_use]
    pub fn latency(&self, cell: usize) -> f64 {
        self.latency_ns.get(cell).copied().unwrap_or(0.0)
    }
}

/// Lumped parasitics of one net.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetModel {
    /// Total wire capacitance, fF.
    pub wire_cap_ff: f64,
    /// Common wire delay from driver to every sink (lumped Elmore), ns.
    pub wire_delay_ns: f64,
}

/// Per-net parasitics for a whole design.
///
/// Built either from placement (Steiner estimates) by the placer/router
/// crates, or as [`Parasitics::zero_wire`] for logic-only analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Parasitics {
    models: Vec<NetModel>,
}

impl Parasitics {
    /// Ideal wires: zero capacitance and delay on every net.
    #[must_use]
    pub fn zero_wire(netlist: &Netlist) -> Self {
        Parasitics {
            models: vec![NetModel::default(); netlist.net_count()],
        }
    }

    /// Wraps externally computed per-net models (indexed by net id).
    ///
    /// # Panics
    ///
    /// Panics if the model count does not match the netlist.
    #[must_use]
    pub fn from_models(netlist: &Netlist, models: Vec<NetModel>) -> Self {
        assert_eq!(
            models.len(),
            netlist.net_count(),
            "one model per net required"
        );
        Parasitics { models }
    }

    /// The model of `net`.
    #[must_use]
    pub fn net(&self, net: NetId) -> NetModel {
        self.models[net.index()]
    }

    /// Mutable model of `net`.
    pub fn net_mut(&mut self, net: NetId) -> &mut NetModel {
        &mut self.models[net.index()]
    }

    /// Number of nets covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Total wire capacitance across all nets, fF.
    #[must_use]
    pub fn total_wire_cap_ff(&self) -> f64 {
        self.models.iter().map(|m| m.wire_cap_ff).sum()
    }
}

/// Everything [`crate::analyze`] needs to time a design.
#[derive(Debug, Clone)]
pub struct TimingContext<'a> {
    /// The design.
    pub netlist: &'a Netlist,
    /// Tier-to-library binding.
    pub stack: &'a TierStack,
    /// Tier of each cell (indexed by cell id). For 2-D designs, all
    /// [`Tier::Bottom`].
    pub tiers: &'a [Tier],
    /// Per-net wire parasitics.
    pub parasitics: &'a Parasitics,
    /// Clock constraints.
    pub clock: ClockSpec,
}

impl<'a> TimingContext<'a> {
    /// Tier of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is shorter than the netlist.
    #[must_use]
    pub fn tier(&self, cell: usize) -> Tier {
        self.tiers[cell]
    }

    /// Library bound to `cell` through its tier.
    #[must_use]
    pub fn library(&self, cell: usize) -> &m3d_tech::Library {
        self.stack.library(self.tier(cell))
    }
}

// TimingContext.clock is small; Copy via Clone of ClockSpec is not possible
// (Vec). Provide an explicit constructor-friendly clone instead.
impl ClockSpec {
    /// Returns a copy with a different period (latencies preserved).
    #[must_use]
    pub fn with_new_period(&self, period_ns: f64) -> Self {
        let mut c = self.clone();
        c.period_ns = period_ns;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_has_zero_latency() {
        let c = ClockSpec::with_period(0.8);
        assert_eq!(c.period_ns, 0.8);
        assert_eq!(c.latency(0), 0.0);
        assert_eq!(c.latency(1000), 0.0);
    }

    #[test]
    fn with_new_period_preserves_latency() {
        let mut c = ClockSpec::with_period(1.0);
        c.latency_ns = vec![0.1, 0.2];
        let c2 = c.with_new_period(0.5);
        assert_eq!(c2.period_ns, 0.5);
        assert_eq!(c2.latency(1), 0.2);
    }

    #[test]
    fn zero_wire_parasitics_cover_all_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let _na = n.add_net("na", a, 0);
        let p = Parasitics::zero_wire(&n);
        assert_eq!(p.len(), 1);
        assert_eq!(p.net(m3d_netlist::NetId::from_index(0)).wire_cap_ff, 0.0);
        assert_eq!(p.total_wire_cap_ff(), 0.0);
    }
}
