//! Lossless round-trip proof: arbitrary `DesignDb` snapshots built from
//! the netgen benchmark families survive encode → disk → decode with an
//! identical `state_fingerprint`, and concurrent handles sharing one
//! directory never observe torn records.

use m3d_db::DesignDb;
use m3d_flow::{prepare_base, pseudo_checkpoint, FlowOptions};
use m3d_geom::{Point, Rect};
use m3d_netgen::Benchmark;
use m3d_netlist::{NetId, Netlist};
use m3d_place::Placement;
use m3d_sta::{NetModel, Parasitics};
use m3d_store::{SessionArtifact, StackSpec, Store, StoreKey};
use m3d_tech::Tier;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory. Rooted at `M3D_STORE_TEST_ROOT` when set
/// (CI points this at an uploadable artifact dir) and the system temp
/// dir otherwise. Not removed on panic, so failures leave the store
/// behind for inspection.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let root = std::env::var_os("M3D_STORE_TEST_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    root.join(format!(
        "m3d-store-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn test_key(salt: u64) -> StoreKey {
    StoreKey::new(
        format!("{salt:016x}"),
        format!("{:016x}", salt.rotate_left(17)),
    )
    .expect("hex keys are valid")
}

/// Deterministically decorates a benchmark netlist into a full snapshot:
/// tier assignment, period, placement and parasitics all derived from
/// `salt` so every proptest case exercises different bit patterns.
fn synth_db(netlist: Netlist, stack_ix: usize, salt: u64) -> DesignDb {
    let spec = [
        StackSpec::TwoD9,
        StackSpec::TwoD12,
        StackSpec::Homo3d9,
        StackSpec::Homo3d12,
        StackSpec::Hetero,
    ][stack_ix % 5];
    let mut mix = salt | 1;
    let mut next = move || {
        // splitmix64: cheap, deterministic, full-period.
        mix = mix.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = mix;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n_cells = netlist.cell_count();
    let n_nets = netlist.net_count();
    let tiers: Vec<Tier> = (0..n_cells)
        .map(|_| {
            if next() & 1 == 0 {
                Tier::Bottom
            } else {
                Tier::Top
            }
        })
        .collect();
    let period = 0.5 + (next() % 1000) as f64 / 500.0;
    let die = Rect::new(0.0, 0.0, 80.0 + (next() % 64) as f64, 60.0);
    let placement = Placement {
        positions: (0..n_cells)
            .map(|_| {
                Point::new(
                    (next() % 10_000) as f64 / 125.0,
                    (next() % 10_000) as f64 / 167.0,
                )
            })
            .collect(),
        die,
    };
    let models: Vec<NetModel> = (0..n_nets)
        .map(|_| NetModel {
            wire_cap_ff: (next() % 100_000) as f64 / 1000.0,
            wire_delay_ns: (next() % 10_000) as f64 / 100_000.0,
        })
        .collect();
    let parasitics = Parasitics::from_models(&netlist, models);
    let mut db = DesignDb::new(netlist, spec.build(), period);
    db.set_tiers(tiers);
    if !salt.is_multiple_of(3) {
        db.set_placement(placement);
    }
    if !salt.is_multiple_of(4) {
        db.set_parasitics(parasitics);
    }
    let _ = db.take_journal();
    db
}

fn assert_db_equal(a: &DesignDb, b: &DesignDb) {
    assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    assert_eq!(a.netlist().name, b.netlist().name);
    assert_eq!(a.netlist().cell_count(), b.netlist().cell_count());
    assert_eq!(a.netlist().net_count(), b.netlist().net_count());
    assert_eq!(a.netlist().clock(), b.netlist().clock());
    assert_eq!(a.tiers(), b.tiers());
    assert_eq!(a.period_ns().to_bits(), b.period_ns().to_bits());
    assert_eq!(a.stack().is_3d(), b.stack().is_3d());
    assert_eq!(a.stack().is_heterogeneous(), b.stack().is_heterogeneous());
    for id in a.netlist().cell_ids() {
        assert_eq!(a.netlist().cell(id), b.netlist().cell(id));
    }
    for id in a.netlist().net_ids() {
        assert_eq!(a.netlist().net(id), b.netlist().net(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite 1: encode→decode of random snapshots is lossless and
    // state_fingerprint-identical.
    #[test]
    fn db_snapshots_round_trip_losslessly(
        bench_ix in 0usize..4,
        stack_ix in 0usize..5,
        scale in 0.004..0.012f64,
        seed in 0u64..1_000_000,
    ) {
        let bench = [Benchmark::Aes, Benchmark::Ldpc, Benchmark::Netcard, Benchmark::Cpu][bench_ix];
        let netlist = bench.generate(scale, seed % 97);
        let db = synth_db(netlist, stack_ix, seed ^ 0xD6E8_FEB8_6659_FD93);
        let payload = m3d_store::encode_db(&db).expect("preset stacks encode");
        let back = m3d_store::decode_db(&payload).expect("own encoding decodes");
        assert_db_equal(&db, &back);
    }
}

#[test]
fn db_snapshots_round_trip_through_disk() {
    let dir = scratch_dir("db-rt");
    let store = Store::open(&dir).unwrap();
    let netlist = Benchmark::Cpu.generate(0.01, 5);
    let db = synth_db(netlist, 4, 42);
    let key = test_key(1);
    assert!(store.get_db(&key).unwrap().is_none(), "fresh store misses");
    store.put_db(&key, &db).unwrap();
    let back = store.get_db(&key).unwrap().expect("hit after put");
    assert_db_equal(&db, &back);
    // A second handle over the same directory sees the same record.
    let other = Store::open(&dir).unwrap();
    let again = other.get_db(&key).unwrap().expect("shared dir hit");
    assert_db_equal(&db, &again);
    let stats = store.stats();
    assert_eq!((stats.puts, stats.hits, stats.misses), (1, 1, 1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_artifacts_round_trip_bit_identically() {
    let dir = scratch_dir("session-rt");
    let store = Store::open(&dir).unwrap();
    let netlist = Benchmark::Aes.generate(0.02, 7);
    let mut options = FlowOptions::default();
    options.placer_mut().iterations = 8;
    let base = prepare_base(&netlist, &options).unwrap();
    let pseudo = pseudo_checkpoint(&base, &options).unwrap();
    let artifact = SessionArtifact {
        base: base.clone(),
        pseudo: Some(pseudo.clone()),
    };
    let key = test_key(2);
    store.put_session(&key, &artifact).unwrap();
    let back = store.get_session(&key).unwrap().expect("hit after put");

    assert_eq!(back.base.netlist.name, base.netlist.name);
    assert_eq!(back.base.netlist.cell_count(), base.netlist.cell_count());
    for id in base.netlist.cell_ids() {
        assert_eq!(back.base.netlist.cell(id), base.netlist.cell(id));
    }
    let bp = back.pseudo.expect("pseudo persisted");
    assert_eq!(bp.die, pseudo.die);
    assert_eq!(
        bp.placement.positions.len(),
        pseudo.placement.positions.len()
    );
    for (a, b) in bp
        .placement
        .positions
        .iter()
        .zip(pseudo.placement.positions.iter())
    {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
    for k in 0..pseudo.parasitics.len() {
        let (a, b) = (
            bp.parasitics.net(NetId::from_index(k)),
            pseudo.parasitics.net(NetId::from_index(k)),
        );
        assert_eq!(a.wire_cap_ff.to_bits(), b.wire_cap_ff.to_bits());
        assert_eq!(a.wire_delay_ns.to_bits(), b.wire_delay_ns.to_bits());
    }
    assert!(
        !bp.stack.is_3d(),
        "pseudo stack is the canonical flat 12-track"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 3: a reader racing writers over one directory gets either a
/// miss or a complete, verified record — never a torn one. Two handles
/// alternate between two distinct snapshots under one key while readers
/// hammer it; every successful get must equal one of the two.
#[test]
fn racing_handles_never_observe_torn_records() {
    let dir = scratch_dir("race");
    let netlist_a = Benchmark::Aes.generate(0.008, 1);
    let netlist_b = Benchmark::Ldpc.generate(0.008, 2);
    let db_a = synth_db(netlist_a, 1, 11);
    let db_b = synth_db(netlist_b, 4, 22);
    let fp_a = db_a.state_fingerprint();
    let fp_b = db_b.state_fingerprint();
    let key = test_key(3);
    // Seed the key so readers racing the first commit still see data.
    Store::open(&dir).unwrap().put_db(&key, &db_a).unwrap();

    std::thread::scope(|scope| {
        for snapshots in [[&db_a, &db_b], [&db_b, &db_a]] {
            let dir = &dir;
            let key = &key;
            scope.spawn(move || {
                let store = Store::open(dir).unwrap();
                for _ in 0..40 {
                    for db in snapshots {
                        store.put_db(key, db).unwrap();
                    }
                }
            });
        }
        for _ in 0..2 {
            let dir = &dir;
            let key = &key;
            scope.spawn(move || {
                let store = Store::open(dir).unwrap();
                let mut observed = 0u32;
                for _ in 0..200 {
                    match store.get_db(key) {
                        Ok(Some(db)) => {
                            let fp = db.state_fingerprint();
                            assert!(
                                fp == fp_a || fp == fp_b,
                                "reader observed a record equal to neither snapshot"
                            );
                            observed += 1;
                        }
                        Ok(None) => {}
                        Err(e) => panic!("reader hit {e} racing atomic writers"),
                    }
                }
                assert!(observed > 0, "reader never saw a committed record");
            });
        }
    });
    std::fs::remove_dir_all(&dir).unwrap();
}
