//! Typed failures: everything the store can refuse is a [`StoreError`],
//! and every way on-disk bytes can be wrong is a [`Corruption`]. The
//! fault-injection suite's contract is that no input bytes — truncated,
//! bit-flipped, version-skewed or adversarial — ever produce anything
//! but one of these values.

use std::fmt;
use std::path::PathBuf;

/// Why a record payload failed to decode.
///
/// Decoders validate before they allocate: every length field is checked
/// against the bytes actually remaining, so a corrupted length can at
/// worst produce [`DecodeError::LengthOverflow`], never an outsized
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a fixed-size field.
    UnexpectedEof {
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A length field declares more data than the payload holds.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// Bytes that were left.
        available: usize,
    },
    /// An enum tag byte has no corresponding variant.
    InvalidTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The unknown tag value.
        found: u8,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8,
    /// Decoded fields are individually well-formed but mutually
    /// inconsistent (cross-reference checks, trailing bytes, non-finite
    /// geometry).
    Invalid(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { wanted, available } => {
                write!(
                    f,
                    "payload truncated: wanted {wanted} bytes, {available} left"
                )
            }
            DecodeError::LengthOverflow {
                declared,
                available,
            } => {
                write!(
                    f,
                    "length field declares {declared} bytes but only {available} remain"
                )
            }
            DecodeError::InvalidTag { what, found } => {
                write!(f, "invalid {what} tag {found}")
            }
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::Invalid(why) => write!(f, "inconsistent payload: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// How an on-disk record's bytes were found to be wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// The file is shorter than the fixed header + checksum envelope.
    TooShort {
        /// Actual file length.
        len: usize,
    },
    /// The magic prefix is not `M3DS`.
    BadMagic([u8; 4]),
    /// The format version byte is unknown to this build (forward skew).
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The record kind byte does not match the requested artifact kind.
    WrongKind {
        /// The kind the caller asked for.
        expected: u8,
        /// The kind byte found.
        found: u8,
    },
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The CRC-32 trailer does not match the record bytes.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum recomputed over the record.
        computed: u32,
    },
    /// The envelope was intact but the payload would not decode.
    Payload(DecodeError),
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::TooShort { len } => {
                write!(f, "file of {len} bytes is shorter than a record envelope")
            }
            Corruption::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            Corruption::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            Corruption::WrongKind { expected, found } => {
                write!(f, "record kind {found} where kind {expected} was expected")
            }
            Corruption::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "header declares {declared} payload bytes, file holds {actual}"
                )
            }
            Corruption::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            Corruption::Payload(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

/// Any failure of a store operation.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A fingerprint half of a [`crate::StoreKey`] is not 16 lowercase
    /// hex digits (keys double as file names, so anything else is
    /// rejected before it can touch a path).
    InvalidKey(String),
    /// An on-disk record failed an integrity check. The store evicts the
    /// offending file before returning this, so the next lookup is a
    /// clean miss and the caller rebuilds.
    Corrupt {
        /// The record file.
        path: PathBuf,
        /// What was wrong with it.
        detail: Corruption,
    },
    /// The in-memory value cannot be represented in the store's format
    /// (e.g. a custom technology stack outside the five presets).
    Unencodable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::InvalidKey(k) => {
                write!(f, "invalid store key `{k}` (want 16 lowercase hex digits)")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt record {}: {detail}", path.display())
            }
            StoreError::Unencodable(why) => write!(f, "value not encodable: {why}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = StoreError::Corrupt {
            path: PathBuf::from("/tmp/x.db"),
            detail: Corruption::ChecksumMismatch {
                stored: 0xdead_beef,
                computed: 0x1234_5678,
            },
        };
        let s = e.to_string();
        assert!(s.contains("deadbeef") && s.contains("12345678"));

        let e = DecodeError::LengthOverflow {
            declared: 1 << 60,
            available: 12,
        };
        assert!(e.to_string().contains("only 12 remain"));
    }
}
