//! The on-disk store: one file per `(key, kind)`, each a self-verifying
//! record, committed atomically.
//!
//! # Record envelope
//!
//! ```text
//! offset  size  field
//! 0       4     magic "M3DS"
//! 4       1     format version (currently 1)
//! 5       1     record kind (1 = db snapshot, 2 = session artifact)
//! 6       8     payload length, u64 LE
//! 14      n     payload
//! 14+n    4     CRC-32 (IEEE), u32 LE, over bytes [0, 14+n)
//! ```
//!
//! # Commit protocol
//!
//! A writer encodes the whole record in memory, writes it to a
//! `.tmp-{pid}-{seq}-{name}` sibling, `sync_all`s it, and `rename`s it
//! over the final name. Renames within a directory are atomic on POSIX,
//! so a reader opening the final name sees either the complete old
//! record or the complete new one — never a prefix. A writer killed
//! mid-write leaves only a `.tmp-*` file, which no reader ever opens.
//!
//! # Corruption policy
//!
//! Every read verifies the full envelope (magic, version, kind, length,
//! checksum) and then the payload decode. Any failure evicts the file
//! and returns [`StoreError::Corrupt`]; the *next* lookup of the same
//! key is a clean miss, so callers rebuild transparently.

use crate::error::{Corruption, StoreError};
use crate::record::{decode_db, encode_db, SessionArtifact};
use m3d_db::DesignDb;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: [u8; 4] = *b"M3DS";
/// Current on-disk format version.
pub const FORMAT_VERSION: u8 = 1;
const HEADER_LEN: usize = 14;
const TRAILER_LEN: usize = 4;

const KIND_DB: u8 = 1;
const KIND_SESSION: u8 = 2;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// keys
// ---------------------------------------------------------------------

/// A content address: the `(netlist_fingerprint, options_fingerprint)`
/// pair the checkpoint cache keys on, validated to be exactly 16
/// lowercase hex digits each so a key can double as a file name with no
/// path-traversal surface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    netlist_fp: String,
    options_fp: String,
}

impl StoreKey {
    /// Builds a key from the two fingerprint halves.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidKey`] unless both halves are 16
    /// lowercase hex digits.
    pub fn new(
        netlist_fp: impl Into<String>,
        options_fp: impl Into<String>,
    ) -> Result<StoreKey, StoreError> {
        let netlist_fp = netlist_fp.into();
        let options_fp = options_fp.into();
        let valid = |fp: &str| {
            fp.len() == 16
                && fp
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        };
        if !valid(&netlist_fp) {
            return Err(StoreError::InvalidKey(netlist_fp));
        }
        if !valid(&options_fp) {
            return Err(StoreError::InvalidKey(options_fp));
        }
        Ok(StoreKey {
            netlist_fp,
            options_fp,
        })
    }

    /// The netlist-fingerprint half.
    #[must_use]
    pub fn netlist_fp(&self) -> &str {
        &self.netlist_fp
    }

    /// The options-fingerprint half.
    #[must_use]
    pub fn options_fp(&self) -> &str {
        &self.options_fp
    }

    fn file_name(&self, kind: u8) -> String {
        let ext = match kind {
            KIND_DB => "db",
            _ => "session",
        };
        format!("{}-{}.{ext}", self.netlist_fp, self.options_fp)
    }
}

// ---------------------------------------------------------------------
// the store
// ---------------------------------------------------------------------

/// Running totals of one handle's store traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful writes committed.
    pub puts: u64,
    /// Reads that found and verified a record.
    pub hits: u64,
    /// Reads that found no record.
    pub misses: u64,
    /// Records evicted after failing an integrity check.
    pub corrupt_evicted: u64,
}

/// A content-addressed checkpoint store rooted at one directory.
///
/// Handles are cheap and share nothing but the directory: any number of
/// processes (or threads) may point handles at the same root and
/// put/get concurrently — the commit protocol guarantees readers never
/// observe torn records.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    puts: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt_evicted: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)
            .map_err(|e| StoreError::io(format!("create store dir {}", root.display()), e))?;
        Ok(Store {
            root,
            puts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt_evicted: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This handle's traffic totals.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt_evicted: self.corrupt_evicted.load(Ordering::Relaxed),
        }
    }

    /// Persists a design-database snapshot under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unencodable`] for a non-preset technology
    /// stack and [`StoreError::Io`] on filesystem failure.
    pub fn put_db(&self, key: &StoreKey, db: &DesignDb) -> Result<(), StoreError> {
        let payload = encode_db(db)?;
        self.write_record(&key.file_name(KIND_DB), KIND_DB, &payload)
    }

    /// Loads the design-database snapshot under `key`, if present.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] (after evicting the record) when
    /// the bytes fail any integrity check, [`StoreError::Io`] on
    /// filesystem failure.
    pub fn get_db(&self, key: &StoreKey) -> Result<Option<DesignDb>, StoreError> {
        let name = key.file_name(KIND_DB);
        let Some(payload) = self.read_record(&name, KIND_DB)? else {
            return Ok(None);
        };
        match decode_db(&payload) {
            Ok(db) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(db))
            }
            Err(e) => Err(self.evict(&name, Corruption::Payload(e))),
        }
    }

    /// Persists a session artifact under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unencodable`] for a non-preset pseudo stack
    /// and [`StoreError::Io`] on filesystem failure.
    pub fn put_session(
        &self,
        key: &StoreKey,
        artifact: &SessionArtifact,
    ) -> Result<(), StoreError> {
        let payload = artifact.encode()?;
        self.write_record(&key.file_name(KIND_SESSION), KIND_SESSION, &payload)
    }

    /// Loads the session artifact under `key`, if present.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] (after evicting the record) when
    /// the bytes fail any integrity check, [`StoreError::Io`] on
    /// filesystem failure.
    pub fn get_session(&self, key: &StoreKey) -> Result<Option<SessionArtifact>, StoreError> {
        let name = key.file_name(KIND_SESSION);
        let Some(payload) = self.read_record(&name, KIND_SESSION)? else {
            return Ok(None);
        };
        match SessionArtifact::decode(&payload) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(artifact))
            }
            Err(e) => Err(self.evict(&name, Corruption::Payload(e))),
        }
    }

    // ---- envelope ------------------------------------------------------

    fn write_record(&self, name: &str, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        record.extend_from_slice(&MAGIC);
        record.push(FORMAT_VERSION);
        record.push(kind);
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(payload);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());

        // The sequence counter is process-global, not per-handle: two
        // handles in one process must never produce the same tmp name, or
        // one writer could rename the other's half-written file into
        // place — the exact torn-record publication the tmp+rename
        // protocol exists to prevent. (Across processes the pid
        // disambiguates.)
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}-{name}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let final_path = self.root.join(name);
        let commit = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&record)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, &final_path)
        })();
        if let Err(e) = commit {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::io(
                format!("commit record {}", final_path.display()),
                e,
            ));
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads and envelope-verifies a record, returning its payload.
    /// `Ok(None)` is a miss; corruption evicts the file and errors.
    fn read_record(&self, name: &str, kind: u8) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.root.join(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io(format!("read record {}", path.display()), e)),
        };
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(self.evict(name, Corruption::TooShort { len: bytes.len() }));
        }
        if bytes[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&bytes[0..4]);
            return Err(self.evict(name, Corruption::BadMagic(m)));
        }
        if bytes[4] != FORMAT_VERSION {
            return Err(self.evict(name, Corruption::UnsupportedVersion { found: bytes[4] }));
        }
        if bytes[5] != kind {
            return Err(self.evict(
                name,
                Corruption::WrongKind {
                    expected: kind,
                    found: bytes[5],
                },
            ));
        }
        let declared = u64::from_le_bytes(bytes[6..14].try_into().expect("len 8"));
        let actual = (bytes.len() - HEADER_LEN - TRAILER_LEN) as u64;
        if declared != actual {
            return Err(self.evict(name, Corruption::LengthMismatch { declared, actual }));
        }
        let body_end = bytes.len() - TRAILER_LEN;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("len 4"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(self.evict(name, Corruption::ChecksumMismatch { stored, computed }));
        }
        Ok(Some(bytes[HEADER_LEN..body_end].to_vec()))
    }

    /// Removes a record that failed verification and builds the error.
    /// Eviction is best-effort: a concurrent writer may already have
    /// replaced the file, which is fine — the replacement is verified on
    /// its own next read.
    fn evict(&self, name: &str, detail: Corruption) -> StoreError {
        let path = self.root.join(name);
        let _ = fs::remove_file(&path);
        self.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
        StoreError::Corrupt { path, detail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn keys_validate_their_fingerprints() {
        assert!(StoreKey::new("0123456789abcdef", "fedcba9876543210").is_ok());
        for bad in [
            "0123456789ABCDEF",  // uppercase
            "0123456789abcde",   // short
            "0123456789abcdef0", // long
            "../../../etc/pwd",  // traversal
            "0123456789abcdeg",  // non-hex
        ] {
            assert!(
                matches!(
                    StoreKey::new(bad, "fedcba9876543210"),
                    Err(StoreError::InvalidKey(_))
                ),
                "key `{bad}` must be rejected"
            );
            assert!(StoreKey::new("fedcba9876543210", bad).is_err());
        }
    }
}
