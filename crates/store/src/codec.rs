//! Primitive binary codec: little-endian fixed-width fields, u64 length
//! prefixes, `f64` as raw IEEE-754 bits (so round-trips are bit-exact).
//!
//! The [`Reader`] enforces the store's allocation-before-validation rule:
//! every declared length or element count is checked against the bytes
//! actually remaining *before* any buffer is sized from it, so a
//! corrupted length field yields a [`DecodeError`] instead of an
//! attempted multi-gigabyte allocation.

use crate::error::DecodeError;

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an option tag (0 = absent, 1 = present) followed by the
    /// value when present.
    pub fn put_opt<T>(&mut self, v: Option<&T>, mut put: impl FnMut(&mut Writer, &T)) {
        match v {
            None => self.put_u8(0),
            Some(t) => {
                self.put_u8(1);
                put(self, t);
            }
        }
    }

    /// Appends a length-prefixed sequence.
    pub fn put_seq<T>(&mut self, items: &[T], mut put: impl FnMut(&mut Writer, &T)) {
        self.put_u64(items.len() as u64);
        for item in items {
            put(self, item);
        }
    }
}

/// Validating payload cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::UnexpectedEof {
                wanted: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is an invalid tag.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            found => Err(DecodeError::InvalidTag {
                what: "bool",
                found,
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string. The declared length is
    /// bounded by the remaining payload before any bytes are copied.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a length/count field and validates it against the remaining
    /// bytes: a count of elements each at least `min_elem_size` bytes
    /// wide cannot exceed `remaining / min_elem_size`. Returns the count
    /// as a `usize` only once it is proven small enough to allocate for.
    pub fn get_len(&mut self, min_elem_size: usize) -> Result<usize, DecodeError> {
        let declared = self.get_u64()?;
        let available = self.remaining();
        let cap = available / min_elem_size.max(1);
        if declared > cap as u64 {
            return Err(DecodeError::LengthOverflow {
                declared,
                available,
            });
        }
        Ok(declared as usize)
    }

    /// Reads an option tag and then the value when present.
    pub fn get_opt<T>(
        &mut self,
        get: impl FnOnce(&mut Reader<'a>) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => get(self).map(Some),
            found => Err(DecodeError::InvalidTag {
                what: "option",
                found,
            }),
        }
    }

    /// Reads a length-prefixed sequence of elements, each at least
    /// `min_elem_size` encoded bytes.
    pub fn get_seq<T>(
        &mut self,
        min_elem_size: usize,
        mut get: impl FnMut(&mut Reader<'a>) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let n = self.get_len(min_elem_size)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(get(self)?);
        }
        Ok(out)
    }

    /// Asserts the payload is fully consumed (no trailing garbage).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("köln");
        w.put_opt(Some(&3u8), |w, v| w.put_u8(*v));
        w.put_opt::<u8>(None, |w, v| w.put_u8(*v));
        w.put_seq(&[1u32, 2, 3], |w, v| w.put_u32(*v));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "köln");
        assert_eq!(r.get_opt(Reader::get_u8).unwrap(), Some(3));
        assert_eq!(r.get_opt(Reader::get_u8).unwrap(), None);
        assert_eq!(r.get_seq(4, Reader::get_u32).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // a string length no payload could satisfy
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_str(),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_tags_are_typed() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32(),
            Err(DecodeError::UnexpectedEof {
                wanted: 4,
                available: 2
            })
        ));
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            r.get_bool(),
            Err(DecodeError::InvalidTag {
                what: "bool",
                found: 9
            })
        ));
        let mut r = Reader::new(&[0xff, 0xfe]);
        assert!(matches!(
            r.get_opt(Reader::get_u8),
            Err(DecodeError::InvalidTag { what: "option", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish(), Err(DecodeError::Invalid(_))));
    }
}
