//! Persistent content-addressed checkpoint store.
//!
//! The serve layer's `SessionCache` makes checkpoint reuse O(1) in RAM,
//! but dies with the process: every server restart and every CLI
//! invocation recomputes pseudo-3-D checkpoints that were already paid
//! for. This crate is the durable tier underneath it — a directory of
//! self-verifying binary records addressed by the same
//! `(netlist_fingerprint, options_fingerprint)` keys the in-memory
//! cache uses, shared by every process pointed at the directory.
//!
//! Three properties carry the design (see `DESIGN.md` §14 for the full
//! format):
//!
//! * **Atomic commits** — records are written to a temp sibling, synced,
//!   and renamed into place. A crashed or racing writer can never
//!   publish a torn artifact; readers see the old record or the new one,
//!   nothing in between.
//! * **Self-verification** — every record carries a magic, a format
//!   version, its payload length and a CRC-32 trailer, and every decoder
//!   validates lengths before allocating and cross-references before
//!   constructing. Arbitrarily corrupted bytes decode to a typed
//!   [`StoreError`], never a panic and never a silently wrong
//!   checkpoint.
//! * **Evict-on-corruption** — a record that fails any check is deleted
//!   as it is reported, so the next lookup of that key is a clean miss
//!   and the caller rebuilds transparently.
//!
//! Two artifact kinds are stored: [`DesignDb`](m3d_db::DesignDb)
//! snapshots ([`Store::put_db`]/[`Store::get_db`] — lossless under
//! [`state_fingerprint`](m3d_db::DesignDb::state_fingerprint)) and
//! [`SessionArtifact`]s ([`Store::put_session`]/[`Store::get_session`] —
//! the buffered base netlist plus the pseudo-3-D checkpoint, which is
//! what lets a restarted server answer its first repeat request without
//! re-running the expensive prefix).
//!
//! ```no_run
//! use m3d_store::{Store, StoreKey};
//!
//! let store = Store::open("/var/cache/m3d")?;
//! let key = StoreKey::new("0123456789abcdef", "fedcba9876543210")?;
//! if let Some(artifact) = store.get_session(&key)? {
//!     // warm: rehydrate a FlowSession from `artifact`
//!     let _ = artifact.pseudo.is_some();
//! }
//! # Ok::<(), m3d_store::StoreError>(())
//! ```

mod codec;
mod error;
mod record;
mod store;

pub use codec::{Reader, Writer};
pub use error::{Corruption, DecodeError, StoreError};
pub use record::{decode_db, encode_db, SessionArtifact, StackSpec};
pub use store::{crc32, Store, StoreKey, StoreStats, FORMAT_VERSION};
